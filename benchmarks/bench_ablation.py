"""Ablation benchmarks for the substrate design choices (beyond-paper).

DESIGN.md calls out the load-bearing implementation choices; these
benchmarks quantify them:

* CDCL vs the reference DPLL on a structured UNSAT family (clause
  learning is what keeps the NP oracle usable);
* CEGAR 2QBF vs brute outer enumeration (the Σ₂ᵖ oracle);
* minimal-model computation: shrink loop vs explicit enumeration;
* the Θ oracle machine vs the naive linear-query algorithm;
* Tseitin vs naive distribution CNF conversion.

Run with::

    pytest benchmarks/bench_ablation.py --benchmark-only
"""

import pytest

from repro.complexity.machines import linear_inference, theta_inference
from repro.logic.cnf import formula_to_cnf_naive, tseitin
from repro.logic.formula import And, Or, Var
from repro.logic.parser import parse_formula
from repro.qbf.solver import solve_qbf2_brute, solve_qbf2_cegar
from repro.sat.minimal import MinimalModelSolver
from repro.sat.solver import SatSolver
from repro.workloads import (
    exclusive_pairs,
    pigeonhole_cnf_db,
    random_positive_db,
    random_qbf2,
)


# ----------------------------------------------------------------------
# SAT engine: CDCL vs DPLL
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["cdcl", "dpll"])
def test_sat_engine_on_pigeonhole(benchmark, engine):
    db = pigeonhole_cnf_db(5)

    def solve():
        solver = SatSolver(engine=engine)
        solver.add_database(db)
        return solver.solve()

    assert solve() is False
    benchmark(solve)


# ----------------------------------------------------------------------
# Sigma2 oracle: CEGAR vs brute enumeration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["cegar", "brute"])
def test_qbf_engine(benchmark, engine):
    qbf = random_qbf2(5, 5, num_terms=6, width=3, seed=2)
    solver = solve_qbf2_cegar if engine == "cegar" else solve_qbf2_brute
    reference = solve_qbf2_brute(qbf).valid
    assert solver(qbf).valid == reference
    benchmark(solver, qbf)


# ----------------------------------------------------------------------
# Minimal models: shrink-based enumeration vs model filtering
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["shrink", "filter"])
def test_minimal_model_enumeration(benchmark, strategy):
    db = random_positive_db(7, 9, seed=4)

    def by_shrink():
        return list(MinimalModelSolver(db).iter_minimal_models())

    def by_filter():
        from repro.sat.enumerate import iter_models

        checker = MinimalModelSolver(db)
        return [m for m in iter_models(db) if checker.is_minimal(m)]

    runner = by_shrink if strategy == "shrink" else by_filter
    assert {frozenset(m) for m in by_shrink()} == {
        frozenset(m) for m in by_filter()
    }
    benchmark(runner)


# ----------------------------------------------------------------------
# Theta machine vs linear oracle usage
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["theta", "linear"])
def test_gcwa_inference_algorithms(benchmark, algorithm):
    db = exclusive_pairs(4)
    formula = parse_formula("x1 | y1")
    runner = theta_inference if algorithm == "theta" else linear_inference
    assert runner(db, formula).inferred
    benchmark(lambda: runner(db, formula))


# ----------------------------------------------------------------------
# CWA consistency: O(log n) vs linear NP-oracle usage (Section 3.1 remark)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["theta", "linear"])
def test_cwa_consistency_algorithms(benchmark, algorithm):
    from repro.semantics.cwa import (
        cwa_consistent_linear,
        cwa_consistent_theta,
    )

    db = random_positive_db(6, 8, seed=9)
    expected, _ = cwa_consistent_linear(db)
    if algorithm == "theta":
        result = cwa_consistent_theta(db)
        assert result.consistent == expected
        assert result.np_calls <= result.call_bound
        benchmark(cwa_consistent_theta, db)
    else:
        benchmark(cwa_consistent_linear, db)


# ----------------------------------------------------------------------
# Preprocessing: solving reduction instances with/without simplification
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preprocess", [True, False])
def test_preprocessing_on_reduction_instances(benchmark, preprocess):
    from repro.complexity.reductions import qbf_to_minimal_entailment
    from repro.logic.cnf import database_to_cnf
    from repro.sat.simplify import simplify_cnf
    from repro.sat.solver import is_satisfiable

    cnf = database_to_cnf(
        qbf_to_minimal_entailment(random_qbf2(3, 3, seed=1)).db
    )

    def solve_plain():
        return is_satisfiable(cnf)

    def solve_simplified():
        result = simplify_cnf(cnf)
        if result.unsatisfiable:
            return False
        return is_satisfiable(list(result.cnf))

    assert solve_plain() == solve_simplified()
    benchmark(solve_simplified if preprocess else solve_plain)


# ----------------------------------------------------------------------
# CNF conversion: Tseitin vs naive distribution
# ----------------------------------------------------------------------
def _blowup_formula(width: int):
    return Or(*[And(Var(f"a{i}"), Var(f"b{i}")) for i in range(width)])


@pytest.mark.parametrize("converter", ["tseitin", "naive"])
def test_cnf_conversion(benchmark, converter):
    formula = _blowup_formula(8)
    if converter == "tseitin":
        benchmark(lambda: tseitin(formula))
    else:
        benchmark(lambda: formula_to_cnf_naive(formula))


# ----------------------------------------------------------------------
# Grounding cost (beyond-paper substrate)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nodes", [4, 8])
def test_grounding_transitive_closure(benchmark, nodes):
    from repro.ground import ground_program

    edges = "\n".join(
        f"e(n{i}, n{i+1})." for i in range(1, nodes)
    )
    program = edges + """
    path(X, Y) :- e(X, Y).
    path(X, Z) :- e(X, Y), path(Y, Z).
    """
    db = ground_program(program)
    assert len(db.vocabulary) >= nodes  # sanity
    benchmark(ground_program, program)
