"""Benchmarks for the paper's lower bounds (hardness reductions).

Each benchmark times one reduction *pipeline* — build the target instance
and decide it — and asserts agreement with the source problem decided by
a trusted solver.  These are the executable form of the paper's hardness
proofs: Π₂ᵖ-hardness of literal inference (Theorem 3.1 family), Σ₂ᵖ-
hardness of DSM/PDSM/PERF model existence (Section 5), NP-hardness of
model existence with ICs, coNP-hardness of DDR/PWS inference (Chan), and
the UMINSAT results (Prop. 5.4 / Lemma 5.5).

Run with::

    pytest benchmarks/bench_hardness.py --benchmark-only
"""

import pytest

from repro.complexity.reductions import (
    cnf_to_database,
    has_unique_minimal_model,
    qbf_to_dsm_existence,
    qbf_to_minimal_entailment,
    qbf_to_pdsm_existence,
    qbf_to_perf_existence,
    unsat_to_ddr_formula,
    unsat_to_ddr_literal,
    unsat_to_nlp_unique_minimal,
    unsat_to_uminsat,
)
from repro.qbf.solver import solve_qbf2_cegar
from repro.sat.solver import is_satisfiable
from repro.semantics import get_semantics
from repro.workloads import random_cnf, random_qbf2

QBF = random_qbf2(2, 2, num_terms=3, width=3, seed=3)
QBF_VALID = solve_qbf2_cegar(QBF).valid
CNF = random_cnf(4, 9, seed=5)
CNF_SAT = is_satisfiable(CNF)


def test_qbf_to_minimal_entailment(benchmark):
    """Theorem 3.1 family: QBF validity == GCWA does NOT infer ¬w."""

    def pipeline():
        instance = qbf_to_minimal_entailment(QBF)
        return not get_semantics("gcwa").infers_literal(
            instance.db, instance.query_literal
        )

    assert pipeline() == QBF_VALID
    benchmark(pipeline)


def test_qbf_to_dsm_existence(benchmark):
    """Σ₂ᵖ-hardness of DSM model existence (no integrity clauses)."""

    def pipeline():
        return get_semantics("dsm").has_model(qbf_to_dsm_existence(QBF).db)

    assert pipeline() == QBF_VALID
    benchmark(pipeline)


def test_qbf_to_pdsm_existence(benchmark):
    """Σ₂ᵖ-hardness of PDSM model existence."""

    def pipeline():
        return get_semantics("pdsm").has_model(
            qbf_to_pdsm_existence(QBF).db
        )

    assert pipeline() == QBF_VALID
    benchmark(pipeline)


def test_qbf_to_perf_existence(benchmark):
    """Σ₂ᵖ-hardness of PERF model existence."""

    def pipeline():
        return get_semantics("perf").has_model(
            qbf_to_perf_existence(QBF).db
        )

    assert pipeline() == QBF_VALID
    benchmark(pipeline)


def test_sat_to_egcwa_existence(benchmark):
    """NP-hardness of EGCWA model existence with integrity clauses."""

    def pipeline():
        return get_semantics("egcwa").has_model(cnf_to_database(CNF))

    assert pipeline() == CNF_SAT
    benchmark(pipeline)


def test_unsat_to_ddr_formula(benchmark):
    """coNP-hardness of DDR formula inference (no ICs)."""

    def pipeline():
        instance = unsat_to_ddr_formula(CNF)
        return get_semantics("ddr").infers(instance.db, instance.formula)

    assert pipeline() == (not CNF_SAT)
    benchmark(pipeline)


def test_unsat_to_pws_literal(benchmark):
    """coNP-hardness of PWS literal inference (with ICs)."""

    def pipeline():
        instance = unsat_to_ddr_literal(CNF)
        return get_semantics("pws").infers_literal(
            instance.db, instance.literal
        )

    assert pipeline() == (not CNF_SAT)
    benchmark(pipeline)


def test_uminsat(benchmark):
    """Prop. 5.4: UNSAT reduces to unique-minimal-model."""

    def pipeline():
        return has_unique_minimal_model(unsat_to_uminsat(CNF))

    assert pipeline() == (not CNF_SAT)
    benchmark(pipeline)


def test_uminsat_lemma55(benchmark):
    """Lemma 5.5: the same through a *normal* logic program."""

    def pipeline():
        return has_unique_minimal_model(unsat_to_nlp_unique_minimal(CNF))

    assert pipeline() == (not CNF_SAT)
    benchmark(pipeline)
