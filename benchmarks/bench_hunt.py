"""Benchmarks for the adversarial scenario factory.

Quantifies the cost model the hunter's budgets are tuned against:
cases-per-second of the full differential pipeline, the incremental
price of each mutator family, and one end-to-end minimization.

Run with::

    pytest benchmarks/bench_hunt.py --benchmark-only
"""

import pytest

from repro.adversary import HuntConfig, hunt, minimize_database
from repro.adversary.mutators import MUTATORS_BY_NAME
from repro.analysis.fragment import fragment_profile
from repro.workloads import random_horn_db, random_positive_db

import random


# ----------------------------------------------------------------------
# The full pipeline: mutate -> differential -> certify
# ----------------------------------------------------------------------
def test_hunt_throughput_small(benchmark):
    """25 cases of the default hunt (the CI smoke configuration)."""

    def run():
        return hunt(HuntConfig(seed=17, max_cases=25, budget_ms=None))

    report = benchmark(run)
    assert report.clean


@pytest.mark.parametrize(
    "mutator", ["rename", "tautology_pad", "body_split", "widen_head"]
)
def test_hunt_throughput_per_mutator(benchmark, mutator):
    """The same loop restricted to one mutator isolates its cost."""

    def run():
        return hunt(
            HuntConfig(
                seed=17, max_cases=15, budget_ms=None,
                mutators=(mutator,),
            )
        )

    report = benchmark(run)
    assert report.clean


# ----------------------------------------------------------------------
# Components in isolation
# ----------------------------------------------------------------------
def test_mutation_only_throughput(benchmark):
    """Pure mutation cost (no engines): the catalogue on 50 databases."""
    dbs = [random_positive_db(4, 5, seed=s) for s in range(50)]
    catalogue = [
        MUTATORS_BY_NAME[n]
        for n in ("rename", "reorder", "duplicate", "tautology_pad")
    ]

    def run():
        produced = 0
        for index, db in enumerate(dbs):
            profile = fragment_profile(db)
            rng = random.Random(index)
            for mutator in catalogue:
                if mutator.applicable(db, profile):
                    if mutator.apply(db, rng) is not None:
                        produced += 1
        return produced

    assert benchmark(run) > 0


def test_minimization_cost(benchmark):
    """Delta-debugging a 12-clause Horn database down to one clause."""
    db = random_horn_db(6, 12, seed=5)
    target = sorted(db.vocabulary)[0]

    def predicate(candidate):
        return any(target in c.atoms for c in candidate.clauses)

    def run():
        return minimize_database(db, predicate, seed=0)

    result = benchmark(run)
    assert len(result.db.clauses) == 1
