"""Machine-readable benchmark for the incremental SAT backend.

Measures, per workload, the effect of the two PR-level optimisations:

* **solver-pool reuse** — repeated-query suites run once with the pooled
  incremental backend (``engine="oracle"``) and once with per-query fresh
  solvers (``engine="fresh"``), asserting identical answers and
  reporting wall-clock ms, SAT calls and the pool's reuse rate;
* **connected-component decomposition** — multi-component databases are
  enumerated with ``decompose=True`` and ``decompose=False``, asserting
  identical minimal-model sets and reporting budget node counts (the
  decomposed count grows with the *largest component*, the monolithic
  one with the whole vocabulary).

The results are written as JSON (default ``BENCH_pr3.json``) so CI and
the README table consume the same numbers::

    PYTHONPATH=src python benchmarks/bench_runner.py            # full run
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke \
        --check-reuse --output /tmp/bench.json                  # CI gate

``--check-reuse`` exits nonzero when the pooled runs show a solver-reuse
rate of zero (the regression the gate exists to catch).

``--kernel`` measures the bitset evaluation kernel (PR 8):
repeated-query suites over small (kernel-priced) and large (priced-out
control) databases run through ``engine="planned"`` — which dispatches
the small ones to the zero-oracle-call ``kernel-bitset`` procedure and
memoizes per-query answers — vs. the pooled incremental oracle,
recording wall-ms, SAT calls and the ``kernel_vs_pooled`` ratio into
``BENCH_pr8.json``.  ``--check-kernel`` gates on the acceptance
criteria: best-round speedup >= 5x on at least two repeated-query
workloads and a >= 0.95x floor on *every* workload (the priced-out
control included — the kernel must never make anything slower).

``--fragments`` instead measures the cost-based fragment planner (PR 7):
Horn-heavy, head-cycle-free, stratified-disjunctive and
stratified-normal corpora run through ``engine="planned"`` vs the
default oracle engine *and* vs ``engine="cached"``, recording wall-ms,
SAT calls, NP-oracle calls and Σ₂ᵖ dispatches per engine into
``BENCH_pr7.json``.  ``--check-fragments`` additionally gates on the
acceptance criteria: Horn fast path zero NP calls and >= 5x wall-clock
speedup, HCF fast path zero Σ₂ᵖ dispatches, and — ROADMAP's
planned-vs-cached contract, now enforced — **every** workload's
``cached_ms / planned_ms`` ratio at or above 0.95x.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.complexity.oracles import count_sat_calls  # noqa: E402
from repro.engine.cache import ENGINE_CACHE  # noqa: E402
from repro.logic.formula import Var  # noqa: E402
from repro.logic.parser import parse_formula  # noqa: E402
from repro.models.enumeration import minimal_models_brute  # noqa: E402
from repro.runtime.budget import Budget, budget_scope  # noqa: E402
from repro.sat.decompose import connected_components  # noqa: E402
from repro.sat.incremental import (  # noqa: E402
    clear_solver_pool,
    solver_pool_stats,
)
from repro.sat.minimal import MinimalModelSolver  # noqa: E402
from repro.semantics import get_semantics  # noqa: E402
from repro.workloads.families import (  # noqa: E402
    chain,
    disjoint_components,
    disjunctive_chain,
    exclusive_pairs,
    pigeonhole_cnf_db,
    stratified_tower,
    win_move_path,
)


# ----------------------------------------------------------------------
# Repeated-query suites: pooled vs fresh
# ----------------------------------------------------------------------
def _suite_gcwa_closure(db, repeat: int, engine: str) -> List:
    """GCWA literal inference over the whole vocabulary, repeated — each
    round re-derives ``ff(DB)`` with one Σ₂ᵖ query per atom."""
    semantics = get_semantics("gcwa", engine=engine)
    answers = []
    for _ in range(repeat):
        for atom in sorted(db.vocabulary):
            answers.append(semantics.infers_literal(db, "~" + atom))
    return answers


def _suite_egcwa_queries(db, repeat: int, engine: str) -> List:
    """Cautious + brave minimal-model entailment, repeated."""
    semantics = get_semantics("egcwa", engine=engine)
    queries = [
        parse_formula(q)
        for q in ("x1 | y1", "x1 & y1", "~x1 | ~y1", "x2 | y3")
    ]
    answers = []
    for _ in range(repeat):
        for query in queries:
            answers.append(semantics.infers(db, query))
            answers.append(semantics.infers_brave(db, query))
    return answers


def _suite_minimal_witness(db, repeat: int, engine: str) -> List:
    """Raw Σ₂ᵖ-primitive calls against one hard (UNSAT-core-heavy)
    database: the pooled solver refutes once and replays learned clauses,
    the fresh one re-derives the refutation every query."""
    reuse = engine != "fresh"
    answers = []
    for _ in range(repeat):
        for atom in sorted(db.vocabulary)[:4]:
            with MinimalModelSolver(db, reuse=reuse) as solver:
                answers.append(
                    solver.find_minimal_satisfying(Var(atom)) is not None
                )
    return answers


REPEATED_SUITES = [
    # (name, database factory, suite runner, full repeat, smoke repeat)
    ("gcwa-closure", lambda: exclusive_pairs(6), _suite_gcwa_closure, 8, 2),
    (
        "egcwa-entailment",
        lambda: exclusive_pairs(5),
        _suite_egcwa_queries,
        6,
        2,
    ),
    (
        "minimal-witness-php",
        lambda: pigeonhole_cnf_db(6),
        _suite_minimal_witness,
        10,
        2,
    ),
    (
        "egcwa-chain",
        lambda: disjunctive_chain(9),
        _suite_egcwa_queries,
        8,
        2,
    ),
]


def run_repeated_suite(name, make_db, runner, repeat, attempts=3) -> Dict:
    db = make_db()
    record: Dict = {"workload": name, "repeat": repeat}
    answers: Dict[str, List] = {}
    for engine in ("oracle", "fresh"):
        # Best-of-N wall clock: every attempt cold-starts (pool and cache
        # cleared), so the minimum measures the engine, not the scheduler.
        wall_ms = None
        for _ in range(attempts):
            clear_solver_pool()
            ENGINE_CACHE.clear()
            start = time.perf_counter()
            with count_sat_calls() as counter:
                answers[engine] = runner(db, repeat, engine)
            elapsed = (time.perf_counter() - start) * 1000.0
            wall_ms = elapsed if wall_ms is None else min(wall_ms, elapsed)
        pool = solver_pool_stats()
        key = "pooled" if engine == "oracle" else "fresh"
        record[key] = {
            "wall_ms": round(wall_ms, 3),
            "sat_calls": counter.calls,
            "solvers_created": pool["solvers_created"],
            "solver_reuses": pool["solver_reuses"],
            "reuse_rate": round(pool["reuse_rate"], 4),
        }
    if answers["oracle"] != answers["fresh"]:
        raise AssertionError(
            f"{name}: pooled and fresh engines disagree on answers"
        )
    record["answers_equal"] = True
    fresh_ms = record["fresh"]["wall_ms"]
    pooled_ms = record["pooled"]["wall_ms"]
    record["speedup"] = round(fresh_ms / pooled_ms, 3) if pooled_ms else None
    return record


# ----------------------------------------------------------------------
# Fragment planner: planned vs default engines (PR 5)
# ----------------------------------------------------------------------
def _suite_fragment_queries(db, names, queries, repeat, engine) -> List:
    """Literal closure over the whole vocabulary plus formula queries
    plus model existence, per semantics — the workload the planner's
    fast paths are meant to collapse."""
    answers = []
    for _ in range(repeat):
        for name in names:
            semantics = get_semantics(name, engine=engine)
            for atom in sorted(db.vocabulary):
                answers.append(semantics.infers_literal(db, "~" + atom))
            for query in queries:
                answers.append(semantics.infers(db, parse_formula(query)))
            answers.append(semantics.has_model(db))
    return answers


FRAGMENT_SUITES = [
    # (name, database factory, semantics, formula queries)
    (
        "horn-chain",
        lambda: chain(14),
        ("gcwa", "egcwa", "dsm"),
        ["a14", "a1 & a7", "~a1 | a14"],
    ),
    (
        "hcf-disjunctive-chain",
        lambda: disjunctive_chain(6),
        ("egcwa", "gcwa"),
        ["a6 | b6", "a1 & b1", "a3 | b3"],
    ),
    # No fast path exists for stratified *disjunctive* databases: the
    # planner must fall back (through the memo cache), and this row
    # documents the (expected) parity with the cached engine.
    # Sized so real Σ₂ᵖ work dominates: at 18 atoms the per-query SAT
    # cost amortizes the planner's constant analysis/dispatch overhead
    # (~0.8ms) below the measurement floor; the old 8-atom tower put
    # that constant at ~10% of wall and made the parity gate noisy.
    (
        "stratified-tower",
        lambda: stratified_tower(6, 3),
        ("icwa", "perf"),
        ["l1_1 | l1_2", "l6_1 | l6_2"],
    ),
    # Stratified *normal*: the trichotomy's pure-P cell — the iterated
    # per-stratum least model answers everything with zero SAT calls.
    (
        "stratified-win-path",
        lambda: win_move_path(12),
        ("perf", "icwa", "dsm"),
        ["win1", "win2 | win11", "~win12"],
    ),
]


def run_fragment_suite(
    name, make_db, names, queries, repeat, attempts=3
) -> Dict:
    from repro.analysis import fragment_profile
    from repro.obs.accounting import observe

    db = make_db()
    record: Dict = {
        "workload": name,
        "fragment": fragment_profile(db).fragment,
        "atoms": len(db.vocabulary),
        "semantics": list(names),
        "repeat": repeat,
    }
    answers: Dict[str, List] = {}
    meters: Dict[str, Tuple] = {}

    def timed_leg(engine: str) -> float:
        # Cold start each sample: the planner pays for its own fragment
        # analysis inside the measured window, and the cached engine
        # re-fills its memo entries from scratch.
        clear_solver_pool()
        ENGINE_CACHE.clear()
        start = time.perf_counter()
        with observe() as window, count_sat_calls() as counter:
            answers[engine] = _suite_fragment_queries(
                db, names, queries, repeat, engine
            )
        meters[engine] = (window, counter)
        return (time.perf_counter() - start) * 1000.0

    legs = (
        ("oracle", "default"),
        ("planned", "planned"),
        ("cached", "cached"),
    )
    # One untimed warm-up round: without it the first leg also pays
    # one-off process warm-up (lazy imports, allocator and
    # branch-predictor state) that later legs inherit for free — a bias
    # of the harness, not a property of the engine under test.
    for engine, _key in legs:
        timed_leg(engine)
    # Timed rounds are interleaved (one sample of every leg per round,
    # planned immediately before cached) so each leg's samples come from
    # the same time neighborhood: a slow scheduler epoch hits all legs
    # alike instead of whichever leg happened to own that wall-clock
    # window.
    walls: Dict[str, List[float]] = {key: [] for _, key in legs}
    for _ in range(attempts):
        for engine, key in legs:
            walls[key].append(timed_leg(engine))
    for engine, key in legs:
        window, counter = meters[engine]
        record[key] = {
            "wall_ms": round(min(walls[key]), 3),
            "sat_calls": counter.calls,
            "np_calls": window.np_calls,
            "sigma2_dispatches": window.sigma2_dispatches,
        }
    for engine in ("oracle", "cached"):
        if answers["planned"] != answers[engine]:
            raise AssertionError(
                f"{name}: planned and {engine} engines disagree on answers"
            )
    record["answers_equal"] = True
    planned_ms = record["planned"]["wall_ms"]
    record["speedup"] = (
        round(record["default"]["wall_ms"] / planned_ms, 3)
        if planned_ms
        else None
    )
    # ROADMAP's contract: planned must not be materially slower than the
    # memo cache.  >= 1.0 means planned wins; the CI floor is 0.95.
    record["planned_vs_cached"] = (
        round(record["cached"]["wall_ms"] / planned_ms, 3)
        if planned_ms
        else None
    )
    # The gate statistic: the best cached/planned ratio over the
    # interleaved rounds.  Scheduler noise is one-sided (it only ever
    # slows a leg down), so the round least contaminated by it is the
    # closest estimate of the true ratio on a ~tens-of-ms workload; a
    # genuine regression (PR 5's hcf path measured 0.61x) drags *every*
    # round down and still fails.
    paired = [
        cached / planned
        for planned, cached in zip(walls["planned"], walls["cached"])
        if planned
    ]
    record["planned_vs_cached_best_round"] = (
        round(max(paired), 3) if paired else None
    )
    return record


def run_fragments(args) -> int:
    records = []
    for name, make_db, names, queries in FRAGMENT_SUITES:
        record = run_fragment_suite(
            name,
            make_db,
            names,
            queries,
            repeat=1 if args.smoke else 3,
            attempts=1 if args.smoke else 3,
        )
        records.append(record)
        print(
            f"{name:<22} default {record['default']['wall_ms']:>8.1f}ms "
            f"({record['default']['sat_calls']:>5} sat)  "
            f"planned {record['planned']['wall_ms']:>7.1f}ms "
            f"({record['planned']['sat_calls']:>4} sat)  "
            f"speedup {record['speedup']:>7.2f}x  "
            f"vs-cached {record['planned_vs_cached']:>5.2f}x  "
            f"[{record['fragment']}]"
        )

    results = {
        "benchmark": "pr7-fragment-planner",
        "smoke": args.smoke,
        "fragments": records,
        "best_speedup": max(r["speedup"] for r in records),
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    failures = []
    if args.check_fragments:
        horn = next(r for r in records if r["fragment"] in ("definite", "horn"))
        if horn["planned"]["np_calls"] != 0:
            failures.append(
                f"{horn['workload']}: Horn fast path issued "
                f"{horn['planned']['np_calls']} NP-oracle calls (want 0)"
            )
        if horn["speedup"] is not None and horn["speedup"] < 5.0:
            failures.append(
                f"{horn['workload']}: speedup {horn['speedup']}x is "
                "below the 5x acceptance floor"
            )
        hcf = next(
            r
            for r in records
            if r["fragment"] in ("acyclic-deductive", "hcf-deductive")
        )
        if hcf["planned"]["sigma2_dispatches"] != 0:
            failures.append(
                f"{hcf['workload']}: HCF fast path issued "
                f"{hcf['planned']['sigma2_dispatches']} Σ₂ᵖ dispatches "
                "(want 0)"
            )
        normal = next(
            r for r in records if r["fragment"] == "stratified-normal"
        )
        if normal["planned"]["np_calls"] != 0:
            failures.append(
                f"{normal['workload']}: stratified-perfect fast path "
                f"issued {normal['planned']['np_calls']} NP-oracle "
                "calls (want 0)"
            )
        for record in records:
            ratio = record["planned_vs_cached_best_round"]
            if ratio is not None and ratio < 0.95:
                failures.append(
                    f"{record['workload']}: planned is slower than the "
                    f"memo cache in every round (best cached/planned "
                    f"{ratio}x < 0.95x floor)"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Bitset kernel: planned (kernel-dispatching) vs pooled oracle (PR 8)
# ----------------------------------------------------------------------
KERNEL_SUITES = [
    # (name, database factory, semantics, formula queries).  The small
    # databases sit under the kernel's priced-in vocabulary bound, so
    # the planner routes their minimal-model inference to the
    # zero-oracle-call bitset procedure; the large control is priced
    # out and must fall back at >= 0.95x parity with the oracle.
    (
        "exclusive-pairs-small",
        lambda: exclusive_pairs(3),
        ("gcwa", "egcwa", "dsm"),
        ["x1 | y1", "x1 & y1", "~x1 | ~y1"],
    ),
    (
        "disjunctive-chain-small",
        lambda: disjunctive_chain(3),
        ("egcwa", "gcwa"),
        ["a3 | b3", "a1 & b1", "a2 | b3"],
    ),
    (
        "icwa-tower-small",
        lambda: stratified_tower(2, 2),
        ("icwa", "dsm"),
        ["l1_1 | l1_2", "l2_1 | l2_2"],
    ),
    (
        "disjunctive-chain-large",
        lambda: disjunctive_chain(7),
        ("egcwa", "gcwa"),
        ["a7 | b7", "a1 & b1", "a4 | b4"],
    ),
]


def run_kernel_suite(
    name, make_db, names, queries, repeat, attempts=3
) -> Dict:
    """One kernel workload: planned (bitset dispatch + memoized
    repeated queries) vs. the pooled incremental oracle.

    Same measurement discipline as :func:`run_fragment_suite`: one
    untimed warm-up of each leg, then interleaved cold-start rounds
    (pool and engine cache cleared inside the measured window) with the
    gate statistic taken from the best paired round.
    """
    from repro.analysis import fragment_profile
    from repro.obs.accounting import observe

    db = make_db()
    planned_probe = get_semantics(names[0], engine="planned")
    record: Dict = {
        "workload": name,
        "fragment": fragment_profile(db).fragment,
        "atoms": len(db.vocabulary),
        "semantics": list(names),
        "repeat": repeat,
        # Which procedure the planner actually picked for formula
        # inference — documents kernel-priced vs. priced-out rows.
        "planned_procedure": planned_probe.plan_for(db, "infers").procedure,
    }
    answers: Dict[str, List] = {}
    meters: Dict[str, Tuple] = {}

    def timed_leg(engine: str) -> float:
        clear_solver_pool()
        ENGINE_CACHE.clear()
        start = time.perf_counter()
        with observe() as window, count_sat_calls() as counter:
            answers[engine] = _suite_fragment_queries(
                db, names, queries, repeat, engine
            )
        meters[engine] = (window, counter)
        return (time.perf_counter() - start) * 1000.0

    legs = (("oracle", "pooled"), ("planned", "kernel"))
    for engine, _key in legs:
        timed_leg(engine)
    walls: Dict[str, List[float]] = {key: [] for _, key in legs}
    for _ in range(attempts):
        for engine, key in legs:
            walls[key].append(timed_leg(engine))
    for engine, key in legs:
        window, counter = meters[engine]
        record[key] = {
            "wall_ms": round(min(walls[key]), 3),
            "sat_calls": counter.calls,
            "np_calls": window.np_calls,
            "sigma2_dispatches": window.sigma2_dispatches,
        }
    if answers["planned"] != answers["oracle"]:
        raise AssertionError(
            f"{name}: planned (kernel) and oracle engines disagree "
            "on answers"
        )
    record["answers_equal"] = True
    kernel_ms = record["kernel"]["wall_ms"]
    record["kernel_vs_pooled"] = (
        round(record["pooled"]["wall_ms"] / kernel_ms, 3)
        if kernel_ms
        else None
    )
    # Best paired round: scheduler noise is one-sided, so the round
    # least contaminated by it is the closest estimate of the true
    # ratio; a genuine regression drags every round down and still
    # fails the gate.
    paired = [
        pooled / kernel
        for kernel, pooled in zip(walls["kernel"], walls["pooled"])
        if kernel
    ]
    record["kernel_vs_pooled_best_round"] = (
        round(max(paired), 3) if paired else None
    )
    return record


def run_kernel(args) -> int:
    records = []
    for name, make_db, names, queries in KERNEL_SUITES:
        record = run_kernel_suite(
            name,
            make_db,
            names,
            queries,
            repeat=2 if args.smoke else 6,
            attempts=1 if args.smoke else 3,
        )
        records.append(record)
        print(
            f"{name:<24} pooled {record['pooled']['wall_ms']:>8.1f}ms "
            f"({record['pooled']['sat_calls']:>5} sat)  "
            f"kernel {record['kernel']['wall_ms']:>7.1f}ms "
            f"({record['kernel']['sat_calls']:>4} sat)  "
            f"speedup {record['kernel_vs_pooled']:>7.2f}x  "
            f"[{record['planned_procedure']}]"
        )

    results = {
        "benchmark": "pr8-bitset-kernel",
        "smoke": args.smoke,
        "kernel": records,
        "best_speedup": max(r["kernel_vs_pooled"] for r in records),
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    failures = []
    if args.check_kernel:
        fast = [
            r
            for r in records
            if (r["kernel_vs_pooled_best_round"] or 0) >= 5.0
        ]
        if len(fast) < 2:
            failures.append(
                f"only {len(fast)} workload(s) reach the 5x best-round "
                "kernel speedup floor (want >= 2)"
            )
        for record in records:
            ratio = record["kernel_vs_pooled_best_round"]
            if ratio is not None and ratio < 0.95:
                failures.append(
                    f"{record['workload']}: kernel leg is slower than "
                    f"the pooled oracle in every round (best "
                    f"{ratio}x < 0.95x floor)"
                )
        priced = {
            r["workload"]: r["planned_procedure"] for r in records
        }
        if priced.get("exclusive-pairs-small") != "kernel-bitset":
            failures.append(
                "exclusive-pairs-small: planner did not dispatch to "
                f"kernel-bitset (got {priced.get('exclusive-pairs-small')})"
            )
        if priced.get("disjunctive-chain-large") == "kernel-bitset":
            failures.append(
                "disjunctive-chain-large: the 14-atom control must be "
                "priced out of the kernel for formula inference"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Multi-component decomposition: node asymptotics
# ----------------------------------------------------------------------
def run_decomposition(copies: int, component_size: int) -> Dict:
    db = disjoint_components(copies, component_size)
    components = connected_components(db)
    record: Dict = {
        "workload": f"disjoint-components-{copies}x{component_size}",
        "copies": copies,
        "component_size": component_size,
        "vocabulary": len(db.vocabulary),
        "components": len(components),
        "largest_component": max(len(c) for c in components),
    }
    results = {}
    for decompose in (True, False):
        ENGINE_CACHE.clear()
        start = time.perf_counter()
        with budget_scope(Budget()) as scope:
            models = minimal_models_brute(db, decompose=decompose)
        key = "decomposed" if decompose else "monolithic"
        record[key] = {
            "wall_ms": round((time.perf_counter() - start) * 1000.0, 3),
            "nodes": scope.nodes,
        }
        results[key] = frozenset(models)
    if results["decomposed"] != results["monolithic"]:
        raise AssertionError(
            f"{record['workload']}: decomposed and monolithic "
            "minimal-model sets disagree"
        )
    record["answers_equal"] = True
    record["minimal_models"] = len(results["decomposed"])
    return record


# ----------------------------------------------------------------------
# Observability overhead: instrumented-but-disabled vs bare methods
# ----------------------------------------------------------------------
def run_overhead_check(smoke: bool, attempts: int = 11) -> Dict:
    """A/B the disabled-tracer instrumentation cost on the repeated-query
    workload: the entry-point wrappers (counter tick + no-op check) vs
    the genuinely unwrapped methods.

    Measurement discipline, because the effect is microseconds against
    milliseconds of shared-box noise: CPU time (``process_time``; the
    suite is single-threaded, so this discards CPU steal), GC disabled
    during timing, and the two variants timed *back-to-back within each
    attempt* with the reported overhead the **median of the per-attempt
    ratios** — clock-frequency drift is slow against one ~20 ms pair,
    so each ratio compares like with like, and the median discards the
    attempts a descheduling landed in."""
    from repro.semantics.base import uninstrumented

    db = exclusive_pairs(6)
    repeat = 4 if smoke else 8

    def timed() -> float:
        clear_solver_pool()
        ENGINE_CACHE.clear()
        # GC pauses are the dominant remaining noise; a cycle collection
        # landing in one variant but not the other would swamp the
        # wrapper cost.
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.process_time()
            _suite_gcwa_closure(db, repeat, "oracle")
            return (time.process_time() - start) * 1000.0
        finally:
            if was_enabled:
                gc.enable()

    ratios = []
    bare_ms = instrumented_ms = None
    for index in range(attempts):
        # Alternate which variant goes first so a systematic first-run
        # penalty (cold caches after the pool clear) cancels out.
        if index % 2 == 0:
            with uninstrumented():
                bare = timed()
            instr = timed()
        else:
            instr = timed()
            with uninstrumented():
                bare = timed()
        ratios.append(instr / bare if bare else 1.0)
        bare_ms = bare if bare_ms is None else min(bare_ms, bare)
        instrumented_ms = (
            instr if instrumented_ms is None else min(instrumented_ms, instr)
        )
    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    return {
        "workload": "gcwa-closure",
        "repeat": repeat,
        "attempts": attempts,
        "bare_ms": round(bare_ms, 3),
        "instrumented_ms": round(instrumented_ms, 3),
        "overhead_pct": round(overhead_pct, 2),
    }


def write_trace_jsonl(path: str) -> int:
    """Run a small traced session workload and dump the span trees (the
    CI bench-smoke artifact)."""
    from repro.obs.trace import Tracer, use_tracer
    from repro.session import DatabaseSession

    tracer = Tracer()
    session = DatabaseSession(exclusive_pairs(4))
    with use_tracer(tracer):
        session.has_model()
        for query in ("x1 | y1", "~x1 | ~y1", "x2 | y3"):
            session.ask(query)
        session.ask_literal("~x1")
    roots = len(tracer.finished_roots())
    with open(path, "w") as handle:
        handle.write(tracer.export_jsonl())
    return roots


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON results (default BENCH_pr3.json, "
        "BENCH_pr7.json with --fragments, BENCH_pr8.json with --kernel)",
    )
    parser.add_argument(
        "--kernel",
        action="store_true",
        help="run the bitset-kernel workloads (planned engine with "
        "kernel dispatch vs the pooled oracle)",
    )
    parser.add_argument(
        "--check-kernel",
        action="store_true",
        help="with --kernel: exit nonzero unless >= 2 workloads reach "
        "a 5x best-round speedup and every workload stays >= 0.95x",
    )
    parser.add_argument(
        "--fragments",
        action="store_true",
        help="run the fragment-planner workloads (planned vs default "
        "engine) instead of the incremental-SAT suites",
    )
    parser.add_argument(
        "--check-fragments",
        action="store_true",
        help="with --fragments: exit nonzero unless the Horn fast path "
        "spends 0 NP calls at >=5x speedup and the HCF path dispatches "
        "no Σ₂ᵖ machine",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small repeat counts / instance sizes (CI-sized run)",
    )
    parser.add_argument(
        "--check-reuse",
        action="store_true",
        help="exit nonzero if any pooled suite shows a 0%% reuse rate",
    )
    parser.add_argument(
        "--check-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "exit nonzero if the best repeated-query speedup is below "
            "FACTOR (wall-clock; run on a quiet machine)"
        ),
    )
    parser.add_argument(
        "--overhead-check",
        action="store_true",
        help=(
            "A/B the disabled-tracer instrumentation against bare "
            "(uninstrumented) entry points and exit nonzero if the "
            "overhead exceeds the threshold"
        ),
    )
    parser.add_argument(
        "--overhead-threshold",
        type=float,
        default=3.0,
        metavar="PCT",
        help="max tolerated instrumentation overhead (default 3%%)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="also run a small traced session workload and write the "
        "span trees as JSONL (the CI artifact)",
    )
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = (
            "BENCH_pr8.json"
            if args.kernel
            else "BENCH_pr7.json" if args.fragments else "BENCH_pr3.json"
        )
    if args.kernel:
        return run_kernel(args)
    if args.fragments:
        return run_fragments(args)

    repeated = []
    for name, make_db, runner, full_repeat, smoke_repeat in REPEATED_SUITES:
        repeat = smoke_repeat if args.smoke else full_repeat
        record = run_repeated_suite(
            name, make_db, runner, repeat, attempts=1 if args.smoke else 3
        )
        repeated.append(record)
        print(
            f"{name:<24} fresh {record['fresh']['wall_ms']:>9.1f}ms  "
            f"pooled {record['pooled']['wall_ms']:>9.1f}ms  "
            f"speedup {record['speedup']:>6.2f}x  "
            f"reuse {record['pooled']['reuse_rate']:.0%}"
        )

    decomposition = []
    # (copies, component_size): monolithic cost is 2^(copies * size), so
    # the large-copy case uses small components to stay enumerable.
    sizes = [(2, 3), (3, 3)] if args.smoke else [(2, 3), (3, 3), (5, 2)]
    for copies, component_size in sizes:
        record = run_decomposition(copies, component_size=component_size)
        decomposition.append(record)
        print(
            f"{record['workload']:<24} "
            f"mono {record['monolithic']['nodes']:>8} nodes  "
            f"decomposed {record['decomposed']['nodes']:>6} nodes"
        )

    results = {
        "benchmark": "pr3-incremental-sat",
        "smoke": args.smoke,
        "repeated_query": repeated,
        "decomposition": decomposition,
        "best_speedup": max(r["speedup"] for r in repeated),
    }

    overhead = None
    if args.overhead_check:
        overhead = run_overhead_check(smoke=args.smoke)
        results["observability_overhead"] = overhead
        print(
            f"{'obs-overhead':<24} bare {overhead['bare_ms']:>9.1f}ms  "
            f"instr. {overhead['instrumented_ms']:>8.1f}ms  "
            f"overhead {overhead['overhead_pct']:>5.2f}%"
        )

    if args.trace_jsonl is not None:
        roots = write_trace_jsonl(args.trace_jsonl)
        print(f"wrote {roots} trace roots to {args.trace_jsonl}")

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    failures = []
    if args.check_reuse:
        for record in repeated:
            if record["pooled"]["reuse_rate"] == 0:
                failures.append(
                    f"{record['workload']}: solver-reuse rate is 0"
                )
    if args.check_speedup is not None:
        if results["best_speedup"] < args.check_speedup:
            failures.append(
                f"best speedup {results['best_speedup']}x is below "
                f"{args.check_speedup}x"
            )
    if overhead is not None:
        if overhead["overhead_pct"] > args.overhead_threshold:
            failures.append(
                f"instrumentation overhead {overhead['overhead_pct']}% "
                f"exceeds {args.overhead_threshold}%"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
