"""The tables' tractability separation as growth curves.

The paper's point is *where* each cell sits between P and Π₂ᵖ.  These
benchmarks scale one structured family — ``x_i | y_i`` exclusive pairs,
whose minimal-model count doubles with every pair — across sizes, so the
growth *shape* of each cell becomes visible in the timing report:

* DDR negative-literal inference (P cell): flat polynomial growth, zero
  oracle calls at every size;
* DDR formula inference (coNP cell): one oracle call at every size;
* EGCWA formula inference (Π₂ᵖ cell): oracle calls grow with the
  candidate space;
* GCWA formula inference (Θ cell): Σ₂ᵖ calls stay logarithmic while the
  naive algorithm's grow linearly.

Run with::

    pytest benchmarks/bench_separation.py --benchmark-only
"""

import pytest

from repro.complexity.machines import linear_inference, theta_inference
from repro.complexity.oracles import count_sat_calls
from repro.logic.parser import parse_formula
from repro.semantics import get_semantics
from repro.workloads import disjunctive_chain, exclusive_pairs

SIZES = [2, 4, 6]


@pytest.mark.parametrize("size", SIZES)
def test_p_cell_ddr_literal(benchmark, size):
    db = exclusive_pairs(size)
    semantics = get_semantics("ddr")
    with count_sat_calls() as counter:
        semantics.infers_literal(db, "not x1")
    assert counter.calls == 0
    benchmark(semantics.infers_literal, db, "not x1")


@pytest.mark.parametrize("size", SIZES)
def test_conp_cell_ddr_formula(benchmark, size):
    db = exclusive_pairs(size)
    semantics = get_semantics("ddr")
    formula = parse_formula("x1 | y1")
    with count_sat_calls() as counter:
        semantics.infers(db, formula)
    assert counter.calls == 1
    benchmark(semantics.infers, db, formula)


@pytest.mark.parametrize("size", SIZES)
def test_pi2_cell_egcwa_formula(benchmark, size):
    db = exclusive_pairs(size)
    semantics = get_semantics("egcwa")
    formula = parse_formula("~x1 | ~y1")
    assert semantics.infers(db, formula)
    benchmark(semantics.infers, db, formula)


@pytest.mark.parametrize("size", SIZES)
def test_theta_cell_oracle_calls_stay_logarithmic(benchmark, size):
    db = exclusive_pairs(size)
    formula = parse_formula("x1 | y1")
    result = theta_inference(db, formula)
    naive = linear_inference(db, formula)
    assert result.inferred == naive.inferred
    assert result.sigma2_calls <= result.call_bound
    assert naive.sigma2_calls == 2 * size  # |P| queries
    benchmark(lambda: theta_inference(db, formula))


@pytest.mark.parametrize("size", SIZES)
def test_sigma2_cell_dsm_existence(benchmark, size):
    db = disjunctive_chain(size)
    semantics = get_semantics("dsm")
    assert semantics.has_model(db)
    benchmark(semantics.has_model, db)
