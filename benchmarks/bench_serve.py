"""Load benchmark for the serve daemon (PR 9).

Drives the in-process HTTP daemon with 1 / 8 / 64 concurrent keep-alive
clients sweeping the four seeded regimes across mixed tasks, and records
per-concurrency-level:

* **latency** — client-observed p50 / p99 milliseconds per query;
* **throughput** — served queries per second;
* **amortisation** — engine-cache hit rate and solver-pool reuse rate
  over the level (deltas of the process-wide counters), plus the mean
  coalesced batch width;
* **admission** — rejected queries (should be 0 at the default bound).

The results land in ``BENCH_serve.json`` so CI and the README table
consume the same numbers::

    PYTHONPATH=src python benchmarks/bench_serve.py                # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \
        --output /tmp/bench.json                                   # CI

``--check`` exits nonzero if any level served an error or diverged from
the single-threaded ``cached`` oracle (every response is differentially
checked while the load runs).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.engine.cache import cache_stats, clear_cache  # noqa: E402
from repro.sat.incremental import solver_pool_stats  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncServeClient,
    QueryService,
    ReproServer,
    canonical_db_id,
)
from repro.session import DatabaseSession  # noqa: E402
from repro.workloads import (  # noqa: E402
    random_deductive_db,
    random_normal_db,
    random_positive_db,
    random_query_formula,
    random_stratified_db,
)

REGIME_BUILDERS = {
    "positive": lambda seed: random_positive_db(4, 4, seed=seed),
    "deductive": lambda seed: random_deductive_db(4, 5, seed=seed),
    "stratified": lambda seed: random_stratified_db(4, 5, seed=seed),
    "normal": lambda seed: random_normal_db(
        4, 5, ic_fraction=0.15, seed=seed
    ),
}

SEMANTICS = ("gcwa", "egcwa", "dsm")


def percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def build_cases(seeds_per_regime):
    """(text, vocab, db_id, semantics, task, query, expected) tuples,
    expected answers precomputed against the cached oracle."""
    cases = []
    for regime, build in REGIME_BUILDERS.items():
        for seed in range(seeds_per_regime):
            db = build(seed)
            text = str(db)
            vocab = sorted(db.vocabulary)
            db_id = canonical_db_id(db)
            atoms = sorted(db.vocabulary)
            formula = str(random_query_formula(atoms, depth=2, seed=seed))
            for semantics in SEMANTICS:
                oracle = DatabaseSession(db, engine="cached")
                tasks = [
                    ("infers", formula, oracle.ask(
                        formula, semantics=semantics).verdict),
                    ("infers_literal", f"~{atoms[0]}", oracle.ask_literal(
                        f"~{atoms[0]}", semantics).verdict),
                    ("has_model", None, oracle.has_model(semantics)),
                    ("model_set", None, sorted(
                        sorted(m) for m in oracle.models(semantics))),
                ]
                for task, query, expected in tasks:
                    cases.append((
                        text, vocab, db_id, semantics, task, query,
                        expected,
                    ))
    return cases


def run_level(clients, cases, total_queries, workers):
    """One concurrency level against a fresh service; returns the row."""
    service = QueryService(engine="cached", workers=workers, max_queue=1024)
    latencies = []
    divergences = []
    errors = []

    jobs = [cases[i % len(cases)] for i in range(total_queries)]
    per_client = [jobs[i::clients] for i in range(clients)]

    async def worker(port, assigned):
        client = AsyncServeClient("127.0.0.1", port)
        await client.connect()
        try:
            registered = set()
            for text, vocab, db_id, semantics, task, query, want in assigned:
                if db_id not in registered:
                    await client.register(text, vocabulary=vocab)
                    registered.add(db_id)
                start = time.perf_counter()
                response = await client.query(
                    db_id, task=task, semantics=semantics, query=query
                )
                latencies.append(
                    (time.perf_counter() - start) * 1000.0
                )
                if response.status != 200:
                    errors.append(response.payload)
                    continue
                got = (
                    response.payload["models"]
                    if task == "model_set"
                    else response.payload["verdict"]
                )
                if got != want:
                    divergences.append(
                        (db_id, semantics, task, query, got, want)
                    )
        finally:
            await client.close()

    cache_before = cache_stats()
    pool_before = solver_pool_stats()

    async def main():
        async with ReproServer(service) as server:
            started = time.perf_counter()
            await asyncio.gather(
                *(worker(server.port, chunk) for chunk in per_client)
            )
            return time.perf_counter() - started

    elapsed = asyncio.run(main())
    cache_after = cache_stats()
    pool_after = solver_pool_stats()
    stats = service.stats()

    cache_hits = cache_after["hits"] - cache_before["hits"]
    cache_misses = cache_after["misses"] - cache_before["misses"]
    pool_created = (
        pool_after["solvers_created"] - pool_before["solvers_created"]
    )
    pool_reused = (
        pool_after["solver_reuses"] - pool_before["solver_reuses"]
    )
    lookups = cache_hits + cache_misses
    checkouts = pool_created + pool_reused
    return {
        "clients": clients,
        "queries": total_queries,
        "errors": len(errors),
        "divergences": len(divergences),
        "admission_rejects": stats["rejected"],
        "elapsed_s": round(elapsed, 3),
        "queries_per_s": round(total_queries / elapsed, 1),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "mean": round(sum(latencies) / len(latencies), 3),
        },
        "mean_batch_width": stats["mean_batch_width"],
        "cache_hit_rate": (
            round(cache_hits / lookups, 3) if lookups else 0.0
        ),
        "pool_reuse_rate": (
            round(pool_reused / checkouts, 3) if checkouts else 0.0
        ),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sweep for CI (fewer queries, levels 1 and 8)",
    )
    parser.add_argument(
        "--output", default="BENCH_serve.json",
        help="where to write the JSON results (default BENCH_serve.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero on any error response or oracle divergence",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="service evaluation threads (default 4)",
    )
    args = parser.parse_args(argv)

    levels = [1, 8] if args.smoke else [1, 8, 64]
    seeds = 2 if args.smoke else 3
    queries_per_level = 200 if args.smoke else 1000

    cases = build_cases(seeds)
    print(
        f"bench_serve: {len(cases)} distinct cases, "
        f"{queries_per_level} queries per level, levels {levels}",
        flush=True,
    )
    rows = []
    for clients in levels:
        # Start each level cold so its cache-hit rate measures the
        # level's own amortisation, not the oracle precompute above.
        clear_cache()
        row = run_level(clients, cases, queries_per_level, args.workers)
        rows.append(row)
        print(
            f"  clients={clients:3d}  qps={row['queries_per_s']:8.1f}  "
            f"p50={row['latency_ms']['p50']:7.3f}ms  "
            f"p99={row['latency_ms']['p99']:7.3f}ms  "
            f"batch_width={row['mean_batch_width']:.2f}  "
            f"cache_hit={row['cache_hit_rate']:.2f}  "
            f"pool_reuse={row['pool_reuse_rate']:.2f}",
            flush=True,
        )

    report = {
        "benchmark": "pr9-serve",
        "engine": "cached",
        "workers": args.workers,
        "smoke": bool(args.smoke),
        "levels": rows,
    }
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"bench_serve: wrote {args.output}", flush=True)

    if args.check:
        bad = [
            row for row in rows
            if row["errors"] or row["divergences"]
        ]
        if bad:
            print(
                "bench_serve: FAILED — errors or divergences under load: "
                + json.dumps(bad),
                flush=True,
            )
            return 1
        print("bench_serve: check passed (no errors, no divergences)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
