"""Benchmarks regenerating Table 1 (positive propositional DDBs).

One benchmark per (semantics row, task column).  Every benchmark times
the oracle-backed decision procedure of that cell on a fixed positive
workload, and asserts — outside the timed region — that the answer
matches the brute-force ground truth and that the oracle usage matches
the claimed class (0 SAT calls for the P/O(1) cells, the logarithmic
Σ₂ᵖ-call bound for the Θ cells).

Run with::

    pytest benchmarks/bench_table1.py --benchmark-only
"""

import time

import pytest

from repro.complexity.machines import theta_inference
from repro.complexity.oracles import count_sat_calls
from repro.engine import parallel_map
from repro.engine.cache import ENGINE_CACHE
from repro.logic.atoms import Literal
from repro.semantics import get_semantics
from repro.workloads import random_positive_db, random_query_formula

ROWS = ["gcwa", "ddr", "pws", "egcwa", "ccwa", "ecwa", "icwa", "perf",
        "dsm", "pdsm"]

ATOMS = 6
CLAUSES = 7


def _workload(seed=0):
    return random_positive_db(ATOMS, CLAUSES, seed=seed)


def _query(db, seed=0):
    return random_query_formula(sorted(db.vocabulary), depth=2, seed=seed)


@pytest.mark.parametrize("row", ROWS)
def test_literal_inference(benchmark, row):
    """Table 1, column 'inference of literal'."""
    db = _workload()
    literal = Literal.neg(sorted(db.vocabulary)[0])
    semantics = get_semantics(row)
    expected = get_semantics(row, engine="brute").infers_literal(
        db, literal
    )
    result = benchmark(semantics.infers_literal, db, literal)
    assert result == expected


@pytest.mark.parametrize("row", ROWS)
def test_formula_inference(benchmark, row):
    """Table 1, column 'inference of formula'."""
    db = _workload()
    formula = _query(db)
    expected = get_semantics(row, engine="brute").infers(db, formula)
    if row in ("gcwa", "ccwa"):
        # The P^{Σ2p}[O(log n)] cell: run the oracle machine and check
        # the logarithmic call bound.
        result = benchmark(lambda: theta_inference(db, formula))
        assert result.inferred == expected
        assert result.sigma2_calls <= result.call_bound
    else:
        semantics = get_semantics(row)
        result = benchmark(semantics.infers, db, formula)
        assert result == expected


@pytest.mark.parametrize("row", ROWS)
def test_model_existence(benchmark, row):
    """Table 1, column 'exists model' — all O(1) for positive DDBs."""
    db = _workload()
    semantics = get_semantics(row)
    with count_sat_calls() as counter:
        answer = semantics.has_model(db)
    assert answer is True
    assert counter.calls == 0, "O(1) cell must not call the oracle"
    benchmark(semantics.has_model, db)


@pytest.mark.parametrize("row", ["ddr", "pws"])
def test_tractable_literal_cells_use_no_oracle(benchmark, row):
    """The paper's only tractable cells (Chan): negative-literal
    inference for DDR/PWS without ICs is a polynomial fixpoint."""
    db = _workload()
    semantics = get_semantics(row)
    literal = "not " + sorted(db.vocabulary)[0]
    with count_sat_calls() as counter:
        semantics.infers_literal(db, literal)
    assert counter.calls == 0
    benchmark(semantics.infers_literal, db, literal)


# ----------------------------------------------------------------------
# Memoizing engine: repeated-suite speedup and parallel fan-out.
# ----------------------------------------------------------------------
SUITE_SEEDS = range(6)


def table1_suite():
    """The Table 1 workloads one full regeneration quantifies over."""
    return [
        (_workload(seed), _query(_workload(seed), seed=seed))
        for seed in SUITE_SEEDS
    ]


def _run_suite_pass(suite) -> float:
    """One full pass of every (row, task) cell through the cached
    engine; returns the wall-clock seconds spent."""
    start = time.perf_counter()
    for db, query in suite:
        literal = Literal.neg(sorted(db.vocabulary)[0])
        for row in ROWS:
            semantics = get_semantics(row, engine="cached")
            semantics.has_model(db)
            semantics.infers_literal(db, literal)
            semantics.infers(db, query)
    return time.perf_counter() - start


def test_cached_repeated_suite_speedup(capsys):
    """Regenerating the suite a second time is answered from the cache:
    the warm pass must be at least 2x faster than the cold pass, and the
    hit counters must account for every warm lookup."""
    ENGINE_CACHE.clear()
    suite = table1_suite()
    cold = _run_suite_pass(suite)
    hits_after_cold = ENGINE_CACHE.stats()["hits"]
    warm = _run_suite_pass(suite)
    stats = ENGINE_CACHE.stats()
    warm_hits = stats["hits"] - hits_after_cold
    lookups_per_pass = len(suite) * len(ROWS) * 3
    with capsys.disabled():
        print(
            f"\n[table1 cached suite] cold={cold:.3f}s warm={warm:.3f}s "
            f"speedup={cold / warm:.1f}x warm_hits={warm_hits} "
            f"(hit rate {stats['hit_rate']:.1%})"
        )
    assert warm * 2 <= cold, (cold, warm)
    assert warm_hits == lookups_per_pass


def _build_workload(seed: int):
    """Module-level suite builder (picklable for the process pool)."""
    return random_positive_db(ATOMS, CLAUSES, seed=seed)


def test_parallel_suite_fanout_matches_serial():
    """Fanning the suite construction out over the process pool yields
    exactly the serial suite, in order."""
    seeds = list(SUITE_SEEDS)
    serial = [_build_workload(seed) for seed in seeds]
    fanned = parallel_map(_build_workload, seeds, max_workers=2)
    assert fanned == serial
