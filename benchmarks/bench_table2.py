"""Benchmarks regenerating Table 2 (DDBs with integrity clauses).

Workloads per row follow the regime the row quantifies over: deductive
databases with integrity clauses for the closure semantics, stratified
databases for ICWA, normal databases (with negation) for PERF/DSM/PDSM.

Run with::

    pytest benchmarks/bench_table2.py --benchmark-only
"""

import time

import pytest

from repro.complexity.machines import theta_inference
from repro.complexity.oracles import count_sat_calls
from repro.engine.cache import ENGINE_CACHE
from repro.logic.atoms import Literal
from repro.semantics import get_semantics
from repro.workloads import (
    random_deductive_db,
    random_normal_db,
    random_query_formula,
    random_stratified_db,
)

ROWS = ["gcwa", "ddr", "pws", "egcwa", "ccwa", "ecwa", "icwa", "perf",
        "dsm", "pdsm"]

ATOMS = 5
CLAUSES = 6


def _workload(row, seed=0):
    if row == "icwa":
        return random_stratified_db(ATOMS, CLAUSES, seed=seed)
    if row == "perf":
        return random_normal_db(
            ATOMS, CLAUSES, neg_fraction=0.4, ic_fraction=0.0, seed=seed
        )
    if row in ("dsm", "pdsm"):
        return random_normal_db(
            ATOMS, CLAUSES, neg_fraction=0.4, ic_fraction=0.15, seed=seed
        )
    return random_deductive_db(ATOMS, CLAUSES, seed=seed)


def _query(db, seed=0):
    return random_query_formula(sorted(db.vocabulary), depth=2, seed=seed)


@pytest.mark.parametrize("row", ROWS)
def test_literal_inference(benchmark, row):
    """Table 2, column 'inference of literal'."""
    db = _workload(row)
    literal = Literal.neg(sorted(db.vocabulary)[0])
    semantics = get_semantics(row)
    expected = get_semantics(row, engine="brute").infers_literal(
        db, literal
    )
    result = benchmark(semantics.infers_literal, db, literal)
    assert result == expected


@pytest.mark.parametrize("row", ROWS)
def test_formula_inference(benchmark, row):
    """Table 2, column 'inference of formula'."""
    db = _workload(row)
    formula = _query(db)
    expected = get_semantics(row, engine="brute").infers(db, formula)
    if row in ("gcwa", "ccwa"):
        result = benchmark(lambda: theta_inference(db, formula))
        assert result.inferred == expected
        assert result.sigma2_calls <= result.call_bound
    else:
        result = benchmark(get_semantics(row).infers, db, formula)
        assert result == expected


@pytest.mark.parametrize("row", ROWS)
def test_model_existence(benchmark, row):
    """Table 2, column 'exists model': NP cells are one SAT call; the
    ICWA cell stays O(1); the Σ₂ᵖ cells (PERF/DSM/PDSM) guess-and-check."""
    db = _workload(row)
    semantics = get_semantics(row)
    expected = get_semantics(row, engine="brute").has_model(db)
    with count_sat_calls() as counter:
        answer = semantics.has_model(db)
    assert answer == expected
    if row == "icwa":
        assert counter.calls == 0, "ICWA existence is O(1) given strata"
    elif row in ("gcwa", "egcwa", "ccwa", "ecwa", "circ", "ddr", "pws"):
        assert counter.calls <= 1, "NP cell must be a single oracle call"
    benchmark(semantics.has_model, db)


def test_ddr_literal_needs_oracle_with_ics(benchmark):
    """The Table 1 -> Table 2 jump for DDR literal inference: with
    integrity clauses the fixpoint no longer suffices (coNP cell)."""
    db = random_deductive_db(ATOMS, CLAUSES, ic_fraction=0.5, seed=1)
    semantics = get_semantics("ddr")
    literal = "not " + sorted(db.vocabulary)[0]
    with count_sat_calls() as counter:
        semantics.infers_literal(db, literal)
    assert counter.calls >= 1
    benchmark(semantics.infers_literal, db, literal)


# ----------------------------------------------------------------------
# Memoizing engine: repeated-suite speedup on the Table 2 regimes.
# ----------------------------------------------------------------------
SUITE_SEEDS = range(4)


def table2_suite():
    """(row, db, query) triples — each row on its own regime's workload."""
    return [
        (row, _workload(row, seed=seed),
         _query(_workload(row, seed=seed), seed=seed))
        for row in ROWS
        for seed in SUITE_SEEDS
    ]


def _run_suite_pass(suite) -> float:
    start = time.perf_counter()
    for row, db, query in suite:
        semantics = get_semantics(row, engine="cached")
        semantics.has_model(db)
        semantics.infers_literal(db, Literal.neg(sorted(db.vocabulary)[0]))
        semantics.infers(db, query)
    return time.perf_counter() - start


def test_cached_repeated_suite_speedup(capsys):
    """The warm regeneration of the Table 2 suite must be >= 2x faster
    than the cold one, with the hit counters accounting for every warm
    lookup."""
    ENGINE_CACHE.clear()
    suite = table2_suite()
    cold = _run_suite_pass(suite)
    hits_after_cold = ENGINE_CACHE.stats()["hits"]
    warm = _run_suite_pass(suite)
    stats = ENGINE_CACHE.stats()
    warm_hits = stats["hits"] - hits_after_cold
    with capsys.disabled():
        print(
            f"\n[table2 cached suite] cold={cold:.3f}s warm={warm:.3f}s "
            f"speedup={cold / warm:.1f}x warm_hits={warm_hits} "
            f"(hit rate {stats['hit_rate']:.1%})"
        )
    assert warm * 2 <= cold, (cold, warm)
    assert warm_hits == len(suite) * 3
