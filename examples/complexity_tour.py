"""A tour of the paper's complexity landscape, made executable.

The paper's Tables 1 and 2 classify inference under the disjunctive
semantics between P and Π₂ᵖ.  This script makes the classification
tangible:

1. a *tractable* cell — DDR literal inference runs with **zero** oracle
   calls;
2. a *coNP* cell — DDR formula inference is one SAT call;
3. a *Π₂ᵖ* cell — EGCWA inference spends candidate + minimality-check
   oracle calls;
4. the *P^{Σ₂ᵖ}[O(log n)]* cell — GCWA formula inference with the
   binary-search oracle machine, versus the naive linear one;
5. a *hardness reduction* — a 2QBF instance turned into a database on
   which GCWA literal inference answers QBF validity.

Run with::

    python examples/complexity_tour.py
"""

from repro import parse_formula
from repro.complexity import (
    Sigma2Oracle,
    count_sat_calls,
    linear_inference,
    theta_inference,
)
from repro.complexity.reductions import qbf_to_minimal_entailment
from repro.qbf import dnf_formula, exists_forall, solve_qbf2_cegar
from repro.semantics import get_semantics
from repro.workloads import exclusive_pairs


def main() -> None:
    db = exclusive_pairs(4)  # x_i | y_i for i = 1..4: 16 minimal models
    print("Workload: exclusive pairs,", len(db.vocabulary), "atoms,",
          len(db), "clauses")
    print()

    # 1. Tractable: DDR literal inference (Table 1: in P).
    ddr = get_semantics("ddr")
    with count_sat_calls() as counter:
        answer = ddr.infers_literal(db, "not x1")
    print(f"1. DDR |= not x1?  {answer}  "
          f"(NP-oracle calls: {counter.calls} — pure fixpoint)")

    # 2. coNP: DDR formula inference is a single UNSAT call.
    with count_sat_calls() as counter:
        answer = ddr.infers(db, parse_formula("x1 | y1"))
    print(f"2. DDR |= x1 | y1?  {answer}  "
          f"(NP-oracle calls: {counter.calls})")

    # 3. Pi2p: EGCWA inference needs minimality checks.
    egcwa = get_semantics("egcwa")
    with count_sat_calls() as counter:
        answer = egcwa.infers(db, parse_formula("~x1 | ~y1"))
    print(f"3. EGCWA |= ~x1 | ~y1?  {answer}  "
          f"(NP-oracle calls: {counter.calls} — guess + check)")

    # 4. Theta: O(log n) Sigma2-oracle calls vs the linear algorithm.
    formula = parse_formula("x1 | y1")
    theta = theta_inference(db, formula, oracle=Sigma2Oracle())
    linear = linear_inference(db, formula, oracle=Sigma2Oracle())
    print(f"4. GCWA |= x1 | y1?  {theta.inferred}")
    print(f"   binary-search machine: {theta.sigma2_calls} Σ2 calls "
          f"(bound {theta.call_bound});  naive: {linear.sigma2_calls}")

    # 5. Hardness: QBF validity via GCWA literal inference.
    qbf = exists_forall(
        ["x"], ["y"],
        dnf_formula([(("x", "y"), ()), (("x",), ("y",))]),
    )
    print(f"5. QBF: {qbf}")
    print("   valid (CEGAR 2QBF solver):", solve_qbf2_cegar(qbf).valid)
    instance = qbf_to_minimal_entailment(qbf)
    gcwa = get_semantics("gcwa")
    inferred = gcwa.infers_literal(instance.db, instance.query_literal)
    print(f"   reduced database has {len(instance.db)} clauses; "
          f"GCWA |= {instance.query_literal}: {inferred}")
    print("   (validity <=> the literal is NOT inferred:",
          (not inferred) == solve_qbf2_cegar(qbf).valid, ")")


if __name__ == "__main__":
    main()
