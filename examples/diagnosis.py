"""Model-based diagnosis with ECWA / circumscription.

The CCWA/ECWA partition ``(P; Q; Z)`` is exactly the machinery of
minimization-based diagnosis: minimize the abnormality atoms ``ab_*``
(``P``), fix the observations (``Q``), and let the internal signals float
(``Z``).  The ``(P;Z)``-minimal models are the *minimal diagnoses*.

The circuit: two inverters in series.

    in --[inv1]-- mid --[inv2]-- out

Each gate either behaves (output = negated input) or is abnormal.  We
observe ``in = 1`` and — surprisingly — ``out = 0``: a healthy circuit
would restore the input (double inversion), so *some* gate must be
faulty.  The two minimal diagnoses are ``{ab1}`` and ``{ab2}``; the
disjunctive, minimal-model machinery keeps them apart without committing
to either.

Run with::

    python examples/diagnosis.py
"""

from repro import parse_database
from repro.semantics import get_semantics


def build_circuit():
    """Two inverters; ``ab_*`` atoms model faults.

    A behaving inverter forces its output to be the complement of its
    input; the clauses below say "if the gate is not abnormal, the output
    is determined".  Classical (material) encoding as database clauses:
    ``mid | ab1 :- in_high`` = "in high and gate1 healthy => mid low" is
    encoded through its contrapositive pieces.
    """
    return parse_database(
        """
        % gate 1: mid = not in (when healthy)
        ab1 | mid :- not in_high.        % in low  & healthy => mid high
        ab1 :- in_high, mid.             % in high & mid high => faulty
        % gate 2: out = not mid (when healthy)
        ab2 | out_high :- not mid.       % mid low & healthy => out high
        ab2 :- mid, out_high.            % mid high & out high => faulty
        % observations: input high, output LOW (out_high must be false)
        in_high.
        :- out_high.
        """
    )


def main() -> None:
    db = build_circuit()
    print("Diagnosis database:")
    print(db)
    print()

    observations = {"in_high", "out_high"}
    faults = {"ab1", "ab2"}
    floating = db.vocabulary - observations - faults

    # ECWA: minimize faults, fix observations, float internal lines.
    ecwa = get_semantics("ecwa", p=faults, z=floating)
    diagnoses = ecwa.model_set(db)
    print("(P;Z)-minimal models (minimal diagnoses):")
    seen = set()
    for model in sorted(diagnoses, key=str):
        fault_set = frozenset(model & faults)
        if fault_set not in seen:
            seen.add(fault_set)
            print("  faults:", sorted(fault_set) or "(none)",
                  "   full model:", model)
    print()

    # Which fault hypotheses are forced / excluded?
    for atom in sorted(faults):
        print(f"ECWA infers {atom}:     ", ecwa.infers_literal(db, atom))
        print(f"ECWA infers not {atom}: ",
              ecwa.infers_literal(db, "not " + atom))

    # Circumscription gives the same answers (CIRC = ECWA, paper Sec 3.3).
    circ = get_semantics("circ", p=faults, z=floating)
    agreement = circ.model_set(db) == diagnoses
    print()
    print("Circumscription agrees with ECWA:", agreement)


if __name__ == "__main__":
    main()
