"""Stratified negation: PERF, ICWA and DSM on a combinatorial game.

The classic win/move database: a position is *won* when some move leads
to a position that is not won.  On an acyclic move graph the database is
stratified, and the paper's "stratified" semantics — the Perfect Models
Semantics and the Iterated CWA — single out the intended model, which is
also the unique disjunctive stable model.

On a cyclic move graph stratification fails: PERF has no model, ICWA
refuses the database, and DSM's answers depend on the cycle's parity —
exactly the landscape Sections 4 and 5 of the paper map out.

Run with::

    python examples/game_stratified.py
"""

from repro import parse_database
from repro.errors import NotStratifiedError
from repro.semantics import get_semantics
from repro.semantics.stratification import stratify


def path_game(length: int):
    """Positions 1..length in a line; you may move right by one."""
    clauses = [
        f"win{i} :- not win{i+1}." for i in range(1, length)
    ]
    text = "\n".join(clauses)
    db = parse_database(text)
    return db.with_vocabulary([f"win{i}" for i in range(1, length + 1)])


def cycle_game(length: int):
    """Positions on a cycle: move to the next position (mod length)."""
    clauses = [
        f"win{i} :- not win{(i % length) + 1}." for i in range(1, length + 1)
    ]
    return parse_database("\n".join(clauses))


def main() -> None:
    print("=== Acyclic game (path of 5 positions) ===")
    db = path_game(5)
    print(db)
    print()

    stratification = stratify(db)
    print("Stratification (lowest first):")
    for index, stratum in enumerate(stratification.strata, start=1):
        print(f"  S{index}: {sorted(stratum)}")
    print()

    for name in ("perf", "icwa", "dsm"):
        models = sorted(get_semantics(name).model_set(db), key=str)
        print(f"{name.upper():4s} models:",
              ", ".join(str(m) for m in models))
    # Losing positions are exactly the even ones from the end.
    perf = get_semantics("perf")
    print()
    for i in range(1, 6):
        won = perf.infers_literal(db, f"win{i}")
        lost = perf.infers_literal(db, f"not win{i}")
        status = "WON" if won else ("LOST" if lost else "unknown")
        print(f"  position {i}: {status}")

    print()
    print("=== Cyclic games ===")
    for length in (2, 3):
        db = cycle_game(length)
        print(f"cycle of {length}:")
        try:
            get_semantics("icwa").model_set(db)
        except NotStratifiedError as error:
            print("  ICWA:", error)
        perf_models = get_semantics("perf").model_set(db)
        print("  PERF models:", sorted(map(str, perf_models)) or "none")
        dsm_models = get_semantics("dsm").model_set(db)
        print("  DSM  models:", sorted(map(str, dsm_models)) or "none")
        pdsm_models = get_semantics("pdsm").model_set(db)
        print("  PDSM models:", sorted(map(str, pdsm_models)) or "none")


if __name__ == "__main__":
    main()
