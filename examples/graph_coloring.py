"""Grounding + disjunctive reasoning: 2-coloring a graph.

The paper works with propositional ("grounded") databases; this example
shows the grounding step itself: a non-ground program with variables is
instantiated over its active domain, then the propositional semantics
take over.  Disjunctive heads express the color choice, integrity
clauses the coloring constraints — EGCWA's minimal models are exactly
the proper colorings, and model existence under EGCWA (an NP-complete
cell of Table 2) answers colorability.

Run with::

    python examples/graph_coloring.py
"""

from repro import parse_formula
from repro.ground import ground_program
from repro.semantics import get_semantics


def coloring_program(edges) -> str:
    facts = "\n".join(f"edge({u}, {v})." for u, v in edges)
    return (
        facts
        + """
        node(X) :- edge(X, Y).
        node(Y) :- edge(X, Y).
        red(X) | blue(X) :- node(X).
        :- red(X), red(Y), edge(X, Y).
        :- blue(X), blue(Y), edge(X, Y).
        """
    )


def analyse(name: str, edges) -> None:
    db = ground_program(coloring_program(edges))
    egcwa = get_semantics("egcwa")
    print(f"--- {name}: {len(edges)} edges, "
          f"{len(db)} ground clauses ---")
    if not egcwa.has_model(db):
        print("  not 2-colorable (EGCWA model existence: no)")
        print()
        return
    colorings = [
        sorted(a for a in m if a.startswith(("red", "blue")))
        for m in egcwa.model_set(db)
    ]
    print(f"  2-colorable; {len(colorings)} proper colorings, e.g.:")
    print("   ", ", ".join(colorings[0]))
    # Forced colors modulo symmetry? Ask cautious questions:
    example_node = sorted(
        a for a in db.vocabulary if a.startswith("node(")
    )[0][5:-1]
    brave_red = egcwa.infers_brave(
        db, parse_formula(f"red({example_node})")
    )
    print(f"  some proper coloring makes {example_node} red:", brave_red)
    print()


def main() -> None:
    # A path: 2-colorable.
    analyse("path a-b-c-d", [("a", "b"), ("b", "c"), ("c", "d")])
    # An even cycle: 2-colorable.
    analyse("4-cycle", [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])
    # An odd cycle: not 2-colorable.
    analyse("triangle", [("a", "b"), ("b", "c"), ("c", "a")])


if __name__ == "__main__":
    main()
