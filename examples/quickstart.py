"""Quickstart: disjunctive databases and the ten semantics.

Run with::

    python examples/quickstart.py

Walks through the paper's core objects on a small database: classical
models, minimal models, and how the different closed-world semantics
disagree about what follows from disjunctive information.
"""

from repro import infer, infers_literal, model_set, parse_database, parse_formula
from repro.models import all_models, minimal_models_brute


def main() -> None:
    # A disjunctive database: someone is a suspect — Alice or Bob — and
    # whoever drove the car left fingerprints on the wheel.
    db = parse_database(
        """
        suspect_alice | suspect_bob.
        prints_alice :- suspect_alice, drove.
        drove.
        """
    )
    print("Database:")
    print(db)
    print()

    print("Classical models M(DB):")
    for model in all_models(db):
        print("  ", model)
    print()

    print("Minimal models MM(DB):")
    for model in minimal_models_brute(db):
        print("  ", model)
    print()

    # EGCWA reasons over minimal models: exactly one suspect.
    exclusive = parse_formula("~suspect_alice | ~suspect_bob")
    print("EGCWA infers 'not both suspects':",
          infer(db, exclusive, semantics="egcwa"))
    # GCWA only negates atoms false in ALL minimal models, so the model
    # with both suspects survives and the exclusive reading is lost.
    print("GCWA  infers 'not both suspects':",
          infer(db, exclusive, semantics="gcwa"))
    print()

    # Negative literal inference differs across the closures:
    for semantics in ("gcwa", "ddr", "pws", "egcwa"):
        verdict = infers_literal(db, "not prints_alice", semantics)
        print(f"{semantics.upper():5s} infers 'not prints_alice': {verdict}")
    print()

    # The model sets themselves:
    for semantics in ("gcwa", "egcwa", "ddr", "pws", "dsm"):
        models = sorted(model_set(db, semantics), key=str)
        print(f"{semantics.upper():5s} selects:",
              ", ".join(str(m) for m in models))


if __name__ == "__main__":
    main()
