"""Scaling study: the tables' separation as growth curves.

The paper has no figures — the complexity classes *are* its plot.  This
script produces the figure it implies: runtime and oracle-call counts of
one cell per complexity class, swept over instance size on the
exclusive-pairs family ``x_i | y_i`` (2^n minimal models at size n).

Run with::

    python examples/scaling_study.py [max_size]
"""

import sys

from repro.tables.scaling import render_rows, run_scaling_study


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    rows = run_scaling_study(2, max_size)
    print("cells: DDR ¬x1 (P) | DDR formula (coNP) | EGCWA formula (Π2) "
          "| GCWA formula (Θ machine vs naive)")
    print(render_rows(rows))
    print()
    if all(row.shape_ok() for row in rows):
        print("All oracle profiles match the claimed classes:")
    print("the P cell never calls the oracle; the coNP cell spends")
    print("exactly one call at every size; the Π2 cell's usage tracks")
    print("the doubling minimal-model space; and the Θ machine's Σ2-call")
    print("count grows logarithmically while the naive algorithm's grows")
    print("linearly (= 2n).")


if __name__ == "__main__":
    main()
