"""Indefinite information in a deductive database — the PODS framing.

The paper's motivating setting is a *database* holding indefinite facts:
we may know a part was shipped by supplier s1 **or** s2 without knowing
which.  Query answering then depends on the closed-world semantics:

* classical entailment answers only what is certain in *every* model;
* GCWA/EGCWA close the world over minimal models ("a supplier not
  mentioned shipped nothing");
* DDR/WGCWA close it more cautiously (disjunctive possibilities stay
  open);
* brave queries ask what is *possible*.

Run with::

    python examples/suppliers.py
"""

from repro import DatabaseSession, parse_database
from repro.semantics.explain import explain_closure_literal
from repro.semantics.state import disjunctive_state


def main() -> None:
    db = parse_database(
        """
        % Certain shipments.
        shipped(s1, bolts).
        % Indefinite: the nuts came from s2 or s3 (records lost).
        shipped(s2, nuts) | shipped(s3, nuts).
        % s3 is a premium supplier: anything it ships gets inspected.
        inspected(nuts) :- shipped(s3, nuts).
        % Nobody recorded any washers.
        ordered(washers) :- shipped(s1, washers).
        """
    )
    print("Database:")
    print(db)
    print()

    session = DatabaseSession(db, default_semantics="egcwa")

    print("Certain answers (classical / all semantics agree):")
    print("  s1 shipped bolts:", session.ask("shipped(s1, bolts)").verdict)
    print("  someone shipped nuts:",
          session.ask("shipped(s2, nuts) | shipped(s3, nuts)").verdict)
    print()

    print("Closed-world answers (negative information):")
    for semantics in ("ddr", "gcwa", "egcwa"):
        answer = session.ask_literal(
            "not shipped(s1, washers)", semantics=semantics
        )
        print(f"  {semantics.upper():5s} infers 'no washers from s1':",
              answer.verdict)
    print()

    print("The indefinite nuts shipment keeps both candidates open:")
    for supplier in ("s2", "s3"):
        cautious = session.ask_literal(f"shipped({supplier}, nuts)")
        brave = session.ask(f"shipped({supplier}, nuts)", mode="brave")
        print(f"  {supplier}: certain={cautious.verdict}  "
              f"possible={brave.verdict}")
    print()

    print("But EGCWA knows they are exclusive alternatives:")
    answer = session.ask(
        "~shipped(s2, nuts) | ~shipped(s3, nuts)"
    )
    print("  'not both shipped the nuts':", answer.verdict)
    print("  (GCWA cannot tell:",
          session.ask("~shipped(s2, nuts) | ~shipped(s3, nuts)",
                      semantics="gcwa").verdict, ")")
    print()

    print("Inspection depends on the unknown supplier — brave only:")
    cautious = session.ask("inspected(nuts)")
    brave = session.ask("inspected(nuts)", mode="brave")
    print(f"  inspected(nuts): certain={cautious.verdict}  "
          f"possible={brave.verdict}")
    if cautious.certificate is not None:
        print("  counter-model:", cautious.certificate.model)
    print()

    print("Why is 'shipped(s3, nuts)' not closed off?")
    explanation = explain_closure_literal(db, "shipped(s3, nuts)")
    print(" ", explanation.render())
    print()

    print("Derivable disjunctions (the database's indefinite content):")
    for disjunction in sorted(disjunctive_state(db), key=sorted):
        print("  ", " | ".join(sorted(disjunction)))


if __name__ == "__main__":
    main()
