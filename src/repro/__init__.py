"""repro — reproduction of Eiter & Gottlob (PODS 1993),
"Complexity Aspects of Various Semantics for Disjunctive Databases".

The package implements propositional disjunctive databases, the ten
semantics studied by the paper (GCWA, CCWA, EGCWA, ECWA/CIRC, DDR/WGCWA,
PWS/PMS, PERF, ICWA, DSM, PDSM), the three decision problems (literal
inference, formula inference, model existence), the oracle machinery that
realizes the paper's upper bounds, and the hardness reductions behind its
lower bounds.  See DESIGN.md for the architecture and EXPERIMENTS.md for
the reproduction of Tables 1 and 2.

Quickstart::

    from repro import parse_database, parse_formula, infer

    db = parse_database("a | b. c :- a.")
    assert infer(db, parse_formula("~a | ~b"), semantics="egcwa")
    assert not infer(db, parse_formula("~a | ~b"), semantics="gcwa")
"""

__version__ = "1.0.0"

from .logic import (
    Clause,
    DisjunctiveDatabase,
    Formula,
    Interpretation,
    Literal,
    ThreeValuedInterpretation,
    Var,
    database,
    interp,
    parse_clause,
    parse_database,
    parse_formula,
)

__all__ = [
    "__version__",
    "Clause",
    "DisjunctiveDatabase",
    "Formula",
    "Interpretation",
    "Literal",
    "ThreeValuedInterpretation",
    "Var",
    "database",
    "interp",
    "parse_clause",
    "parse_database",
    "parse_formula",
    # populated below
    "SEMANTICS",
    "get_semantics",
    "infer",
    "infers_literal",
    "has_model",
    "model_set",
    "Answer",
    "DatabaseSession",
    "ENGINE_CACHE",
    "CachedSemantics",
    "cache_stats",
    "clear_cache",
    "ResilientSemantics",
    "RetryPolicy",
    "Budget",
    "BudgetExceeded",
    "FaultPlan",
    "Outcome",
    "Status",
    "budget_scope",
    "fault_plan",
    "runtime_stats",
]

from .semantics import (  # noqa: E402  (re-export after logic)
    SEMANTICS,
    get_semantics,
    has_model,
    infer,
    infers_literal,
    model_set,
)
from .session import Answer, DatabaseSession  # noqa: E402
from .engine import (  # noqa: E402
    ENGINE_CACHE,
    CachedSemantics,
    ResilientSemantics,
    RetryPolicy,
    cache_stats,
    clear_cache,
)
from .runtime import (  # noqa: E402
    Budget,
    BudgetExceeded,
    FaultPlan,
    Outcome,
    Status,
    budget_scope,
    fault_plan,
    runtime_stats,
)
