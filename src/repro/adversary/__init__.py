"""Adversarial scenario factory: mutate, hunt, diagnose.

Three cooperating layers (see :mod:`repro.adversary.hunter` for the
pipeline):

* :mod:`repro.adversary.mutators` — semantics-preserving metamorphic
  mutations and fragment-boundary nudges, each with a documented
  preservation contract;
* :mod:`repro.adversary.hunter` — the seeded, budgeted search loop
  driving mutants through the six-engine differential stack;
* :mod:`repro.adversary.minimize` / :mod:`.report` / :mod:`.corpus` —
  delta-debugged witnesses, markdown diagnosis reports, and the
  checked-in regression corpus the differential suite replays.
"""

from .corpus import (
    DEFAULT_CORPUS_PATH,
    CorpusEntry,
    corpus_databases,
    corpus_id,
    fold_survivors,
    load_corpus,
)
from .hunter import (
    Divergence,
    HuntConfig,
    HuntReport,
    build_case,
    hunt,
    run_case,
)
from .inject import injected_planner_bug
from .minimize import (
    DEFAULT_MAX_CHECKS,
    MinimizationResult,
    erase_atom,
    minimize_database,
)
from .mutators import (
    MUTATORS,
    MUTATORS_BY_NAME,
    MutationResult,
    Mutator,
    applicable_semantics,
    boundary_mutators,
    boundary_target_met,
    fresh_atom,
    metamorphic_mutators,
    rename_formula,
)
from .report import render_diagnosis, write_diagnosis_report

__all__ = [
    "DEFAULT_CORPUS_PATH",
    "DEFAULT_MAX_CHECKS",
    "CorpusEntry",
    "Divergence",
    "HuntConfig",
    "HuntReport",
    "MUTATORS",
    "MUTATORS_BY_NAME",
    "MinimizationResult",
    "MutationResult",
    "Mutator",
    "applicable_semantics",
    "boundary_mutators",
    "boundary_target_met",
    "build_case",
    "corpus_databases",
    "corpus_id",
    "erase_atom",
    "fold_survivors",
    "fresh_atom",
    "hunt",
    "injected_planner_bug",
    "load_corpus",
    "metamorphic_mutators",
    "minimize_database",
    "render_diagnosis",
    "rename_formula",
    "run_case",
    "write_diagnosis_report",
]
