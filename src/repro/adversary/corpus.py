"""The checked-in adversarial regression corpus.

Divergence witnesses that survive delta-debugging are *folded* into a
canonical JSON corpus file that ``tests/test_differential.py`` picks up
automatically: every future run of the differential suite replays each
witness across the full six-engine stack, so a bug class found once by
the hunter stays found forever.

Canonical form (the idempotence contract):

* entries are keyed by :func:`corpus_id` — a SHA-256 over the
  database's canonical dict serialization — and **deduplicated** on it;
* entries are sorted by id; the JSON is dumped with sorted keys, fixed
  indentation and a trailing newline.

Folding the same survivors twice (or re-running the hunter on an
unchanged tree) therefore rewrites the file byte-identically — the
corpus grows monotonically and only when a genuinely new witness
appears (``tests/test_adversary.py`` pins this as a regression test).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..logic.database import DisjunctiveDatabase
from ..logic.serialize import database_from_dict, database_to_dict

#: Repository-relative default location of the checked-in corpus.
DEFAULT_CORPUS_PATH = os.path.join("tests", "data", "adversarial_corpus.json")

#: Format marker for forward-compatible evolution.
CORPUS_VERSION = 1


def corpus_id(db: DisjunctiveDatabase) -> str:
    """The deduplication key: SHA-256 of the canonical serialization."""
    canonical = json.dumps(
        database_to_dict(db), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusEntry:
    """One regression witness.

    Attributes:
        db: the (minimized) witness database.
        kind: divergence kind that produced it (``engine-disagreement``,
            ``certificate-violation``, ...).
        semantics / method: where the divergence was observed.
        origin: the seed line of the hunt case that found it.
        note: free-form human context.
    """

    db: DisjunctiveDatabase
    kind: str = "engine-disagreement"
    semantics: str = ""
    method: str = ""
    origin: str = ""
    note: str = ""

    @property
    def id(self) -> str:
        return corpus_id(self.db)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "semantics": self.semantics,
            "method": self.method,
            "origin": self.origin,
            "note": self.note,
            "db": database_to_dict(self.db),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CorpusEntry":
        return CorpusEntry(
            db=database_from_dict(data["db"]),
            kind=data.get("kind", ""),
            semantics=data.get("semantics", ""),
            method=data.get("method", ""),
            origin=data.get("origin", ""),
            note=data.get("note", ""),
        )


def _render(entries: List[CorpusEntry]) -> str:
    unique: Dict[str, CorpusEntry] = {}
    for entry in entries:
        unique.setdefault(entry.id, entry)
    payload = {
        "version": CORPUS_VERSION,
        "entries": [
            unique[key].as_dict() for key in sorted(unique)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_corpus(path: str) -> List[CorpusEntry]:
    """The corpus entries at ``path`` (``[]`` when the file is absent)."""
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        data = json.load(handle)
    return [CorpusEntry.from_dict(raw) for raw in data.get("entries", ())]


def fold_survivors(
    path: str, survivors: Iterable[CorpusEntry]
) -> Tuple[int, int]:
    """Fold ``survivors`` into the corpus at ``path``.

    Returns ``(added, total)``.  Already-present witnesses (by
    :func:`corpus_id`) are skipped; when nothing new arrives the file is
    not rewritten at all, so repeated folding leaves both content and
    mtime untouched.
    """
    existing = load_corpus(path)
    known = {entry.id for entry in existing}
    fresh: List[CorpusEntry] = []
    for survivor in survivors:
        if survivor.id not in known:
            known.add(survivor.id)
            fresh.append(survivor)
    combined = existing + fresh
    if fresh or not os.path.exists(path):
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(_render(combined))
    return len(fresh), len(combined)


def corpus_databases(
    path: str,
) -> List[Tuple[str, DisjunctiveDatabase]]:
    """``(id, db)`` pairs for test parametrization (order: sorted ids)."""
    return [
        (entry.id, entry.db)
        for entry in sorted(load_corpus(path), key=lambda e: e.id)
    ]
