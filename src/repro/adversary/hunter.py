"""The divergence hunter: seeded, budgeted adversarial search.

One hunt runs ``max_cases`` independent *cases*.  Each case is a pure
function of ``(seed, case_index)``:

1. draw a base database from one of the random workload regimes;
2. draw an applicable mutator from the catalogue
   (:mod:`repro.adversary.mutators`) and apply it;
3. run the mutant through the six-engine differential stack
   (brute / oracle / fresh / cached / planned) on a seeded query, both
   literal polarities and model existence — the brute enumerator is
   ground truth;
4. for metamorphic mutants, additionally compare the mutant's answers
   against the *original* database under every semantics the mutator's
   preservation contract covers;
5. ask one query through a ``planned`` session and score the
   complexity certificate the certifier attaches;
6. periodically probe budget-edge behavior: the same query under a
   tight deterministic :class:`~repro.runtime.budget.Budget` on two
   engines, recording TIMEOUT asymmetries.

Any disagreement, contract break or certificate violation becomes a
:class:`Divergence`: the witness database is delta-debugged down to a
1-minimal core (:mod:`repro.adversary.minimize`), a markdown diagnosis
report is written (:mod:`repro.adversary.report`), and the minimized
witness is folded into the checked-in regression corpus
(:mod:`repro.adversary.corpus`).

The whole hunt is wall-clock bounded by ``budget_ms`` (checked between
cases), so a nightly CI job can run a large fixed-seed hunt with a hard
time ceiling.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.fragment import fragment_profile
from ..engine import DIFFERENTIAL_ENGINES, differential_stack
from ..errors import ReproError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..obs.accounting import observe
from ..runtime.budget import Budget, BudgetExceeded, budget_scope
from ..semantics import get_semantics
from ..workloads import (
    random_deductive_db,
    random_horn_db,
    random_normal_db,
    random_positive_db,
    random_query_formula,
    random_stratified_db,
)
from .corpus import CorpusEntry, fold_survivors
from .minimize import MinimizationResult, minimize_database
from .mutators import (
    MUTATORS,
    MUTATORS_BY_NAME,
    MutationResult,
    Mutator,
    applicable_semantics,
    boundary_target_met,
)

#: Regimes the hunter draws base databases from.
REGIMES: Tuple[str, ...] = (
    "horn", "positive", "deductive", "stratified", "normal",
)

#: Deterministic probe limits for the budget-edge check (SAT calls and
#: nodes, never wall clock — asymmetries must reproduce bit-for-bit).
EDGE_PROBE_BUDGET = Budget(max_sat_calls=2, max_nodes=48)

#: Atom ceilings above which a semantics is excluded from a case (the
#: brute ground truth enumerates 3^|V| interpretations for PDSM and
#: 2^|V| elsewhere).
_BRUTE_ATOM_CEILING = {"pdsm": 5}
_BRUTE_DEFAULT_CEILING = 10


@dataclass(frozen=True)
class HuntConfig:
    """Parameters of one hunt (all defaults CI-sized).

    Attributes:
        seed: master seed; the entire hunt is a pure function of it.
        max_cases: number of cases to attempt.
        budget_ms: wall-clock ceiling for the whole hunt (``None`` =
            unbounded); checked between cases.
        base_atoms / base_clauses: size of the base databases.
        regimes: base-database regimes to draw from.
        mutators: catalogue names to use (``None`` = all).
        edge_probe_every: run the budget-edge probe on every n-th case
            (``0`` disables it).
        minimize_checks: predicate-call budget per minimization.
        reports_dir: where diagnosis reports are written (``None`` =
            don't write).
        corpus_path: corpus file survivors are folded into (``None`` =
            don't fold).
    """

    seed: int = 0
    max_cases: int = 200
    budget_ms: Optional[float] = 60_000.0
    base_atoms: int = 4
    base_clauses: int = 5
    regimes: Tuple[str, ...] = REGIMES
    mutators: Optional[Tuple[str, ...]] = None
    edge_probe_every: int = 8
    minimize_checks: int = 600
    reports_dir: Optional[str] = None
    corpus_path: Optional[str] = None


@dataclass
class Divergence:
    """One confirmed anomaly, with everything a diagnosis report needs.

    Attributes:
        kind: ``engine-disagreement`` | ``metamorphic-violation`` |
            ``certificate-violation`` | ``boundary-miss``.
        case: the seed line (JSON-ready dict) reproducing the case.
        semantics / method: the entry point that disagreed.
        query: rendered query (formula or literal), if any.
        answers: engine name → rendered answer (the disagreement, side
            by side; for metamorphic violations the two sides are
            ``original`` / ``mutant``).
        db: the *minimized* witness database.
        original_db: the unminimized database the case produced.
        minimization: how the witness was shrunk.
        observations: engine name → oracle-accounting dict for the
            minimized witness (filled for engine disagreements).
        detail: free-form extra context.
        report_path: where the markdown diagnosis landed (if written).
    """

    kind: str
    case: Dict[str, Any]
    semantics: str
    method: str
    query: str
    answers: Dict[str, str]
    db: DisjunctiveDatabase
    original_db: DisjunctiveDatabase
    minimization: Optional[MinimizationResult] = None
    observations: Dict[str, Dict[str, int]] = field(default_factory=dict)
    detail: str = ""
    report_path: Optional[str] = None

    def summary(self) -> str:
        return (
            f"[{self.kind}] {self.semantics}.{self.method} on "
            f"{len(self.db.clauses)}-clause witness "
            f"(case {self.case.get('case')})"
        )


@dataclass
class HuntReport:
    """Aggregate result of one hunt."""

    config: HuntConfig
    cases_run: int = 0
    mutants_checked: int = 0
    mutation_counts: Dict[str, int] = field(default_factory=dict)
    semantics_counts: Dict[str, int] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    certificate_checks: int = 0
    edge_probes: int = 0
    budget_asymmetries: int = 0
    budget_exhausted: bool = False
    elapsed_ms: float = 0.0
    corpus_added: int = 0
    corpus_total: int = 0

    @property
    def clean(self) -> bool:
        return not self.divergences

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.config.seed,
            "max_cases": self.config.max_cases,
            "cases_run": self.cases_run,
            "mutants_checked": self.mutants_checked,
            "mutation_counts": dict(sorted(self.mutation_counts.items())),
            "semantics_counts": dict(sorted(self.semantics_counts.items())),
            "divergences": [d.summary() for d in self.divergences],
            "certificate_checks": self.certificate_checks,
            "edge_probes": self.edge_probes,
            "budget_asymmetries": self.budget_asymmetries,
            "budget_exhausted": self.budget_exhausted,
            "elapsed_ms": round(self.elapsed_ms, 1),
            "corpus_added": self.corpus_added,
            "corpus_total": self.corpus_total,
        }

    def render(self) -> str:
        lines = [
            f"hunt seed={self.config.seed}: {self.cases_run} case(s), "
            f"{self.mutants_checked} mutant(s) checked in "
            f"{self.elapsed_ms / 1000.0:.1f}s"
            + (" [budget exhausted]" if self.budget_exhausted else ""),
            "mutators: "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.mutation_counts.items())
            ),
            f"certificates scored: {self.certificate_checks}; "
            f"edge probes: {self.edge_probes} "
            f"({self.budget_asymmetries} TIMEOUT asymmetries)",
        ]
        if self.corpus_added or self.corpus_total:
            lines.append(
                f"corpus: +{self.corpus_added} "
                f"(total {self.corpus_total})"
            )
        if self.divergences:
            lines.append(f"DIVERGENCES: {len(self.divergences)}")
            for divergence in self.divergences:
                lines.append("  " + divergence.summary())
                if divergence.report_path:
                    lines.append(f"    report: {divergence.report_path}")
        else:
            lines.append("no divergences")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Deterministic case construction
# ----------------------------------------------------------------------
def _case_rng(seed: int, index: int) -> random.Random:
    return random.Random(f"hunt:{seed}:{index}")


def build_base(
    regime: str, atoms: int, clauses: int, base_seed: int
) -> DisjunctiveDatabase:
    """The base database of one case (deterministic in ``base_seed``)."""
    if regime == "horn":
        return random_horn_db(atoms, clauses, seed=base_seed)
    if regime == "positive":
        return random_positive_db(atoms, clauses, seed=base_seed)
    if regime == "deductive":
        return random_deductive_db(atoms, clauses, seed=base_seed)
    if regime == "stratified":
        return random_stratified_db(atoms, clauses, seed=base_seed)
    if regime == "normal":
        return random_normal_db(
            atoms, clauses, ic_fraction=0.15, seed=base_seed
        )
    raise ReproError(f"unknown regime {regime!r}")


@dataclass
class Case:
    """One fully-specified hunt case (a pure function of its seed line)."""

    index: int
    regime: str
    base_seed: int
    mutator: Optional[Mutator]
    base: DisjunctiveDatabase
    mutation: Optional[MutationResult]
    semantics: str
    query: Formula
    literal_atom: str
    query_seed: int

    @property
    def mutant(self) -> DisjunctiveDatabase:
        return self.mutation.db if self.mutation is not None else self.base

    def seed_line(self, config: HuntConfig) -> Dict[str, Any]:
        return {
            "seed": config.seed,
            "case": self.index,
            "regime": self.regime,
            "base_seed": self.base_seed,
            "mutator": self.mutator.name if self.mutator else None,
            "semantics": self.semantics,
            "query_seed": self.query_seed,
            "query": str(self.query),
            "literal_atom": self.literal_atom,
        }


def _brute_feasible(name: str, db: DisjunctiveDatabase) -> bool:
    ceiling = _BRUTE_ATOM_CEILING.get(name, _BRUTE_DEFAULT_CEILING)
    return len(db.vocabulary) <= ceiling


#: Over-sampling factor for boundary mutators when the base database
#: sits in (or one edit from) a planner fast-path fragment.
_BOUNDARY_WEIGHT = 3.0


def _near_planner_fast_path(profile) -> bool:
    """Does the cost-based planner have a specialized procedure in play
    for this base?  Horn, HCF-deductive (founded machine / ff closure)
    and stratified-normal (iterated least model) all qualify."""
    return (
        profile.is_horn
        or (profile.negation_free and profile.head_cycle_free)
        or (profile.is_stratified and profile.max_head_width <= 1)
    )


def _mutator_weights(
    profile, candidates: Sequence[Mutator]
) -> List[float]:
    """Per-candidate draw weights: boundary mutators (barely-non-Horn,
    barely-non-HCF, barely-unstratified) are over-sampled whenever the
    base is in planner fast-path territory, so hunts spend their budget
    where the cost model's never-worse-than-default rule and the
    fragment fast paths are actually load-bearing."""
    if not _near_planner_fast_path(profile):
        return [1.0] * len(candidates)
    return [
        _BOUNDARY_WEIGHT if m.kind == "boundary" else 1.0
        for m in candidates
    ]


def build_case(config: HuntConfig, index: int) -> Optional[Case]:
    """Construct case ``index`` of the hunt (``None`` = degenerate draw)."""
    rng = _case_rng(config.seed, index)
    regime = rng.choice(list(config.regimes))
    base_seed = rng.randrange(1 << 30)
    base = build_base(
        regime, config.base_atoms, config.base_clauses, base_seed
    )
    profile = fragment_profile(base)
    catalogue: Sequence[Mutator] = MUTATORS
    if config.mutators is not None:
        catalogue = [MUTATORS_BY_NAME[name] for name in config.mutators]
    candidates = [m for m in catalogue if m.applicable(base, profile)]
    mutator: Optional[Mutator] = None
    mutation: Optional[MutationResult] = None
    if candidates:
        pool = sorted(candidates, key=lambda m: m.name)
        weights = _mutator_weights(profile, pool)
        mutator = rng.choices(pool, weights=weights, k=1)[0]
        mutation = mutator.apply(base, rng)
        if mutation is None:
            mutator = None
    mutant = mutation.db if mutation is not None else base
    names = [
        n for n in applicable_semantics(mutant)
        if _brute_feasible(n, mutant)
    ]
    if not names:
        return None
    # Metamorphic mutants prefer a semantics the contract covers, so
    # the answer-preservation oracle actually gets exercised.
    if mutation is not None and mutation.preserves:
        preferred = [n for n in names if n in mutation.preserves]
        if preferred:
            names = preferred
    semantics = rng.choice(names)
    query_seed = rng.randrange(1 << 30)
    vocabulary = sorted(mutant.vocabulary) or ["a"]
    query = random_query_formula(vocabulary, depth=2, seed=query_seed)
    literal_atom = rng.choice(vocabulary)
    return Case(
        index=index,
        regime=regime,
        base_seed=base_seed,
        mutator=mutator,
        base=base,
        mutation=mutation,
        semantics=semantics,
        query=query,
        literal_atom=literal_atom,
        query_seed=query_seed,
    )


# ----------------------------------------------------------------------
# The individual checks
# ----------------------------------------------------------------------
def _safe(call, *args):
    """``(answer, error)`` of one engine call; never raises."""
    try:
        return call(*args), None
    except Exception as exc:  # pragma: no cover - diagnostic path
        return None, f"{type(exc).__name__}: {exc}"


def _ground_truth_capped(error: Optional[str]) -> bool:
    """True when the brute engine refused an instance above its safety
    bound (:class:`~repro.errors.GroundTruthCapError`) — the instance is
    legal but ground truth is unavailable, so there is nothing to
    compare the other engines against."""
    return error is not None and error.startswith("GroundTruthCapError")


def differential_answers(
    db: DisjunctiveDatabase,
    name: str,
    method: str,
    argument=None,
) -> Dict[str, str]:
    """Rendered per-engine answers for one entry point (report format)."""
    answers: Dict[str, str] = {}
    for engine, instance in zip(
        DIFFERENTIAL_ENGINES, differential_stack(name)
    ):
        if method == "model_set":
            value, error = _safe(instance.model_set, db)
            if value is not None:
                value = " ; ".join(str(m) for m in sorted(value, key=str))
        elif method == "has_model":
            value, error = _safe(instance.has_model, db)
        else:
            value, error = _safe(getattr(instance, method), db, argument)
        answers[engine] = str(value) if error is None else f"<{error}>"
    return answers


def find_engine_disagreement(
    db: DisjunctiveDatabase,
    name: str,
    query: Formula,
    literal_atom: str,
) -> Optional[Tuple[str, Any]]:
    """First six-engine disagreement, as ``(method, argument)``.

    The brute enumerator is ground truth; any engine answering
    differently (or raising where brute does not) is a disagreement.
    """
    literals = [Literal.pos(literal_atom), Literal.neg(literal_atom)]
    stack = differential_stack(name)
    brute = stack[0]
    checks: List[Tuple[str, Any]] = [
        ("model_set", None),
        ("infers", query),
        ("has_model", None),
    ] + [("infers_literal", literal) for literal in literals]
    for method, argument in checks:
        args = () if argument is None else (argument,)
        expected, expected_error = _safe(getattr(brute, method), db, *args)
        if _ground_truth_capped(expected_error):
            continue  # instance legal but too large for brute — skip
        for instance in stack[1:]:
            value, error = _safe(getattr(instance, method), db, *args)
            if (value, error is None) != (expected, expected_error is None):
                return method, argument
    return None


def find_metamorphic_violation(
    original: DisjunctiveDatabase,
    mutation: MutationResult,
    name: str,
    query: Formula,
    literal_atom: str,
    engine: str = "oracle",
) -> Optional[Tuple[str, Any, str, str]]:
    """First broken preservation promise, as
    ``(method, argument, original_answer, mutant_answer)``.

    ``query`` and ``literal_atom`` range over the *original* vocabulary;
    the mutation's ``query_map`` carries them to the mutant side.
    """
    if name not in mutation.preserves:
        return None
    if name not in applicable_semantics(original):
        return None
    if name not in applicable_semantics(mutation.db):
        return None
    instance = get_semantics(name, engine=engine)
    mutant = mutation.db
    checks: List[Tuple[str, Any, Any]] = [
        ("infers", query, mutation.map_query(query)),
        ("has_model", None, None),
    ]
    for literal in (Literal.pos(literal_atom), Literal.neg(literal_atom)):
        mapped = Literal(mutation.map_atom(literal.atom), literal.positive)
        checks.append(("infers_literal", literal, mapped))
    if mutation.preserves_model_set:
        checks.append(("model_set", None, None))
    for method, arg, mapped_arg in checks:
        call = getattr(instance, method)
        original_args = () if arg is None else (arg,)
        mutant_args = () if mapped_arg is None else (mapped_arg,)
        lhs, lhs_error = _safe(call, original, *original_args)
        rhs, rhs_error = _safe(call, mutant, *mutant_args)
        if (lhs, lhs_error is None) != (rhs, rhs_error is None):
            return (
                method,
                arg,
                str(lhs) if lhs_error is None else f"<{lhs_error}>",
                str(rhs) if rhs_error is None else f"<{rhs_error}>",
            )
    return None


def check_certificate(
    db: DisjunctiveDatabase, name: str, literal_atom: str
) -> Optional[str]:
    """Run one literal query through a ``planned`` session and return
    the certifier's complaint, if any (``None`` = envelope respected)."""
    from ..obs.certify import Certifier
    from ..session import DatabaseSession

    session = DatabaseSession(
        db,
        default_semantics=name,
        engine="planned",
        certificates=False,
        certifier=Certifier(strict=False),
    )
    try:
        answer = session.ask_literal(Literal.pos(literal_atom))
    except ReproError:
        return None  # semantics/db mismatch, not a certificate problem
    certificate = answer.complexity
    if certificate is not None and not certificate.ok:
        return certificate.render()
    return None


def probe_budget_edge(
    db: DisjunctiveDatabase,
    name: str,
    query: Formula,
    budget: Budget = EDGE_PROBE_BUDGET,
) -> Dict[str, str]:
    """Run ``infers`` under a tight deterministic budget on the oracle
    and brute engines; returns engine → ``"ok"``/``"timeout:<res>"``.

    Asymmetry (one side TIMEOUT, the other not) is *scored*, not
    failed: the two engines legitimately spend different resources, and
    the hunter's summary surfaces how often the budget edge splits them.
    """
    outcomes: Dict[str, str] = {}
    for engine in ("oracle", "brute"):
        instance = get_semantics(name, engine=engine)
        try:
            with budget_scope(budget):
                instance.infers(db, query)
            outcomes[engine] = "ok"
        except BudgetExceeded as exc:
            outcomes[engine] = f"timeout:{exc.resource}"
        except Exception as exc:
            outcomes[engine] = f"error:{type(exc).__name__}"
    return outcomes


# ----------------------------------------------------------------------
# Witness minimization predicates
# ----------------------------------------------------------------------
def _disagreement_predicate(name: str, method: str, argument):
    def predicate(candidate: DisjunctiveDatabase) -> bool:
        if not candidate.clauses:
            return False
        atom = sorted(candidate.vocabulary)[0] if candidate.vocabulary else "a"
        if method == "infers_literal" and isinstance(argument, Literal):
            arg = argument if argument.atom in candidate.vocabulary else (
                Literal(atom, argument.positive)
            )
        else:
            arg = argument
        stack = differential_stack(name)
        args = () if arg is None else (arg,)
        expected, expected_error = _safe(
            getattr(stack[0], method), candidate, *args
        )
        if _ground_truth_capped(expected_error):
            return False
        for instance in stack[1:]:
            value, error = _safe(
                getattr(instance, method), candidate, *args
            )
            if (value, error is None) != (expected, expected_error is None):
                return True
        return False

    return predicate


def _certificate_predicate(name: str, literal_atom: str):
    def predicate(candidate: DisjunctiveDatabase) -> bool:
        if not candidate.vocabulary:
            return False
        atom = (
            literal_atom
            if literal_atom in candidate.vocabulary
            else sorted(candidate.vocabulary)[0]
        )
        return check_certificate(candidate, name, atom) is not None

    return predicate


# ----------------------------------------------------------------------
# The hunt loop
# ----------------------------------------------------------------------
def run_case(config: HuntConfig, index: int, report: HuntReport) -> None:
    """Run one case, appending any divergence to ``report``."""
    case = build_case(config, index)
    report.cases_run += 1
    if case is None:
        return
    mutant = case.mutant
    name = case.semantics
    report.mutants_checked += 1
    mutator_name = case.mutator.name if case.mutator else "(none)"
    report.mutation_counts[mutator_name] = (
        report.mutation_counts.get(mutator_name, 0) + 1
    )
    report.semantics_counts[name] = (
        report.semantics_counts.get(name, 0) + 1
    )
    seed_line = case.seed_line(config)

    # 1. Boundary mutants must land where they aimed.
    if case.mutation is not None and case.mutation.target is not None:
        before = fragment_profile(case.base)
        after = fragment_profile(mutant)
        if not boundary_target_met(case.mutation.target, before, after):
            report.divergences.append(
                Divergence(
                    kind="boundary-miss",
                    case=seed_line,
                    semantics=name,
                    method="fragment",
                    query=case.mutation.target,
                    answers={
                        "intended": case.mutation.target,
                        "landed": after.fragment,
                    },
                    db=mutant,
                    original_db=mutant,
                    detail=case.mutation.note,
                )
            )
            return

    # 2. Five-engine differential agreement on the mutant.
    disagreement = find_engine_disagreement(
        mutant, name, case.query, case.literal_atom
    )
    if disagreement is not None:
        method, argument = disagreement
        predicate = _disagreement_predicate(name, method, argument)
        minimization = minimize_database(
            mutant, predicate, max_checks=config.minimize_checks,
            seed=config.seed,
        )
        witness = minimization.db
        observations: Dict[str, Dict[str, int]] = {}
        for engine, instance in zip(
            DIFFERENTIAL_ENGINES, differential_stack(name)
        ):
            args = () if argument is None else (argument,)
            with observe() as window:
                _safe(getattr(instance, method), witness, *args)
            observations[engine] = window.as_dict()
        report.divergences.append(
            Divergence(
                kind="engine-disagreement",
                case=seed_line,
                semantics=name,
                method=method,
                query="" if argument is None else str(argument),
                answers=differential_answers(witness, name, method, argument),
                db=witness,
                original_db=mutant,
                minimization=minimization,
                observations=observations,
                detail=(
                    case.mutation.note if case.mutation is not None else ""
                ),
            )
        )
        return

    # 3. Metamorphic answer preservation against the original database.
    if case.mutation is not None and case.mutation.preserves:
        base_vocab = sorted(case.base.vocabulary)
        if base_vocab:
            base_query = random_query_formula(
                base_vocab, depth=2, seed=case.query_seed
            )
            base_atom = base_vocab[case.query_seed % len(base_vocab)]
            violation = find_metamorphic_violation(
                case.base, case.mutation, name, base_query, base_atom
            )
            if violation is not None:
                method, argument, lhs, rhs = violation
                report.divergences.append(
                    Divergence(
                        kind="metamorphic-violation",
                        case=seed_line,
                        semantics=name,
                        method=method,
                        query="" if argument is None else str(argument),
                        answers={"original": lhs, "mutant": rhs},
                        db=case.base,
                        original_db=mutant,
                        detail=(
                            f"mutator `{case.mutation.mutator}` claims to "
                            f"preserve {name}: {case.mutation.note}"
                        ),
                    )
                )
                return

    # 4. Complexity-certificate scoring through the planned session.
    complaint = check_certificate(mutant, name, case.literal_atom)
    report.certificate_checks += 1
    if complaint is not None:
        predicate = _certificate_predicate(name, case.literal_atom)
        try:
            minimization = minimize_database(
                mutant, predicate, max_checks=config.minimize_checks,
                seed=config.seed,
            )
            witness = minimization.db
        except ValueError:  # non-reproducible (cache-order dependent)
            minimization = None
            witness = mutant
        report.divergences.append(
            Divergence(
                kind="certificate-violation",
                case=seed_line,
                semantics=name,
                method="infers_literal",
                query=case.literal_atom,
                answers={"certifier": complaint},
                db=witness,
                original_db=mutant,
                minimization=minimization,
            )
        )
        return

    # 5. Budget-edge probe (sampled).
    if config.edge_probe_every and index % config.edge_probe_every == 0:
        outcomes = probe_budget_edge(mutant, name, case.query)
        report.edge_probes += 1
        statuses = {o.split(":")[0] for o in outcomes.values()}
        if "timeout" in statuses and len(statuses) > 1:
            report.budget_asymmetries += 1


def hunt(config: HuntConfig) -> HuntReport:
    """Run a full hunt under ``config`` (see the module docstring)."""
    report = HuntReport(config=config)
    start = time.monotonic()
    survivors: List[CorpusEntry] = []
    for index in range(config.max_cases):
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if config.budget_ms is not None and elapsed_ms > config.budget_ms:
            report.budget_exhausted = True
            break
        before = len(report.divergences)
        run_case(config, index, report)
        for divergence in report.divergences[before:]:
            if config.reports_dir is not None:
                from .report import write_diagnosis_report

                divergence.report_path = str(
                    write_diagnosis_report(divergence, config.reports_dir)
                )
            survivors.append(
                CorpusEntry(
                    db=divergence.db,
                    kind=divergence.kind,
                    semantics=divergence.semantics,
                    method=divergence.method,
                    origin=str(divergence.case),
                    note=divergence.detail,
                )
            )
    report.elapsed_ms = (time.monotonic() - start) * 1000.0
    if config.corpus_path is not None and survivors:
        added, total = fold_survivors(config.corpus_path, survivors)
        report.corpus_added = added
        report.corpus_total = total
    return report
