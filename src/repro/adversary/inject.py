"""Deliberate bug injection for exercising the hunter.

The hunter is only trustworthy if it demonstrably *catches* bugs, so
this module provides controlled breakage: context managers that corrupt
exactly one engine path and restore it on exit.  The test suite (and
anyone smoke-testing a hunt locally) wraps a hunt in one of these and
asserts a divergence + diagnosis report comes out the other side.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Set

from ..analysis import planner as _planner
from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation


@contextmanager
def injected_planner_bug() -> Iterator[None]:
    """Corrupt the planned engine's Horn fast path.

    Monkeypatches ``repro.analysis.planner.horn_least_model`` so the
    least model silently loses one *derived* atom (a head atom that is
    not a fact — dropping a fact would be caught by trivial cases too
    easily; dropping a derived atom specifically breaks the fixpoint
    propagation the planner's Horn dispatch relies on).  Only the
    ``planned`` engine consults this symbol, so brute/oracle/fresh/
    cached stay correct and the six-engine differential stack must
    flag the disagreement.
    """
    original = _planner.horn_least_model

    def corrupted(db: DisjunctiveDatabase):
        model, consistent = original(db)
        facts: Set[str] = set()
        for clause in db.clauses:
            if not clause.body_pos and not clause.body_neg:
                facts |= clause.head
        derived = sorted(set(model) - facts)
        if not derived:
            return model, consistent
        dropped = derived[0]
        return Interpretation(set(model) - {dropped}), consistent

    _planner.horn_least_model = corrupted
    try:
        yield
    finally:
        _planner.horn_least_model = original
