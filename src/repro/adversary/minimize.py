"""Delta-debugging minimizer for divergence witnesses.

Given a database on which some failure predicate holds (two engines
disagree, a certificate is violated, a metamorphic contract breaks), the
minimizer greedily shrinks it while the predicate keeps holding:

1. **Clause removal** — drop one clause at a time;
2. **Atom erasure** — erase one atom everywhere (from heads, bodies and
   the vocabulary; a head emptied by erasure becomes an integrity
   clause, which is still a legal witness).

Passes alternate to a fixpoint, so the result is **1-minimal**: no
single clause removal and no single atom erasure preserves the failure.
The walk order is drawn from a seeded RNG — the same seed always yields
the same witness — and the whole search is bounded by a predicate-call
budget so a pathological predicate cannot stall the hunter.

Predicates are expected to swallow their own exceptions (a shrunken
database may leave the syntactic class the predicate's semantics needs);
:func:`minimize_database` additionally treats a *raising* predicate as
"failure gone" so minimization is always safe to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase

#: Default ceiling on predicate evaluations per minimization.
DEFAULT_MAX_CHECKS = 600

Predicate = Callable[[DisjunctiveDatabase], bool]


@dataclass
class MinimizationResult:
    """Outcome of one delta-debugging run.

    Attributes:
        db: the minimized witness (still failing).
        checks: predicate evaluations spent.
        removed_clauses / removed_atoms: how much was shaved off.
        complete: ``True`` when a 1-minimal fixpoint was certified
            within the check budget, ``False`` when the budget ran out
            first (the witness is still valid, just maybe shrinkable).
    """

    db: DisjunctiveDatabase
    checks: int = 0
    removed_clauses: int = 0
    removed_atoms: int = 0
    complete: bool = True

    def render(self) -> str:
        status = "1-minimal" if self.complete else "budget-capped"
        return (
            f"{status}: {len(self.db.clauses)} clause(s), "
            f"{len(self.db.vocabulary)} atom(s) "
            f"(-{self.removed_clauses} clause(s), "
            f"-{self.removed_atoms} atom(s), {self.checks} check(s))"
        )


def erase_atom(db: DisjunctiveDatabase, atom: str) -> DisjunctiveDatabase:
    """``db`` with ``atom`` erased from every clause and the vocabulary.

    Clauses that become entirely empty (no head, no body) are dropped —
    an empty clause is not expressible in the surface syntax.
    """
    clauses: List[Clause] = []
    for clause in db.clauses:
        stripped = Clause(
            clause.head - {atom},
            clause.body_pos - {atom},
            clause.body_neg - {atom},
        )
        if stripped.head or stripped.body_pos or stripped.body_neg:
            clauses.append(stripped)
    return DisjunctiveDatabase(clauses, db.vocabulary - {atom})


class _Budget:
    __slots__ = ("used", "limit")

    def __init__(self, limit: int):
        self.used = 0
        self.limit = limit

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _holds(predicate: Predicate, db: DisjunctiveDatabase,
           budget: _Budget) -> bool:
    budget.used += 1
    try:
        return bool(predicate(db))
    except Exception:
        return False


def minimize_database(
    db: DisjunctiveDatabase,
    predicate: Predicate,
    max_checks: int = DEFAULT_MAX_CHECKS,
    seed: int = 0,
) -> MinimizationResult:
    """Greedily 1-minimize ``db`` while ``predicate`` keeps holding.

    Args:
        db: the failing database (``predicate(db)`` must be true).
        predicate: the failure check; called on candidate shrinks.
        max_checks: ceiling on predicate evaluations (the first,
            confirming call included).
        seed: walk-order seed; a fixed seed makes the result a pure
            function of ``(db, predicate)``.

    Raises:
        ValueError: when the predicate does not hold on the input.
    """
    budget = _Budget(max_checks)
    if not _holds(predicate, db, budget):
        raise ValueError("predicate does not hold on the input database")
    rng = random.Random(seed)
    current = db
    removed_clauses = removed_atoms = 0
    changed = True
    while changed and not budget.exhausted:
        changed = False
        # Pass 1: clause removal.
        clauses = sorted(current.clauses)
        rng.shuffle(clauses)
        for clause in clauses:
            if budget.exhausted:
                break
            candidate = DisjunctiveDatabase(
                current.clauses - {clause}, current.vocabulary
            )
            if _holds(predicate, candidate, budget):
                current = candidate
                removed_clauses += 1
                changed = True
        # Pass 2: atom erasure.
        atoms = sorted(current.vocabulary)
        rng.shuffle(atoms)
        for atom in atoms:
            if budget.exhausted:
                break
            if atom not in current.vocabulary:
                continue
            candidate = erase_atom(current, atom)
            if _holds(predicate, candidate, budget):
                current = candidate
                removed_atoms += 1
                changed = True
    # A fixpoint was certified only if the last full sweep both ran to
    # completion and removed nothing.
    complete = not changed and not budget.exhausted
    return MinimizationResult(
        db=current,
        checks=budget.used,
        removed_clauses=removed_clauses,
        removed_atoms=removed_atoms,
        complete=complete,
    )
