"""Metamorphic and boundary mutators for adversarial scenario search.

Two families of database mutations feed the divergence hunter
(:mod:`repro.adversary.hunter`):

* **Metamorphic mutators** transform a database while *provably
  preserving the answers* of a documented set of semantics (on queries
  over the original vocabulary).  Each mutator states its preservation
  contract in :attr:`Mutator.preserves`, justified clause by clause in
  its docstring; the contract is enforced by
  ``tests/test_metamorphic.py`` across all five engines.  Because the
  answers may not change, the *original database evaluated once* is a
  perfect differential oracle for the mutant — no ground-truth
  enumeration needed.

* **Boundary mutators** take a database classified by
  :mod:`repro.analysis.fragment` and nudge it *just across* one edge of
  the fragment lattice (barely-non-Horn, barely-non-HCF,
  barely-non-stratified).  They make no preservation claim; their
  product is a scenario sitting exactly where the fragment planner's
  dispatch and the certifier's tightened envelopes change regime — the
  places a misclassification goes unnoticed by ordinary random testing.
  Each declares a :attr:`Mutator.target` checked by
  :func:`boundary_target_met`.

The rewritings echo the shift/split transformations studied in the
minimal-founded-semantics line (PAPERS.md, cs/0312028) and the
trichotomy boundary classes of Truszczyński (PAPERS.md, arXiv
1007.2816).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.fragment import FragmentProfile, fragment_profile
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import (
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)
from ..logic.parser import parse_database
from ..logic.transform import rename_atoms, shift_negation_to_head

#: Every registered paper semantics the differential stack exercises.
ALL_SEMANTICS: Tuple[str, ...] = (
    "gcwa", "ccwa", "egcwa", "ecwa", "circ", "ddr", "pws", "perf",
    "icwa", "dsm", "pdsm",
)

#: Semantics whose selected models are a function of the *classical*
#: model set alone (minimal / (P;Z)-minimal models of ``Mod(DB)``).
#: Any transformation preserving classical models preserves these.
MODEL_BASED: Tuple[str, ...] = ("gcwa", "ccwa", "egcwa", "ecwa", "circ")


def rename_formula(formula: Formula, mapping: Dict[str, str]) -> Formula:
    """Apply an atom renaming to a query formula (identity off-map)."""
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Var):
        return Var(mapping.get(formula.name, formula.name))
    if isinstance(formula, Not):
        return Not(rename_formula(formula.operand, mapping))
    if isinstance(formula, And):
        return And(*(rename_formula(f, mapping) for f in formula.operands))
    if isinstance(formula, Or):
        return Or(*(rename_formula(f, mapping) for f in formula.operands))
    if isinstance(formula, Implies):
        return Implies(
            rename_formula(formula.antecedent, mapping),
            rename_formula(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(
            rename_formula(formula.left, mapping),
            rename_formula(formula.right, mapping),
        )
    raise TypeError(f"unknown formula node: {formula!r}")


def fresh_atom(db: DisjunctiveDatabase, prefix: str = "zz") -> str:
    """An atom name guaranteed not to occur in ``db``'s vocabulary."""
    index = 0
    while f"{prefix}{index}" in db.vocabulary:
        index += 1
    return f"{prefix}{index}"


@dataclass(frozen=True)
class MutationResult:
    """One applied mutation.

    Attributes:
        mutator: catalogue name of the mutator that produced this.
        db: the mutated database.
        preserves: semantics names whose *answers* (``infers``,
            ``infers_literal``, ``has_model``) on queries over the
            original vocabulary are unchanged — empty for boundary
            mutators, which claim nothing.
        preserves_model_set: whether ``model_set`` itself is unchanged
            (requires an unchanged vocabulary; stricter than answer
            preservation).
        query_map: atom renaming to apply to queries before evaluating
            them against :attr:`db` (``None`` = identity).
        target: for boundary mutators, the lattice edge the mutant must
            have crossed (see :func:`boundary_target_met`).
        note: human-readable description of what was changed.
    """

    mutator: str
    db: DisjunctiveDatabase
    preserves: Tuple[str, ...] = ()
    preserves_model_set: bool = False
    query_map: Optional[Dict[str, str]] = None
    target: Optional[str] = None
    note: str = ""

    def map_query(self, formula: Formula) -> Formula:
        """The query as it must be asked against the mutated database."""
        if not self.query_map:
            return formula
        return rename_formula(formula, self.query_map)

    def map_atom(self, atom: str) -> str:
        if not self.query_map:
            return atom
        return self.query_map.get(atom, atom)


class Mutator:
    """Base class: one entry of the mutation catalogue.

    Attributes:
        name: catalogue key (stable; appears in seed lines and reports).
        kind: ``"metamorphic"`` or ``"boundary"``.
        preserves: the documented preservation contract (metamorphic
            mutators only) — the semantics under which original and
            mutant answers must coincide.
        preserves_model_set: whether the contract extends to the raw
            selected-model set.
        target: the lattice edge a boundary mutator must cross.
    """

    name: str = ""
    kind: str = "metamorphic"
    preserves: Tuple[str, ...] = ()
    preserves_model_set: bool = False
    target: Optional[str] = None

    def applicable(
        self, db: DisjunctiveDatabase, profile: FragmentProfile
    ) -> bool:
        """Whether this mutator can act on ``db`` at all."""
        return len(db.clauses) > 0

    def apply(
        self, db: DisjunctiveDatabase, rng: random.Random
    ) -> Optional[MutationResult]:
        """Produce a mutant, or ``None`` when no opportunity exists
        (callers treat ``None`` as 'skip', not as an error)."""
        raise NotImplementedError

    def _result(self, db: DisjunctiveDatabase, **kwargs) -> MutationResult:
        kwargs.setdefault("preserves", self.preserves)
        kwargs.setdefault("preserves_model_set", self.preserves_model_set)
        kwargs.setdefault("target", self.target)
        return MutationResult(mutator=self.name, db=db, **kwargs)


# ----------------------------------------------------------------------
# Metamorphic mutators
# ----------------------------------------------------------------------
class RenameMutator(Mutator):
    """Uniform injective atom renaming.

    Every semantics in the paper is defined up to the names of atoms, so
    renaming preserves *all* answers once the query is renamed the same
    way (:attr:`MutationResult.query_map`).  The model set is preserved
    only up to renaming, so ``preserves_model_set`` stays ``False``.
    """

    name = "rename"
    preserves = ALL_SEMANTICS

    def apply(self, db, rng):
        atoms = sorted(db.vocabulary)
        if not atoms:
            return None
        shuffled = list(atoms)
        rng.shuffle(shuffled)
        prefix = "rn_"
        while any(a.startswith(prefix) for a in atoms):
            prefix += "_"
        mapping = {
            old: f"{prefix}{new}" for old, new in zip(atoms, shuffled)
        }
        return self._result(
            rename_atoms(db, mapping),
            query_map=mapping,
            note=f"renamed {len(mapping)} atoms injectively",
        )


class ReorderMutator(Mutator):
    """Clause reordering via a serialize → shuffle → re-parse round trip.

    Databases are clause *sets*, so any textual ordering must parse back
    to a structurally identical database; every semantics (and the model
    set) is trivially preserved.  What this actually stresses is the
    parser/renderer round trip — a discrepancy here would silently
    desynchronize the corpus files from the databases they encode.
    """

    name = "reorder"
    preserves = ALL_SEMANTICS
    preserves_model_set = True

    def apply(self, db, rng):
        lines = [str(clause) for clause in db]
        rng.shuffle(lines)
        reparsed = parse_database("\n".join(lines))
        # Re-parsing narrows the vocabulary to the occurring atoms; put
        # any silent vocabulary atoms back.
        mutant = reparsed.with_vocabulary(db.vocabulary)
        return self._result(
            mutant, note=f"round-tripped {len(lines)} shuffled clause(s)"
        )


class DuplicateMutator(Mutator):
    """Duplicate-clause insertion.

    The clause set is a ``frozenset``, so inserting a structural copy of
    an existing clause must collapse to the identical database; all
    semantics and the model set are preserved.  This guards the
    structural-equality/hashing layer the engine cache keys on.
    """

    name = "duplicate"
    preserves = ALL_SEMANTICS
    preserves_model_set = True

    def apply(self, db, rng):
        if not db.clauses:
            return None
        clause = rng.choice(sorted(db.clauses))
        copy = Clause(clause.head, clause.body_pos, clause.body_neg)
        return self._result(
            db.with_clauses([copy]),
            note=f"re-inserted structural duplicate of `{clause}`",
        )


class TautologyPadMutator(Mutator):
    """Fresh-atom tautology padding: add ``x :- x.`` for a fresh ``x``.

    The new clause is classically valid, so over the widened vocabulary
    every model merely chooses ``x`` freely — and every minimization
    (GCWA/EGCWA/CCWA/ECWA/CIRC with default partitions, DDR's
    derivability, PWS split programs, PERF/ICWA strata, DSM reducts,
    PDSM's 3-valued minimality) drives ``x`` to false.  Answers to
    queries over the *original* vocabulary are therefore unchanged under
    every semantics.  The vocabulary grew, so the raw model set did
    change (every model gains the ``x = false`` coordinate).
    """

    name = "tautology_pad"
    preserves = ALL_SEMANTICS

    def apply(self, db, rng):
        atom = fresh_atom(db, prefix="pad")
        clause = Clause.rule([atom], [atom])
        return self._result(
            db.with_clauses([clause]),
            note=f"padded with fresh tautology `{clause}`",
        )


class ComponentCloneMutator(Mutator):
    """Component cloning: a disjoint renamed copy of the whole database.

    By the connected-component product law (:mod:`repro.sat.decompose`)
    the selected models of ``DB ⊎ DB'`` are exactly the products of the
    parts' selected models, for every semantics whose selection
    relation is pointwise (all eleven here: minimality, stability,
    perfection and possible-model selection all factor over disjoint
    vocabularies).  The clone is consistent exactly when the original
    is, so for queries over the original vocabulary both cautious
    inference and model existence are unchanged.  The model set becomes
    the product, so it is *not* preserved.
    """

    name = "component_clone"
    preserves = ALL_SEMANTICS

    def applicable(self, db, profile):
        # Cloning doubles the vocabulary; keep brute ground truth
        # feasible for the hunter's differential stack.
        return 0 < len(db.vocabulary) <= 6

    def apply(self, db, rng):
        prefix = fresh_atom(db, prefix="cl")
        mapping = {a: f"{prefix}_{a}" for a in sorted(db.vocabulary)}
        clone = rename_atoms(db, mapping)
        merged = DisjunctiveDatabase(
            db.clauses | clone.clauses, db.vocabulary | clone.vocabulary
        )
        return self._result(
            merged,
            note=(
                f"added disjoint renamed clone ({len(clone.clauses)} "
                f"clause(s), prefix `{prefix}_`)"
            ),
        )


class HeadShiftMutator(Mutator):
    """Head-shift rewriting: move every ``not c`` into the head.

    ``a :- b, not c`` and ``a | c :- b`` denote the same propositional
    clause, so the classical model set — and with it every semantics
    that is a function of the classical model set (the
    minimal-model/circumscriptive family :data:`MODEL_BASED`) — is
    preserved exactly, model set included.  Negation-*sensitive*
    semantics (DSM, PDSM, PERF, ICWA) genuinely change under shifting
    and are deliberately outside the contract; WGCWA/DDR and PWS reject
    negation so the original side is not even defined.
    """

    name = "head_shift"
    preserves = MODEL_BASED
    preserves_model_set = True

    def applicable(self, db, profile):
        return db.has_negation

    def apply(self, db, rng):
        shifted = shift_negation_to_head(db)
        moved = sum(len(c.body_neg) for c in db.clauses)
        return self._result(
            shifted,
            note=f"shifted {moved} negative body literal(s) into heads",
        )


class BodySplitMutator(Mutator):
    """Body-split rewriting: factor a long body through a fresh atom.

    ``h :- b1, ..., bk [, not ...]`` (``k >= 2``) becomes::

        h :- b1, aux [, not ...]        aux :- b2, ..., bk.

    In every minimal (or stable, perfect, possible) model the fresh
    ``aux`` holds exactly when ``b2, ..., bk`` do — the defining rule
    forces it upward and minimization presses it downward — so
    restriction to the original vocabulary is a bijection between the
    two databases' selected models.  Answers over the original
    vocabulary are preserved for every semantics; PDSM is included
    (``aux`` takes the minimum of its body's three values in any
    partial stable model).  The vocabulary grew, so the raw model set
    is not preserved.
    """

    name = "body_split"
    preserves = ALL_SEMANTICS

    def applicable(self, db, profile):
        return any(len(c.body_pos) >= 2 for c in db.clauses)

    def apply(self, db, rng):
        candidates = sorted(
            c for c in db.clauses if len(c.body_pos) >= 2
        )
        if not candidates:
            return None
        clause = rng.choice(candidates)
        body = sorted(clause.body_pos)
        keep = rng.choice(body)
        rest = [b for b in body if b != keep]
        aux = fresh_atom(db, prefix="aux")
        replaced = Clause(clause.head, frozenset((keep, aux)), clause.body_neg)
        definition = Clause.rule([aux], rest)
        clauses = (db.clauses - {clause}) | {replaced, definition}
        mutant = DisjunctiveDatabase(clauses, db.vocabulary | {aux})
        return self._result(
            mutant,
            note=f"split body of `{clause}` through fresh `{aux}`",
        )


# ----------------------------------------------------------------------
# Boundary mutators
# ----------------------------------------------------------------------
class WidenHeadMutator(Mutator):
    """Barely-non-Horn: widen exactly one head of a Horn database.

    The mutant has exactly one disjunctive clause, so it sits one edit
    outside the Horn cell — the planner must abandon the zero-SAT
    unit-propagation path and the certifier must widen the envelope from
    P, while almost the entire database still *looks* Horn.
    """

    name = "widen_head"
    kind = "boundary"
    target = "non-horn"

    def applicable(self, db, profile):
        return (
            profile.is_horn
            and len(db.vocabulary) >= 2
            and any(c.head for c in db.clauses)
        )

    def apply(self, db, rng):
        candidates = sorted(c for c in db.clauses if c.head)
        clause = rng.choice(candidates)
        extra_pool = sorted(
            db.vocabulary - clause.head - clause.body_pos
        )
        if not extra_pool:
            return None
        extra = rng.choice(extra_pool)
        widened = Clause(
            clause.head | {extra}, clause.body_pos, clause.body_neg
        )
        clauses = (db.clauses - {clause}) | {widened}
        return self._result(
            DisjunctiveDatabase(clauses, db.vocabulary),
            note=f"widened head of `{clause}` with `{extra}`",
        )


class CloseHeadCycleMutator(Mutator):
    """Barely-non-HCF: close one positive cycle through a shared head.

    Picks a disjunctive clause with head atoms ``a, b`` and adds
    ``a :- b.`` and ``b :- a.``, putting both head atoms into one SCC of
    the positive dependency graph — the exact Ben-Eliyahu–Dechter
    violation.  The planner's NP-level foundedness fast path is complete
    only up to this edge; one step past it the Σ₂ᵖ machinery must take
    over.
    """

    name = "close_head_cycle"
    kind = "boundary"
    target = "non-hcf"

    def applicable(self, db, profile):
        return (
            profile.negation_free
            and profile.head_cycle_free
            and profile.disjunctive_clauses > 0
        )

    def apply(self, db, rng):
        candidates = sorted(c for c in db.clauses if c.is_disjunctive)
        if not candidates:
            return None
        clause = rng.choice(candidates)
        a, b = sorted(rng.sample(sorted(clause.head), 2))
        tie = [Clause.rule([a], [b]), Clause.rule([b], [a])]
        return self._result(
            db.with_clauses(tie),
            note=(
                f"tied head atoms `{a}`/`{b}` of `{clause}` into one "
                "positive cycle"
            ),
        )


class BreakStratificationMutator(Mutator):
    """Barely-non-stratified: attach one even negative loop.

    Adds ``x :- not y.  y :- not x.`` over two *fresh* atoms: a single
    unstratifiable component, disjoint from the original database.  The
    stratification-dependent dispatches (ICWA, PERF, the stratified
    certifier rows) must all step back to the general cell, while the
    original clauses are untouched.
    """

    name = "break_stratification"
    kind = "boundary"
    target = "unstratified"

    def applicable(self, db, profile):
        return profile.is_stratified

    def apply(self, db, rng):
        x = fresh_atom(db, prefix="loopx")
        y = fresh_atom(db.with_vocabulary([x]), prefix="loopy")
        loop = [
            Clause.rule([x], (), [y]),
            Clause.rule([y], (), [x]),
        ]
        return self._result(
            db.with_clauses(loop),
            note=f"attached even negative loop over fresh `{x}`/`{y}`",
        )


#: The catalogue, in stable order (seed lines index into this by name).
MUTATORS: Tuple[Mutator, ...] = (
    RenameMutator(),
    ReorderMutator(),
    DuplicateMutator(),
    TautologyPadMutator(),
    ComponentCloneMutator(),
    HeadShiftMutator(),
    BodySplitMutator(),
    WidenHeadMutator(),
    CloseHeadCycleMutator(),
    BreakStratificationMutator(),
)

MUTATORS_BY_NAME: Dict[str, Mutator] = {m.name: m for m in MUTATORS}


def metamorphic_mutators() -> Tuple[Mutator, ...]:
    """The catalogue entries carrying a preservation contract."""
    return tuple(m for m in MUTATORS if m.kind == "metamorphic")


def boundary_mutators() -> Tuple[Mutator, ...]:
    """The catalogue entries that nudge across a fragment-lattice edge."""
    return tuple(m for m in MUTATORS if m.kind == "boundary")


def boundary_target_met(
    target: str, before: FragmentProfile, after: FragmentProfile
) -> bool:
    """Whether a boundary mutant landed just across the intended edge."""
    if target == "non-horn":
        return (
            not after.is_horn
            and after.negation_free == before.negation_free
            and after.disjunctive_clauses == 1
        )
    if target == "non-hcf":
        return not after.head_cycle_free and after.negation_free
    if target == "unstratified":
        return not after.is_stratified
    raise ValueError(f"unknown boundary target {target!r}")


def applicable_semantics(db: DisjunctiveDatabase) -> Tuple[str, ...]:
    """The registered paper semantics defined on ``db``'s regime.

    Mirrors the regime table of ``tests/test_differential.py``: DDR and
    PWS reject negation, PERF rejects integrity clauses and demands a
    stratification, ICWA demands a stratification.
    """
    from ..engine.cache import stratification_for

    names: List[str] = ["gcwa", "ccwa", "egcwa", "ecwa", "circ", "dsm", "pdsm"]
    if not db.has_negation:
        names += ["ddr", "pws"]
    stratified = stratification_for(db) is not None
    if stratified:
        names.append("icwa")
        if not db.has_integrity_clauses:
            names.append("perf")
    return tuple(n for n in ALL_SEMANTICS if n in names)
