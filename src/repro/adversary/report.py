"""Markdown diagnosis reports for hunted divergences.

Every :class:`~repro.adversary.hunter.Divergence` renders to a
self-contained markdown report: what broke, the 1-minimal witness, the
disagreeing answers side by side, the witness's fragment profile, the
per-engine oracle-call accounting, and — crucially — the exact seed line
that reproduces the case from scratch.  CI uploads ``reports/*.md`` as
artifacts so a nightly failure arrives pre-triaged.
"""

from __future__ import annotations

import json
import os
import re
from typing import TYPE_CHECKING, List

from ..analysis.fragment import fragment_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .hunter import Divergence

#: Columns of the oracle-accounting table (OracleObservation fields).
_OBS_FIELDS = ("np_calls", "sigma2_dispatches", "nodes", "max_sigma2_depth")


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-") or "case"


def report_filename(divergence: "Divergence") -> str:
    case = divergence.case.get("case", "x")
    return (
        f"divergence-{_slug(divergence.kind)}-"
        f"seed{divergence.case.get('seed', 0)}-case{case}-"
        f"{_slug(divergence.semantics)}.md"
    )


def _db_block(title: str, text: str) -> List[str]:
    return [f"### {title}", "", "```prolog", text.rstrip("\n"), "```", ""]


def render_diagnosis(divergence: "Divergence") -> str:
    """The full markdown diagnosis for one divergence."""
    case = divergence.case
    profile = fragment_profile(divergence.db)
    lines: List[str] = [
        f"# Divergence: {divergence.kind}",
        "",
        "| field | value |",
        "| --- | --- |",
        f"| kind | `{divergence.kind}` |",
        f"| semantics | `{divergence.semantics}` |",
        f"| method | `{divergence.method}` |",
    ]
    if divergence.query:
        lines.append(f"| query | `{divergence.query}` |")
    lines += [
        f"| mutator | `{case.get('mutator')}` |",
        f"| regime | `{case.get('regime')}` |",
        f"| hunt seed | `{case.get('seed')}` / case `{case.get('case')}` |",
        f"| witness size | {len(divergence.db.clauses)} clause(s), "
        f"{len(divergence.db.vocabulary)} atom(s) |",
        f"| fragment | `{profile.fragment}` |",
        "",
    ]
    if divergence.detail:
        lines += ["> " + divergence.detail, ""]

    lines += [
        "## Reproduction",
        "",
        "Re-run the single originating case (the hunt is a pure function",
        "of its seed, so case indices are stable):",
        "",
        "```sh",
        f"repro-ddb hunt --seed {case.get('seed', 0)} "
        f"--max-cases {int(case.get('case', 0)) + 1}",
        "```",
        "",
        "Seed line:",
        "",
        "```json",
        json.dumps(case, indent=2, sort_keys=True),
        "```",
        "",
        "## Disagreement",
        "",
        "| side | answer |",
        "| --- | --- |",
    ]
    for side, answer in divergence.answers.items():
        marker = " (ground truth)" if side == "brute" else ""
        rendered = answer.replace("|", "\\|").replace("\n", " ")
        lines.append(f"| `{side}`{marker} | `{rendered}` |")
    lines.append("")

    lines += ["## Minimized witness", ""]
    if divergence.minimization is not None:
        lines += [divergence.minimization.render(), ""]
    lines += _db_block("Witness database", str(divergence.db))

    lines += [
        "## Fragment profile",
        "",
        "```",
        profile.render().rstrip("\n"),
        "```",
        "",
    ]

    if divergence.observations:
        lines += [
            "## Oracle-call accounting (on the minimized witness)",
            "",
            "| engine | " + " | ".join(_OBS_FIELDS) + " |",
            "| --- |" + " --- |" * len(_OBS_FIELDS),
        ]
        for engine, obs in divergence.observations.items():
            cells = " | ".join(str(obs.get(f, 0)) for f in _OBS_FIELDS)
            lines.append(f"| `{engine}` | {cells} |")
        lines.append("")

    if divergence.original_db.clauses != divergence.db.clauses:
        lines += _db_block(
            "Original (unminimized) database", str(divergence.original_db)
        )
    return "\n".join(lines).rstrip("\n") + "\n"


def write_diagnosis_report(divergence: "Divergence", directory: str) -> str:
    """Write the diagnosis markdown under ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, report_filename(divergence))
    with open(path, "w") as handle:
        handle.write(render_diagnosis(divergence))
    return path
