"""Static analysis, in two prongs.

**Input analysis** (:mod:`repro.analysis.fragment`,
:mod:`repro.analysis.cost`, :mod:`repro.analysis.planner`): classify a
:class:`~repro.logic.database.DisjunctiveDatabase` into the syntactic
fragment lattice (definite ⊂ Horn ⊂ acyclic-deductive ⊂ head-cycle-free
deductive ⊂ deductive ⊂ stratified-normal ⊂ stratified ⊂ general) in
one linear pass, then dispatch each (semantics, task) query to the
*cheapest sound* procedure by calibrated cost comparison — every
candidate gets a predicted NP-call / Σ₂ᵖ-dispatch / node estimate from
the profile, and a specialized procedure is never chosen unless its
estimate beats the default engine's.  Horn collapses to a
unit-propagation least-model path with zero SAT calls, stratified
normal databases to the iterated per-stratum least model,
head-cycle-free deductive databases replace the Σ₂ᵖ minimality
primitive by a polynomial foundedness check (the Ben-Eliyahu–Dechter
criterion).  The planner is exposed as
``get_semantics(name, engine="planned")`` and through
:class:`~repro.session.DatabaseSession`; the chosen
:class:`~repro.analysis.planner.QueryPlan` is recorded on every
:class:`~repro.session.Answer` and tightens the certifier envelope for
the query (a Horn-planned query that issues even one NP call is a
certificate violation).

**Codebase analysis** (:mod:`repro.analysis.lint`): an AST linter
enforcing the oracle-call discipline statically that the certifier
checks dynamically — no ad-hoc ``SatSolver()`` outside the sanctioned
modules, every Σ₂ᵖ primitive realization decorated for accounting, no
Σ₂ᵖ machinery referenced from coNP-classified semantics modules,
deadline checks in solver loops, every registered semantics tied to a
Table 1/2 row.  Run it as ``python -m repro.analysis.lint`` or
``repro-ddb lint``.
"""

from .cost import COST_MODEL, CostEstimate, CostModel
from .fragment import (
    FragmentAnalyzer,
    FragmentProfile,
    fragment_of,
    fragment_profile,
)
from .planner import FragmentPlanner, PlannedSemantics, QueryPlan

__all__ = [
    "COST_MODEL",
    "CostEstimate",
    "CostModel",
    "FragmentAnalyzer",
    "FragmentProfile",
    "fragment_of",
    "fragment_profile",
    "FragmentPlanner",
    "PlannedSemantics",
    "QueryPlan",
]
