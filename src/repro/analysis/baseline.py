"""Finding baselines and changed-file restriction for the analyzers.

Shared by ``repro-ddb lint`` and ``repro-ddb check``: CI gates on *new*
findings — fingerprints not accounted for by the checked-in baseline —
so a legacy violation can be grandfathered without masking fresh ones,
and ``--diff`` restricts a local run to files changed relative to git
``HEAD`` so the edit-check loop stays fast on a large tree.

A baseline is a JSON document::

    {"version": 1, "fingerprints": [["RPR001", "src/repro/x.py",
                                     "message..."], ...]}

Fingerprints are ``(rule, normalized path, message)`` — deliberately
line-number-free so unrelated edits above a grandfathered finding do
not resurrect it.  Duplicate fingerprints are budgeted by count: two
identical violations with one baselined still reports one as new.
"""

from __future__ import annotations

import json
import subprocess
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .lint import Finding

#: Path anchors a finding path is normalized to start at, so baselines
#: recorded on one checkout match runs from another.
_ANCHORS = ("src/repro/", "tests/", "benchmarks/")

Fingerprint = Tuple[str, str, str]


def normalize_path(path: object) -> str:
    """Strip the checkout prefix from a finding path when possible."""
    text = Path(str(path)).as_posix()
    for anchor in _ANCHORS:
        if text.startswith(anchor):
            return text
        index = text.find("/" + anchor)
        if index >= 0:
            return text[index + 1:]
    return text


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.rule, normalize_path(finding.path), finding.message)


def save_baseline(findings: Sequence[Finding], path: Path) -> None:
    document = {
        "version": 1,
        "fingerprints": sorted(
            list(fingerprint(finding)) for finding in findings
        ),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: Path) -> Counter:
    """The fingerprint budget recorded in a baseline file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return Counter(
        tuple(entry) for entry in data.get("fingerprints", ())
        if isinstance(entry, (list, tuple)) and len(entry) == 3
    )


def filter_new(
    findings: Sequence[Finding], baseline: Counter
) -> List[Finding]:
    """Findings whose fingerprints exceed the baseline's budget."""
    budget = Counter(baseline)
    new: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(finding)
    return new


def _git_lines(args: Sequence[str], cwd: Path) -> List[str]:
    completed = subprocess.run(
        ["git", *args], cwd=str(cwd), capture_output=True,
        text=True, timeout=30, check=True,
    )
    return [line for line in completed.stdout.splitlines() if line]


def changed_files(root: Optional[Path] = None) -> Optional[Set[str]]:
    """Absolute paths changed relative to ``HEAD`` (tracked edits plus
    untracked files), or ``None`` when git is unavailable — callers
    must fall back to a full run, never silently skip."""
    cwd = Path(root) if root is not None else Path.cwd()
    try:
        top = Path(_git_lines(["rev-parse", "--show-toplevel"], cwd)[0])
        names = _git_lines(["diff", "--name-only", "HEAD"], cwd)
        names += _git_lines(
            ["ls-files", "--others", "--exclude-standard"], cwd
        )
    except Exception:
        return None
    return {str((top / name).resolve()) for name in names}


def restrict_to_changed(
    findings: Iterable[Finding], changed: Set[str]
) -> List[Finding]:
    return [
        finding
        for finding in findings
        if str(Path(finding.path).resolve()) in changed
    ]
