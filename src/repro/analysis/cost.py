"""The planner's calibrated per-procedure cost model.

Every candidate procedure the :class:`~repro.analysis.planner.
FragmentPlanner` may dispatch to gets a :class:`CostEstimate` — predicted
NP-oracle calls, Σ₂ᵖ dispatches and enumeration nodes — computed from the
:class:`~repro.analysis.fragment.FragmentProfile` alone (clause census,
head widths, SCC sizes, strata).  The planner picks the candidate with
the smallest weighted scalar and **never** selects a specialized
procedure whose estimate exceeds the default engine's, so a fragment
fast path can only ever be chosen where the model predicts it wins.

Cost formulas (calibrated against measured oracle accounting on the
differential corpus and the benchmark families; the calibration band is
asserted by ``tests/test_differential.py``):

``G``, the *growth term*, prices how hard one candidate-model search is::

    G(p)  = (atoms + largest_scc + disjunctive_clauses) // 8

* one Σ₂ᵖ dispatch (``find_minimal_satisfying``: candidate generation,
  the shrink-within chain, one SAT minimality check)::

      S(p)  = 3 + G(p)          # NP calls, 1 Σ₂ᵖ dispatch

* one *founded* search (``np_find_minimal_satisfying``: same candidate
  loop, but the minimality oracle is the polynomial foundedness check —
  one SAT call fewer, zero dispatches)::

      F(p)  = 2 + G(p)          # NP calls, 0 dispatches

* the free-for-negation closure ``ff(DB)`` (one search per vocabulary
  atom plus one classical entailment call)::

      FF(p)  = atoms * S(p) + 1     # default (Σ₂ᵖ) closure
      FF0(p) = atoms * F(p) + 1     # founded closure (memoized per DB)

* model enumeration is priced exponentially in the choice points; a
  database that splits into connected components is priced as a *sum*
  of per-component terms (the brute enumerators decompose, see
  :mod:`repro.sat.decompose`), never above the monolithic bound::

      E(p)  = 2 ** min(disjunctive_clauses + 1, 14)          # connected
      E(p)  = min(Σᵢ 2 ** min(dᵢ + 1, 14), monolithic E)     # split

* the bitset kernel (:mod:`repro.kernel`) answers MM-/ff-reducible
  queries by mask-packed enumeration — zero oracle calls, pure
  enumeration nodes: a setup constant plus one full-vocabulary sweep
  per component (and a second sweep for methods that must materialize
  all models rather than just the minimal ones)::

      K(p) = KERNEL_SETUP + Σᵢ 2 ** min(|Vᵢ| + 1, 26) [+ 2 ** min(atoms + 1, 26)]

  The 26-bit cap deliberately exceeds the enumeration cap: a large
  connected database prices the kernel out rather than flattening its
  estimate into competitiveness.

The per-``(semantics, method)`` default-engine estimates combine these
(see :meth:`CostModel.default_estimate`); the Horn and
stratified-perfect fixpoints are pure P (all-zero estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Tuple

from .fragment import FragmentProfile

#: Procedure names recorded on plans and cost estimates.
HORN_PROCEDURE = "horn-least-model"
HCF_PROCEDURE = "hcf-founded"
HCF_CLOSURE_PROCEDURE = "hcf-closure"
STRATIFIED_PROCEDURE = "stratified-perfect"
KERNEL_PROCEDURE = "kernel-bitset"
DEFAULT_PROCEDURE = "default"

#: Flat node price of packing a database into the bitset kernel (atom
#: table + clause masks, both memoized) and converting answers back at
#: the API boundary; keeps the kernel from looking free on tiny inputs
#: where one pooled SAT call is genuinely cheaper.
KERNEL_SETUP = 256.0

#: Bit cap of the kernel's exponential sweep terms.  Deliberately far
#: above the 14-bit enumeration cap: a large connected vocabulary must
#: price the kernel *out*, not flatten into competitiveness.
_KERNEL_BIT_CAP = 26

#: Semantics whose selected-model set collapses to {least model} on
#: consistent Horn databases (and to ∅ on inconsistent ones), under the
#: default partition.  See the planner module docstring for exclusions.
HORN_COLLAPSE: FrozenSet[str] = frozenset(
    {
        "cwa", "gcwa", "ddr", "pws", "egcwa", "ccwa", "ecwa", "circ",
        "icwa", "perf", "dsm",
    }
)

#: Semantics whose cautious/brave inference is plain minimal-model
#: entailment on head-cycle-free deductive databases (default partition).
MM_REDUCIBLE: FrozenSet[str] = frozenset(
    {"egcwa", "ecwa", "circ", "icwa", "dsm", "perf"}
)

#: Semantics whose inference is classical entailment from the
#: free-for-negation closure (GCWA-style) — ``ff`` itself reduces to
#: minimal-model witness queries.
FF_REDUCIBLE: FrozenSet[str] = frozenset({"gcwa", "ccwa"})

#: Semantics whose selected models collapse to {the iterated least
#: model} on stratified *normal* (head width ≤ 1) databases: the unique
#: perfect model is the unique stable model (Apt–Blair–Walker), which
#: PERF selects by priority, ICWA by stratum-wise iteration and DSM as
#: its only stable model.  GCWA-family semantics read negative bodies
#: classically and do **not** collapse.
PERFECT_COLLAPSE: FrozenSet[str] = frozenset({"perf", "icwa", "dsm"})

#: Scalar weights: one Σ₂ᵖ dispatch costs dispatch bookkeeping on top of
#: the NP calls it already accounts for; enumeration nodes are cheap
#: pure-python steps, priced well below one oracle call.
SIGMA2_WEIGHT = 2.0
NODE_WEIGHT = 0.01

#: Methods the specialized inference procedures cover.
_INFERENCE_METHODS = ("infers", "infers_literal", "infers_brave")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted oracle work of one procedure for one query.

    Attributes:
        procedure: the candidate's procedure name.
        np_calls / sigma2_dispatches / nodes: the predicted counter
            values of :class:`~repro.obs.accounting.OracleObservation`.
        reason: one line of estimator rationale.
    """

    procedure: str
    np_calls: float
    sigma2_dispatches: float
    nodes: float
    reason: str

    @property
    def scalar(self) -> float:
        """The weighted single-number cost the planner minimizes."""
        return (
            self.np_calls
            + SIGMA2_WEIGHT * self.sigma2_dispatches
            + NODE_WEIGHT * self.nodes
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "procedure": self.procedure,
            "np_calls": round(self.np_calls, 2),
            "sigma2_dispatches": round(self.sigma2_dispatches, 2),
            "nodes": round(self.nodes, 2),
            "scalar": round(self.scalar, 2),
            "reason": self.reason,
        }


class CostModel:
    """Estimates per-candidate oracle work from a fragment profile.

    Stateless; the module-level :data:`COST_MODEL` is the shared
    instance.  All formulas are monotone (non-decreasing) in every
    profile count they read — adding clauses, growing an SCC or widening
    a head never makes a query look cheaper (asserted by
    ``tests/test_cost_model.py``).
    """

    # ------------------------------------------------------------------
    # Primitive formulas (see the module docstring)
    # ------------------------------------------------------------------
    @staticmethod
    def growth(profile: FragmentProfile) -> float:
        """``G(p)`` — how hard one candidate-model search is."""
        return (
            profile.atoms + profile.largest_scc
            + profile.disjunctive_clauses
        ) // 8

    def sigma2_search_np(self, profile: FragmentProfile) -> float:
        """``S(p)`` — NP calls of one Σ₂ᵖ ``find_minimal_satisfying``."""
        return 3.0 + self.growth(profile)

    def founded_search_np(self, profile: FragmentProfile) -> float:
        """``F(p)`` — NP calls of one founded (NP-level) search."""
        return 2.0 + self.growth(profile)

    def ff_closure_np(
        self, profile: FragmentProfile, founded: bool = False
    ) -> float:
        """``FF(p)`` / ``FF0(p)`` — the free-for-negation closure."""
        per_atom = (
            self.founded_search_np(profile)
            if founded
            else self.sigma2_search_np(profile)
        )
        return profile.atoms * per_atom + 1.0

    def enumeration_nodes(self, profile: FragmentProfile) -> float:
        """``E(p)`` — model-enumeration price (choice points).

        A database that splits into connected components is priced as
        the sum of per-component terms (the enumerators decompose along
        components), capped at the monolithic bound so the decomposed
        estimate is never *worse* than the connected one.
        """
        monolithic = float(2 ** min(profile.disjunctive_clauses + 1, 14))
        if profile.component_count > 1:
            split = float(
                sum(
                    2 ** min(d + 1, 14)
                    for d in profile.component_disjunctive
                )
            )
            return min(split, monolithic)
        return monolithic

    def kernel_nodes(
        self, profile: FragmentProfile, semantics: str, method: str
    ) -> float:
        """``K(p)`` — the bitset kernel's pure-enumeration price.

        Setup constant plus one full sweep of each connected
        component's candidate space (the decomposed minimal-model
        enumeration), plus a second whole-vocabulary sweep for methods
        that must materialize *all* classical models rather than just
        the minimal ones.  The exemptions mirror the brute engines:
        GCWA/CCWA ``infers_literal`` is answered from ``MM(DB)`` alone,
        and every EGCWA entry point is minimal-model-only by definition
        (EGCWA models = minimal models).
        """
        if profile.component_count > 1:
            sweep = float(
                sum(
                    2 ** min(a + 1, _KERNEL_BIT_CAP)
                    for a in profile.component_atoms
                )
            )
        else:
            sweep = float(2 ** min(profile.atoms + 1, _KERNEL_BIT_CAP))
        minimal_only = (
            semantics in FF_REDUCIBLE and method == "infers_literal"
        ) or (
            semantics == "egcwa"
            and method in (
                "infers", "infers_brave", "infers_literal", "model_set",
            )
        )
        if not minimal_only:
            sweep += float(2 ** min(profile.atoms + 1, _KERNEL_BIT_CAP))
        return KERNEL_SETUP + sweep

    # ------------------------------------------------------------------
    # Default-engine estimates
    # ------------------------------------------------------------------
    def default_estimate(
        self, profile: FragmentProfile, semantics: str, method: str
    ) -> CostEstimate:
        """What the wrapped oracle engine is predicted to spend on one
        ``method`` query under ``semantics``.

        Asymmetries worth knowing when reading predicted-vs-actual:
        ``infers_literal`` is priced at the single-dispatch reduction
        (both polarities for GCWA, the negative-literal closure test for
        CCWA — CCWA *positive* literals route through the full closure
        and can exceed the estimate), and ``model_set`` /
        circumscriptive ``has_model`` are enumerative order-of-magnitude
        bounds, documented as outside the calibration band.
        """
        s = self.sigma2_search_np(profile)
        strata_extra = float(max(0, profile.strata - 1))
        if method == "has_model":
            if profile.is_positive:
                return self._estimate(
                    DEFAULT_PROCEDURE, 0.0, 0.0, 0.0,
                    "positive database: model existence is trivial",
                )
            if semantics == "circ":
                # Circumscriptive model existence enumerates candidate
                # models; order-of-magnitude only.
                blowup = float(
                    2 ** min(
                        profile.disjunctive_clauses
                        + profile.clauses_with_negation + 1,
                        14,
                    )
                )
                return self._estimate(
                    DEFAULT_PROCEDURE, blowup, 0.0, blowup,
                    "circumscriptive model existence (enumerative)",
                )
            # Measured on the differential corpus: existence checks
            # settle in 0–2 SAT calls regardless of how much negation
            # the database carries, so the term is capped.
            return self._estimate(
                DEFAULT_PROCEDURE,
                1.0 + min(float(profile.clauses_with_negation), 2.0),
                0.0, 0.0,
                "consistency / stable-model existence check",
            )
        if method == "model_set":
            nodes = self.enumeration_nodes(profile)
            np_calls = nodes + (
                self.ff_closure_np(profile)
                if semantics in FF_REDUCIBLE
                else s
            )
            return self._estimate(
                DEFAULT_PROCEDURE, np_calls, 1.0, nodes,
                "selected-model enumeration",
            )
        # The inference entry points.
        if semantics in FF_REDUCIBLE:
            if method == "infers" or method == "infers_brave":
                return self._estimate(
                    DEFAULT_PROCEDURE,
                    self.ff_closure_np(profile),
                    float(profile.atoms),
                    0.0,
                    "ff(DB) closure (one Σ₂ᵖ query per atom) + one "
                    "classical entailment call",
                )
            return self._estimate(
                DEFAULT_PROCEDURE, s, 1.0, 0.0,
                "one Σ₂ᵖ minimal-witness query (negative-literal "
                "closure test)",
            )
        # MM-entailment family (egcwa/ecwa/circ/dsm) and the stratified
        # iterators (icwa/perf) — one dispatch, plus a stratum term.
        dispatches = 1.0 if semantics in ("egcwa", "ecwa", "icwa") else 0.0
        return self._estimate(
            DEFAULT_PROCEDURE, s + strata_extra, dispatches, 0.0,
            "one minimal-model entailment query"
            + (" per stratum" if strata_extra else ""),
        )

    # ------------------------------------------------------------------
    # Candidate enumeration and choice
    # ------------------------------------------------------------------
    def candidates(
        self,
        profile: FragmentProfile,
        semantics: str,
        method: str,
        default_parameterization: bool = True,
    ) -> Tuple[CostEstimate, ...]:
        """Every *sound* candidate for this query, default first.

        The fast paths are proved only for the default partition; with
        explicit ``(P;Z)`` parameters the default engine is the only
        candidate.
        """
        out = [self.default_estimate(profile, semantics, method)]
        if not default_parameterization:
            return tuple(out)
        if profile.is_horn and semantics in HORN_COLLAPSE:
            out.append(
                self._estimate(
                    HORN_PROCEDURE, 0.0, 0.0, 0.0,
                    "unit-propagation least model (pure P, zero SAT "
                    "calls)",
                )
            )
        if (
            profile.is_stratified
            and profile.max_head_width <= 1
            and not profile.is_horn
            and semantics in PERFECT_COLLAPSE
        ):
            out.append(
                self._estimate(
                    STRATIFIED_PROCEDURE, 0.0, 0.0, 0.0,
                    "iterated per-stratum least model (unique perfect "
                    "model, pure P)",
                )
            )
        if (
            profile.is_stratified
            and profile.max_head_width <= 1
            and profile.positive_acyclic
            and semantics == "supported"
        ):
            # Tight (positive-acyclic) ⟹ supported = stable models
            # (Fages); stratified normal ⟹ the unique stable model is
            # the perfect model (Apt–Blair–Walker).  Same fixpoint, and
            # positive acyclicity is essential: ``a :- a.`` is
            # stratified yet has the unsupported {a} excluded only by
            # tightness.
            out.append(
                self._estimate(
                    STRATIFIED_PROCEDURE, 0.0, 0.0, 0.0,
                    "tight stratified-normal database: the unique "
                    "supported model is the perfect model (pure P)",
                )
            )
        if profile.negation_free and profile.head_cycle_free:
            f = self.founded_search_np(profile)
            if semantics in MM_REDUCIBLE and method in _INFERENCE_METHODS:
                out.append(
                    self._estimate(
                        HCF_PROCEDURE, f, 0.0, 0.0,
                        "one founded minimal-witness search (polynomial "
                        "minimality check, zero Σ₂ᵖ dispatches)",
                    )
                )
            if semantics in FF_REDUCIBLE and method == "infers_literal":
                out.append(
                    self._estimate(
                        HCF_PROCEDURE, f, 0.0, 0.0,
                        "one founded minimal-witness search per literal "
                        "(zero Σ₂ᵖ dispatches)",
                    )
                )
            if semantics in FF_REDUCIBLE and method == "infers":
                out.append(
                    self._estimate(
                        HCF_CLOSURE_PROCEDURE,
                        self.ff_closure_np(profile, founded=True),
                        0.0,
                        0.0,
                        "founded ff(DB) closure (memoized per database) "
                        "+ one classical entailment call",
                    )
                )
        # ``circ`` is excluded: its brute engine minimizes via SAT
        # probes even on small databases, so the zero-oracle-call
        # estimate below would misprice it.
        kernel_eligible = (
            semantics in MM_REDUCIBLE or semantics in FF_REDUCIBLE
        ) and semantics != "circ"
        if kernel_eligible:
            out.append(
                self._estimate(
                    KERNEL_PROCEDURE,
                    0.0,
                    0.0,
                    self.kernel_nodes(profile, semantics, method),
                    "bitset-kernel enumeration (mask-packed, "
                    "decomposed per component; zero oracle calls)",
                )
            )
        return tuple(out)

    def choose(
        self,
        profile: FragmentProfile,
        semantics: str,
        method: str,
        default_parameterization: bool = True,
    ) -> Tuple[CostEstimate, Tuple[CostEstimate, ...]]:
        """``(chosen, all candidates)`` — cheapest scalar wins.

        The never-worse-than-default rule: a specialized candidate is
        selected only when its estimate is *strictly below* the default
        engine's, so on ties (and everywhere the model predicts no win)
        the planner stays on the table procedures.
        """
        table = self.candidates(
            profile, semantics, method, default_parameterization
        )
        default = table[0]
        chosen = min(table, key=lambda e: e.scalar)
        if (
            chosen.procedure != DEFAULT_PROCEDURE
            and chosen.scalar >= default.scalar
        ):
            chosen = default
        return chosen, table

    # ------------------------------------------------------------------
    @staticmethod
    def _estimate(
        procedure: str,
        np_calls: float,
        sigma2: float,
        nodes: float,
        reason: str,
    ) -> CostEstimate:
        return CostEstimate(
            procedure=procedure,
            np_calls=np_calls,
            sigma2_dispatches=sigma2,
            nodes=nodes,
            reason=reason,
        )


#: The shared estimator instance the planner and the CLI use.
COST_MODEL = CostModel()
