"""Fragment analysis of disjunctive databases.

The paper's Tables 1 and 2 price queries at their worst-case class, but
Truszczyński's trichotomy results show that syntactic fragments collapse
many cells: Horn databases have a unique minimal model computable by
unit propagation (everything the GCWA family does is then P), and
head-cycle-free databases (Ben-Eliyahu & Dechter) admit a polynomial
minimality check, dropping the Σ₂ᵖ minimal-model primitive to NP.

:class:`FragmentAnalyzer` computes a :class:`FragmentProfile` with one
linear pass over the clauses plus two linear SCC passes (the positive
dependency graph for head-cycle-freeness, and the cached stratification
for the negation lattice).  Profiles are memoized per database through
the engine cache (:func:`fragment_profile`), so the planner, the
certifier and the CLI share one analysis.

The fragment *lattice* (most specific first)::

    definite ⊂ horn ⊂ acyclic-deductive ⊂ hcf-deductive ⊂ deductive
             ⊂ stratified-normal ⊂ stratified ⊂ general

The two refinements come from the trichotomy line of work
(Truszczyński, arXiv 1007.2816): ``acyclic-deductive`` (negation-free
with an *acyclic* positive dependency graph — trivially head-cycle-free,
with singleton SCCs that keep the planner's search estimates small) and
``stratified-normal`` (stratified with every head ≤ 1 atom — the unique
perfect model is the unique stable model and is computable in P by the
iterated per-stratum least model, see
:func:`repro.analysis.procedures.stratified_perfect_model`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..logic.database import DisjunctiveDatabase

#: Fragment labels, most specific first.  ``positive`` (Table 1's
#: regime: no negation *and* no integrity clauses) is orthogonal to this
#: chain and reported separately on the profile.
FRAGMENT_ORDER: Tuple[str, ...] = (
    "definite",
    "horn",
    "acyclic-deductive",
    "hcf-deductive",
    "deductive",
    "stratified-normal",
    "stratified",
    "general",
)


@dataclass(frozen=True)
class FragmentProfile:
    """Everything the planner needs to know about one database.

    Attributes:
        atoms / clauses: vocabulary and clause counts.
        facts / integrity_clauses / disjunctive_clauses /
            clauses_with_negation / definite_clauses: clause-shape census.
        max_head_width / max_body_width / max_clause_width: widest head,
            body, and clause (head + body atoms) seen.
        is_positive: Table 1's regime — no negation and no integrity
            clauses.
        negation_free: no ``not`` anywhere (a *deductive* database; may
            still contain integrity clauses, i.e. Table 2's regime).
        is_horn: every clause Horn (head ≤ 1 atom, positive body).
        is_definite: every clause definite (head exactly 1, positive
            body) — Horn without integrity clauses.
        is_stratified: no dependency cycle through negation.
        strata: stratum count (0 when unstratifiable).
        head_cycle_free: the Ben-Eliyahu–Dechter criterion — no two
            atoms sharing a disjunctive head lie in one SCC of the
            positive dependency graph.
        positive_acyclic: the positive dependency graph has no cycle at
            all (every SCC a singleton, no self-loop) — strictly finer
            than head-cycle-freeness.
        scc_count / largest_scc: SCC census of the positive dependency
            graph (body→head edges; heads deliberately *not* tied,
            unlike the stratification graph).
        component_count / largest_component: connected-component census
            of the clause graph (see :mod:`repro.sat.decompose`) — the
            structure the brute enumerators decompose along.
        component_atoms / component_disjunctive: per-component atom and
            disjunctive-clause counts, in the canonical (min-atom)
            component order; the cost model prices decomposed
            enumeration as a *sum* of per-component terms instead of
            one monolithic exponential.
    """

    atoms: int
    clauses: int
    facts: int
    integrity_clauses: int
    disjunctive_clauses: int
    clauses_with_negation: int
    definite_clauses: int
    max_head_width: int
    max_body_width: int
    max_clause_width: int
    is_positive: bool
    negation_free: bool
    is_horn: bool
    is_definite: bool
    is_stratified: bool
    strata: int
    head_cycle_free: bool
    positive_acyclic: bool
    scc_count: int
    largest_scc: int
    component_count: int = 1
    largest_component: int = 0
    component_atoms: Tuple[int, ...] = ()
    component_disjunctive: Tuple[int, ...] = ()

    @property
    def fragment(self) -> str:
        """The most specific label of :data:`FRAGMENT_ORDER` that holds."""
        if self.is_definite:
            return "definite"
        if self.is_horn:
            return "horn"
        if self.negation_free and self.positive_acyclic:
            return "acyclic-deductive"
        if self.negation_free and self.head_cycle_free:
            return "hcf-deductive"
        if self.negation_free:
            return "deductive"
        if self.is_stratified and self.max_head_width <= 1:
            return "stratified-normal"
        if self.is_stratified:
            return "stratified"
        return "general"

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready report (CLI / CI artifact format)."""
        return {
            "fragment": self.fragment,
            "atoms": self.atoms,
            "clauses": self.clauses,
            "facts": self.facts,
            "integrity_clauses": self.integrity_clauses,
            "disjunctive_clauses": self.disjunctive_clauses,
            "clauses_with_negation": self.clauses_with_negation,
            "definite_clauses": self.definite_clauses,
            "max_head_width": self.max_head_width,
            "max_body_width": self.max_body_width,
            "max_clause_width": self.max_clause_width,
            "is_positive": self.is_positive,
            "negation_free": self.negation_free,
            "is_horn": self.is_horn,
            "is_definite": self.is_definite,
            "is_stratified": self.is_stratified,
            "strata": self.strata,
            "head_cycle_free": self.head_cycle_free,
            "positive_acyclic": self.positive_acyclic,
            "scc_count": self.scc_count,
            "largest_scc": self.largest_scc,
            "component_count": self.component_count,
            "largest_component": self.largest_component,
            "component_atoms": list(self.component_atoms),
            "component_disjunctive": list(self.component_disjunctive),
        }

    def render(self) -> str:
        lines = [f"fragment: {self.fragment}"]
        for key, value in self.as_dict().items():
            if key == "fragment":
                continue
            lines.append(f"  {key}: {value}")
        return "\n".join(lines)


class FragmentAnalyzer:
    """Computes :class:`FragmentProfile`\\ s.

    Stateless; exists as a class so callers can hold one analyzer and so
    alternative analyses (e.g. treewidth-style measures) have a home to
    subclass.  Use :func:`fragment_profile` for the memoized entry.
    """

    def analyze(self, db: DisjunctiveDatabase) -> FragmentProfile:
        facts = integrity = disjunctive = negated = definite = 0
        max_head = max_body = max_clause = 0
        all_horn = True
        all_definite = True
        # Positive dependency graph for head-cycle-freeness: one edge per
        # (positive body atom → head atom).  Unlike the stratification
        # graph, atoms sharing a head are NOT tied together — the
        # criterion asks precisely whether such a tie would close a
        # positive cycle.
        adjacency: Dict[str, List[str]] = {a: [] for a in db.vocabulary}
        head_pairs: List[Tuple[str, ...]] = []
        for clause in db.clauses:
            head_width = len(clause.head)
            body_width = len(clause.body_pos) + len(clause.body_neg)
            max_head = max(max_head, head_width)
            max_body = max(max_body, body_width)
            max_clause = max(max_clause, head_width + body_width)
            if clause.is_fact:
                facts += 1
            if clause.is_integrity:
                integrity += 1
            if clause.is_disjunctive:
                disjunctive += 1
                head_pairs.append(tuple(sorted(clause.head)))
            if clause.body_neg:
                negated += 1
            if clause.is_definite:
                definite += 1
            all_horn = all_horn and clause.is_horn
            all_definite = all_definite and clause.is_definite
            for head_atom in clause.head:
                for body_atom in clause.body_pos:
                    adjacency[body_atom].append(head_atom)

        scc_count, largest, hcf, acyclic = self._head_cycle_analysis(
            db, adjacency, head_pairs
        )
        component_atoms, component_disjunctive = self._component_census(db)
        from ..engine.cache import stratification_for

        stratification = stratification_for(db)
        return FragmentProfile(
            atoms=len(db.vocabulary),
            clauses=len(db.clauses),
            facts=facts,
            integrity_clauses=integrity,
            disjunctive_clauses=disjunctive,
            clauses_with_negation=negated,
            definite_clauses=definite,
            max_head_width=max_head,
            max_body_width=max_body,
            max_clause_width=max_clause,
            is_positive=db.is_positive,
            negation_free=not db.has_negation,
            is_horn=all_horn,
            is_definite=all_definite and not integrity,
            is_stratified=stratification is not None,
            strata=0 if stratification is None else len(stratification),
            head_cycle_free=hcf,
            positive_acyclic=acyclic,
            scc_count=scc_count,
            largest_scc=largest,
            component_count=len(component_atoms),
            largest_component=max(component_atoms, default=0),
            component_atoms=component_atoms,
            component_disjunctive=component_disjunctive,
        )

    @staticmethod
    def _component_census(
        db: DisjunctiveDatabase,
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Per-component ``(atom count, disjunctive clause count)``
        tuples, in the canonical component order of
        :func:`repro.sat.decompose.connected_components`."""
        from ..sat.decompose import connected_components

        components = connected_components(db)
        component_of: Dict[str, int] = {
            atom: index
            for index, component in enumerate(components)
            for atom in component
        }
        disjunctive = [0] * len(components)
        for clause in db.clauses:
            if not clause.is_disjunctive:
                continue
            # Every atom of a clause lies in one component by
            # construction of the clause graph.
            disjunctive[component_of[next(iter(clause.head))]] += 1
        return (
            tuple(len(c) for c in components),
            tuple(disjunctive),
        )

    @staticmethod
    def _head_cycle_analysis(
        db: DisjunctiveDatabase,
        adjacency: Dict[str, List[str]],
        head_pairs: List[Tuple[str, ...]],
    ) -> Tuple[int, int, bool, bool]:
        """SCC census of the positive dependency graph, the
        Ben-Eliyahu–Dechter head-cycle-freeness verdict, and outright
        acyclicity (singleton SCCs and no self-loop)."""
        from ..semantics.stratification import _tarjan_sccs

        components = _tarjan_sccs(sorted(db.vocabulary), adjacency)
        component_of = {
            atom: index
            for index, component in enumerate(components)
            for atom in component
        }
        largest = max((len(c) for c in components), default=0)
        acyclic = largest <= 1 and not any(
            atom in targets for atom, targets in adjacency.items()
        )
        hcf = True
        for head in head_pairs:
            seen: Dict[int, str] = {}
            for atom in head:
                component = component_of[atom]
                if component in seen:
                    # Two distinct head atoms in one SCC: a positive
                    # cycle runs through the disjunction.
                    hcf = False
                    break
                seen[component] = atom
            if not hcf:
                break
        return len(components), largest, hcf, acyclic


def fragment_profile(db: DisjunctiveDatabase) -> FragmentProfile:
    """The memoized :class:`FragmentProfile` of ``db`` (see
    :func:`repro.engine.cache.fragment_profile_for`)."""
    from ..engine.cache import fragment_profile_for

    return fragment_profile_for(db)


def fragment_of(db: DisjunctiveDatabase) -> str:
    """The lattice cell of ``db`` alone (memoized via the profile) —
    for callers that classify without needing the full census, e.g. the
    adversarial hunter's boundary checks and diagnosis reports."""
    return fragment_profile(db).fragment
