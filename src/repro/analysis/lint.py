"""The repro codebase linter — prong 2 of the static-analysis subsystem.

The observability layer (:mod:`repro.obs`) can only certify complexity
claims for code paths that actually route through its accounting; the
architectural conventions that make the accounting *complete* are
enforced here, statically, over the AST of the source tree:

====== ==============================================================
Rule   Convention enforced
====== ==============================================================
RPR001 No ad-hoc ``SatSolver()`` construction outside the sanctioned
       modules (``repro/sat/solver.py`` one-shot helpers and the
       pooled ``repro/sat/incremental.py``) — stray solvers bypass
       pooling *and* the per-query solver-stat deltas.
RPR002 Every function named ``find_minimal_satisfying`` (the Σ₂ᵖ
       primitive) must be decorated ``@counts_as_sigma2_dispatch`` so
       each realization site is wrapped in oracle accounting.
RPR003 Modules implementing coNP-classified semantics (every Table
       1/2 upper bound ≤ coNP — currently ``ddr`` and ``pws``) must
       not reference Σ₂ᵖ machinery at all: a coNP entry point that
       dispatches ``find_minimal_satisfying`` would blow its own
       certified envelope.
RPR004 Every ``while`` loop that issues ``solve()`` calls must thread
       a ``check_deadline()`` through its body, so unbounded solver
       loops stay responsive to session budgets.
RPR005 Every ``Semantics`` subclass declaring a ``name`` must be
       ``@register``-ed and (after alias folding) carry a Table 1/2
       row claim — a semantics outside the tables silently escapes
       certification.
RPR006 No direct ``stratify()`` calls outside the implementing module
       and the engine cache — use the memoized accessors so the
       analyzer, the planner and the semantics share one
       stratification per database.
====== ==============================================================

A violation that is *known-good* is waived inline with a comment on the
flagged line or the line above it::

    abstraction = SatSolver()  # lint: ok RPR001 -- bare CNF, no db

Run as ``python -m repro.analysis.lint [paths...]`` or ``repro-ddb
lint``; exit status 1 on any finding, ``--format json`` for the
machine-readable report CI archives (the zero-new-findings gate).
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

#: Modules allowed to construct ``SatSolver`` directly (RPR001): the
#: one-shot helper module and the pooled incremental layer.
SANCTIONED_SOLVER_MODULES = (
    "repro/sat/solver.py",
    "repro/sat/incremental.py",
)

#: Modules allowed to call ``stratify`` directly (RPR006): the
#: implementation and the cache that memoizes it.
SANCTIONED_STRATIFY_MODULES = (
    "repro/semantics/stratification.py",
    "repro/engine/cache.py",
)

#: Identifiers that mark Σ₂ᵖ machinery (RPR003).  The ``np_``-prefixed
#: head-cycle-free variants are deliberately absent — they realize an
#: NP machine.
SIGMA2_MACHINERY = frozenset(
    {
        "find_minimal_satisfying",
        "entails_in_all_minimal",
        "MinimalModelSolver",
        "PZMinimalModelSolver",
        "PrioritizedMinimalModelSolver",
        "sigma2_dispatch",
        "counts_as_sigma2_dispatch",
    }
)

#: Fallback for RPR003/RPR005 when the package cannot be imported (e.g.
#: linting a checkout from outside).  Kept in sync by
#: ``tests/test_analysis.py``.
_FALLBACK_CONP_SEMANTICS = frozenset({"ddr", "pws"})
_FALLBACK_ROW_ORDER = (
    "gcwa", "ddr", "pws", "egcwa", "ccwa", "ecwa", "icwa", "perf",
    "dsm", "pdsm",
)
_FALLBACK_ALIASES = {"circ": "ecwa", "wgcwa": "ddr", "pms": "pws"}

#: Base-class names that mark a semantics implementation (RPR005).
_SEMANTICS_BASES = frozenset({"Semantics", "PartitionedSemantics"})


def conp_semantics() -> frozenset:
    """Semantics whose every Table 1/2 upper bound is ≤ coNP, derived
    from the claims themselves when the package is importable."""
    try:
        from ..complexity import ROW_ORDER
        from ..complexity.classes import CC
        from ..obs.certify import Certifier, Regime, Task

        low = {CC.CONSTANT, CC.P, CC.NP, CC.CONP}
        names = []
        for name in ROW_ORDER:
            uppers = set()
            for task in Task:
                for regime in Regime:
                    try:
                        uppers.add(
                            Certifier.claim_for(name, task, regime).upper
                        )
                    except KeyError:
                        continue
            if uppers and uppers <= low:
                names.append(name)
        return frozenset(names)
    except Exception:
        return _FALLBACK_CONP_SEMANTICS


def table_rows() -> Tuple[Tuple[str, ...], Dict[str, str]]:
    """``(ROW_ORDER, aliases)`` for RPR005, with a static fallback."""
    try:
        from ..complexity import ROW_ORDER
        from ..obs.certify import _ALIASES

        return tuple(ROW_ORDER), dict(_ALIASES)
    except Exception:
        return _FALLBACK_ROW_ORDER, dict(_FALLBACK_ALIASES)


@dataclass(frozen=True)
class Finding:
    """One lint violation, pinned to a source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _module_matches(path: Path, suffixes: Sequence[str]) -> bool:
    text = path.as_posix()
    return any(text.endswith(suffix) for suffix in suffixes)


def _call_name(node: ast.Call) -> str:
    """The rightmost identifier of a call target (``x.y.f()`` → ``f``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _walk_same_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    definitions — code there runs in its own dynamic context."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


# ----------------------------------------------------------------------
# Rules.  Each takes (path, tree) and yields findings; waiver filtering
# happens afterwards, centrally.

def _rule_adhoc_solver(path: Path, tree: ast.Module) -> Iterator[Finding]:
    if _module_matches(path, SANCTIONED_SOLVER_MODULES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _call_name(node) == "SatSolver":
            yield Finding(
                "RPR001", str(path), node.lineno, node.col_offset,
                "ad-hoc SatSolver() construction; use the one-shot "
                "helpers in repro.sat.solver or pooled_scope()/"
                "acquire_solver() from repro.sat.incremental",
            )


def _rule_sigma2_decorator(
    path: Path, tree: ast.Module
) -> Iterator[Finding]:
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "find_minimal_satisfying"
        ):
            decorated = any(
                (isinstance(dec, ast.Name)
                 and dec.id == "counts_as_sigma2_dispatch")
                or (isinstance(dec, ast.Attribute)
                    and dec.attr == "counts_as_sigma2_dispatch")
                for dec in node.decorator_list
            )
            if not decorated:
                yield Finding(
                    "RPR002", str(path), node.lineno, node.col_offset,
                    "find_minimal_satisfying realizes the Σ₂ᵖ primitive "
                    "and must be decorated @counts_as_sigma2_dispatch",
                )


def _rule_conp_purity(path: Path, tree: ast.Module) -> Iterator[Finding]:
    conp = conp_semantics()
    suffixes = [f"repro/semantics/{name}.py" for name in sorted(conp)]
    if not _module_matches(path, suffixes):
        return
    for node in ast.walk(tree):
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.alias):
            name = node.name.rsplit(".", 1)[-1]
        if name in SIGMA2_MACHINERY:
            yield Finding(
                "RPR003", str(path), node.lineno, node.col_offset,
                f"coNP-classified semantics module references Σ₂ᵖ "
                f"machinery ({name}); the certified envelope forbids "
                "minimal-model dispatch here",
            )


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    """Resolve simple local aliases (``step = solver.solve`` /
    ``step = run``) to the rightmost underlying name, so RPR004 cannot
    be dodged by binding ``solve`` to a local before the loop."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        if isinstance(value, ast.Attribute):
            aliases[node.targets[0].id] = value.attr
        elif isinstance(value, ast.Name):
            aliases[node.targets[0].id] = value.id

    def resolve(name: str) -> str:
        seen = set()
        while name in aliases and name not in seen:
            seen.add(name)
            if aliases[name] == name:
                break
            name = aliases[name]
        return name

    return {name: resolve(name) for name in aliases}


def _rule_budgeted_loops(
    path: Path, tree: ast.Module
) -> Iterator[Finding]:
    aliases = _alias_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        calls = set()
        for inner in _walk_same_scope(node):
            if not isinstance(inner, ast.Call):
                continue
            name = _call_name(inner)
            calls.add(name)
            if isinstance(inner.func, ast.Name):
                calls.add(aliases.get(name, name))
        if "solve" in calls and "check_deadline" not in calls:
            yield Finding(
                "RPR004", str(path), node.lineno, node.col_offset,
                "while-loop issues solve() without check_deadline(); "
                "unbounded solver loops must stay responsive to "
                "session budgets",
            )


def _rule_registered_semantics(
    path: Path, tree: ast.Module
) -> Iterator[Finding]:
    rows, aliases = table_rows()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {
            base.id if isinstance(base, ast.Name) else
            base.attr if isinstance(base, ast.Attribute) else ""
            for base in node.bases
        }
        if not bases & _SEMANTICS_BASES:
            continue
        declared = None
        for statement in node.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "name"
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                declared = statement.value.value
        if declared is None:
            continue  # abstract helper base, not a registered semantics
        registered = any(
            (isinstance(dec, ast.Name) and dec.id == "register")
            or (isinstance(dec, ast.Attribute) and dec.attr == "register")
            for dec in node.decorator_list
        )
        if not registered:
            yield Finding(
                "RPR005", str(path), node.lineno, node.col_offset,
                f"Semantics subclass {node.name} declares "
                f"name={declared!r} but is not @register-ed",
            )
            continue
        canonical = aliases.get(declared, declared)
        if canonical not in rows:
            yield Finding(
                "RPR005", str(path), node.lineno, node.col_offset,
                f"semantics {declared!r} carries no Table 1/2 row "
                "claim; queries against it escape complexity "
                "certification",
            )


def _rule_cached_stratification(
    path: Path, tree: ast.Module
) -> Iterator[Finding]:
    if _module_matches(path, SANCTIONED_STRATIFY_MODULES):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _call_name(node) == "stratify":
            yield Finding(
                "RPR006", str(path), node.lineno, node.col_offset,
                "direct stratify() call; use the memoized "
                "stratification_for()/require_stratification() "
                "accessors so analyses share one result per database",
            )


#: rule id -> (one-line summary, checker).
RULES: Dict[
    str,
    Tuple[str, Callable[[Path, ast.Module], Iterator[Finding]]],
] = {
    "RPR001": ("no ad-hoc SatSolver()", _rule_adhoc_solver),
    "RPR002": (
        "Σ₂ᵖ primitive wrapped in accounting", _rule_sigma2_decorator,
    ),
    "RPR003": ("coNP modules free of Σ₂ᵖ machinery", _rule_conp_purity),
    "RPR004": ("solver loops check deadlines", _rule_budgeted_loops),
    "RPR005": (
        "semantics registered with a table claim",
        _rule_registered_semantics,
    ),
    "RPR006": (
        "stratification through the cache", _rule_cached_stratification,
    ),
}

_WAIVER_MARK = "# lint: ok"


def _waived_rules(line: str, mark: str = _WAIVER_MARK) -> frozenset:
    """Rule ids waived by ``# lint: ok RPR001 RPR004 [-- rationale]``
    (the whole-program checker reuses this with ``# static: ok``)."""
    index = line.find(mark)
    if index < 0:
        return frozenset()
    tail = line[index + len(mark):]
    tail = tail.split("--", 1)[0]
    return frozenset(
        token for token in tail.replace(",", " ").split()
        if token.startswith("RPR")
    )


def _is_waived(
    finding: Finding,
    lines: Sequence[str],
    marks: Sequence[str] = (_WAIVER_MARK,),
) -> bool:
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(lines):
            for mark in marks:
                if finding.rule in _waived_rules(lines[lineno - 1], mark):
                    return True
    return False


def lint_file(path: Path) -> List[Finding]:
    """All unwaived findings in one Python source file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                "RPR000", str(path), error.lineno or 1,
                error.offset or 0, f"syntax error: {error.msg}",
            )
        ]
    lines = source.splitlines()
    findings = [
        finding
        for _, checker in RULES.values()
        for finding in checker(path, tree)
        if not _is_waived(finding, lines)
    ]
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    """All unwaived findings across files and directory trees."""
    return [
        finding
        for path in iter_python_files(paths)
        for finding in lint_file(path)
    ]


def default_target() -> Path:
    """The installed ``repro`` package tree (what CI gates on)."""
    return Path(__file__).resolve().parents[1]


def main(argv: Sequence[str] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-ddb lint",
        description="Lint the repro source tree for complexity-"
        "accounting conventions (rules RPR001-RPR006).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    parser.add_argument(
        "--baseline", type=Path, metavar="JSON",
        help="gate on findings NOT in this baseline (CI: fail only on "
        "new findings)",
    )
    parser.add_argument(
        "--write-baseline", type=Path, metavar="JSON",
        help="record the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="only report findings in files changed vs. git HEAD",
    )
    args = parser.parse_args(argv)
    if args.rules:
        for rule_id, (summary, _) in sorted(RULES.items()):
            print(f"{rule_id}  {summary}")
        return 0
    from . import baseline as baseline_mod

    targets = args.paths or [default_target()]
    findings = lint_paths(targets)
    if args.diff:
        changed = baseline_mod.changed_files()
        if changed is not None:
            findings = baseline_mod.restrict_to_changed(findings, changed)
    if args.write_baseline is not None:
        baseline_mod.save_baseline(findings, args.write_baseline)
        print(
            f"baseline of {len(findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0
    gated = findings
    if args.baseline is not None:
        gated = baseline_mod.filter_new(
            findings, baseline_mod.load_baseline(args.baseline)
        )
    if args.format == "json":
        report = {
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
        }
        if args.baseline is not None:
            report["new"] = [f.as_dict() for f in gated]
            report["new_count"] = len(gated)
        print(json.dumps(report, indent=2, ensure_ascii=False))
    else:
        for finding in findings:
            marker = "" if finding in gated else " [baselined]"
            print(finding.render() + marker)
        print(
            f"{len(findings)} finding(s) "
            f"({len(gated)} new) in "
            f"{len(list(iter_python_files(targets)))} file(s)"
        )
    return 1 if gated else 0


if __name__ == "__main__":
    sys.exit(main())
