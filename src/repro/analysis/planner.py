"""The cost-based fragment planner and the ``"planned"`` engine.

:class:`FragmentPlanner` maps one ``(semantics, entry point)`` query
over a profiled database to the cheapest *sound* procedure, chosen by
the calibrated cost model (:mod:`repro.analysis.cost`): every candidate
gets a predicted NP-call / Σ₂ᵖ-dispatch / node estimate from the
:class:`~repro.analysis.fragment.FragmentProfile`, the smallest weighted
scalar wins, and a specialized procedure is never selected when its
estimate does not beat the default engine's.

Candidate procedures:

* ``horn-least-model`` — on Horn databases every closed-world semantics
  in :data:`HORN_COLLAPSE` selects exactly the least model of the
  definite part (or nothing, when an integrity clause fails), so every
  entry point is answered from the unit-propagation fixpoint — class P,
  **zero SAT calls**;
* ``stratified-perfect`` — on stratified *normal* (head width ≤ 1)
  databases PERF/ICWA/DSM select exactly the iterated per-stratum least
  model (the unique perfect = unique stable model) — class P, **zero
  SAT calls**;
* ``hcf-founded`` — on head-cycle-free deductive databases one
  minimal-witness query with the polynomial foundedness check
  (:class:`~repro.analysis.procedures.HeadCycleFreeSolver`) replaces the
  Σ₂ᵖ primitive: direct entailment for the MM-reducible semantics, and
  the *single-query* literal reduction for the GCWA family — plain SAT
  calls, **zero Σ₂ᵖ dispatches**;
* ``hcf-closure`` — GCWA-family formula inference as classical
  entailment from the founded ``ff(DB)`` closure, which is memoized per
  database (:func:`~repro.analysis.procedures.hcf_free_atoms`), so
  repeated queries pay one SAT call each;
* ``kernel-bitset`` — on small-vocabulary databases the MM-/ff-reducible
  semantics are answered by the mask-packed brute engine
  (:mod:`repro.kernel`): **zero oracle calls**, pure enumeration over
  packed interpretations, decomposed per connected component, with the
  answers memoized under the cached engine's keys (answers are
  engine-independent).  The cost model's 26-bit sweep cap prices the
  kernel out long before ``2^|V|`` could hurt;
* ``default`` — everything else delegates to the wrapped oracle
  procedures *behind the process-wide memo cache* (the planner's
  fallback is never slower than ``engine="cached"`` by more than the
  planning lookup itself).

:class:`PlannedSemantics` is the engine façade behind
``get_semantics(name, engine="planned")``: it profiles the database
(memoized), looks up or computes the :class:`QueryPlan` (memoized per
``(db, semantics, params, method)`` in the engine cache), records it on
:attr:`~PlannedSemantics.last_plan` (the session copies it onto the
:class:`~repro.session.Answer`, hands it to the certifier — which
*tightens* the envelope to the fragment's class — and records
predicted-vs-actual span attributes and metrics), and executes the
planned procedure.  Fast-path answers are memoized under the same keys
the ``cached`` engine uses — the answers are engine-independent, so the
planner composes with, rather than competes against, the memo layer.

Soundness notes (each backed by the 6-engine differential corpus):

* Horn collapse: on a consistent Horn database the least model ``M`` is
  the unique minimal model; GCWA/EGCWA/CCWA/ECWA/CIRC (default
  partition), DDR, PWS, ICWA (default partition — Horn databases are
  trivially stratified), PERF (Horn + no ICs), DSM and CWA all select
  exactly ``{M}``; on an inconsistent one all select ``∅``.  PDSM's
  three-valued states and the supported-model semantics (``a :- a.``
  has the non-minimal supported model ``{a}``) do *not* collapse and
  stay on ``default``.
* Stratified-normal collapse: a stratified normal program has a unique
  perfect model, which is its unique stable model; PERF, ICWA and DSM
  select exactly it (GCWA-family semantics read negative bodies
  classically and are excluded).  Integrity clauses are checked against
  the model; a violated one empties the selection.
* HCF reduction: with the default partition and no negation,
  EGCWA/ECWA/CIRC/DSM/PERF/ICWA inference is minimal-model entailment
  (``EGCWA(DB) = MM(DB)``; stable = minimal on negation-free programs;
  a negation-free database has a single stratum), and GCWA/CCWA
  inference is classical entailment from ``DB ∪ {¬x : x ∈ ff(DB)}``.
  For a *literal* the closure is not needed: ``GCWA(DB) |= x`` iff
  ``MM(DB) |= x`` and ``GCWA(DB) |= ¬x`` iff no minimal model contains
  ``x`` — one founded witness query either way, which is the fix for
  the BENCH_pr5 ``hcf-disjunctive-chain`` regression (the old path
  recomputed the full closure per query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple, Union

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Var
from ..logic.interpretation import Interpretation
from ..sat.incremental import pooled_scope
from ..semantics.base import Semantics, ground_query, literal_formula
from .cost import (
    COST_MODEL,
    DEFAULT_PROCEDURE,
    FF_REDUCIBLE,
    HCF_CLOSURE_PROCEDURE,
    HCF_PROCEDURE,
    HORN_COLLAPSE,
    HORN_PROCEDURE,
    KERNEL_PROCEDURE,
    MM_REDUCIBLE,
    PERFECT_COLLAPSE,
    STRATIFIED_PROCEDURE,
    CostEstimate,
    CostModel,
)
from .fragment import FragmentProfile
from .procedures import (
    HeadCycleFreeSolver,
    hcf_free_atoms,
    horn_least_model,
    stratified_perfect_model,
    supported_model_tight,
)

__all__ = [
    "HORN_COLLAPSE",
    "MM_REDUCIBLE",
    "FF_REDUCIBLE",
    "PERFECT_COLLAPSE",
    "HORN_PROCEDURE",
    "HCF_PROCEDURE",
    "HCF_CLOSURE_PROCEDURE",
    "STRATIFIED_PROCEDURE",
    "KERNEL_PROCEDURE",
    "DEFAULT_PROCEDURE",
    "QueryPlan",
    "FragmentPlanner",
    "PlannedSemantics",
]

#: Complexity claim per procedure (what the certifier tightens to).
#: The kernel procedure is honest about its class: mask-packed brute
#: enumeration is exponential *time* but zero oracle calls, so its
#: envelope bounds nodes generously and NP calls at zero.
_CLAIMS = {
    HORN_PROCEDURE: "P",
    STRATIFIED_PROCEDURE: "P",
    HCF_PROCEDURE: "coNP",
    HCF_CLOSURE_PROCEDURE: "coNP",
    KERNEL_PROCEDURE: "EXP",
    DEFAULT_PROCEDURE: "table default",
}


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict for one query.

    Attributes:
        semantics: canonical semantics name.
        method: the entry point planned for.
        fragment: the database's fragment label.
        procedure: one of ``horn-least-model`` / ``stratified-perfect``
            / ``hcf-founded`` / ``hcf-closure`` / ``kernel-bitset`` /
            ``default``.
        claim: the complexity class the chosen procedure runs in (what
            the certifier tightens the envelope to).
        reason: one line of planner rationale.
        predicted_np_calls / predicted_sigma2 / predicted_nodes: the
            cost model's estimate for the chosen procedure — compared
            against the observed counters on every session query.
        candidates: the full per-candidate cost table (default first),
            as rendered by ``repro-ddb plan``.
    """

    semantics: str
    method: str
    fragment: str
    procedure: str
    claim: str
    reason: str
    predicted_np_calls: float = 0.0
    predicted_sigma2: float = 0.0
    predicted_nodes: float = 0.0
    candidates: Tuple[CostEstimate, ...] = field(default=(), compare=False)

    @property
    def envelope_key(self) -> Optional[str]:
        """The certifier's tightened-envelope key (``None`` = the
        regular table-cell envelope applies)."""
        if self.procedure == HORN_PROCEDURE:
            return "horn"
        if self.procedure == STRATIFIED_PROCEDURE:
            return "stratified-normal"
        if self.procedure in (HCF_PROCEDURE, HCF_CLOSURE_PROCEDURE):
            return "hcf"
        if self.procedure == KERNEL_PROCEDURE:
            return "kernel"
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "semantics": self.semantics,
            "method": self.method,
            "fragment": self.fragment,
            "procedure": self.procedure,
            "claim": self.claim,
            "reason": self.reason,
            "predicted_np_calls": round(self.predicted_np_calls, 2),
            "predicted_sigma2": round(self.predicted_sigma2, 2),
            "predicted_nodes": round(self.predicted_nodes, 2),
            "candidates": [c.as_dict() for c in self.candidates],
        }

    def render(self) -> str:
        return (
            f"{self.semantics}/{self.method} on {self.fragment}: "
            f"{self.procedure} [{self.claim}] "
            f"(predicted {self.predicted_np_calls:g} np / "
            f"{self.predicted_sigma2:g} σ₂) — {self.reason}"
        )


class FragmentPlanner:
    """Maps (profile, semantics, entry point) to a :class:`QueryPlan`
    by per-candidate cost comparison."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = (
            cost_model if cost_model is not None else COST_MODEL
        )

    @staticmethod
    def _default_parameterization(inner: Semantics) -> bool:
        """The fast paths are proved only for the default partition
        (minimize the whole vocabulary, nothing floats, canonical
        stratification)."""
        return (
            getattr(inner, "p", None) is None
            and not getattr(inner, "z", frozenset())
            and getattr(inner, "stratification", None) is None
        )

    def plan(
        self,
        profile: FragmentProfile,
        inner: Semantics,
        method: str,
    ) -> QueryPlan:
        name = inner.name
        params_ok = self._default_parameterization(inner)
        chosen, candidates = self.cost_model.choose(
            profile, name, method, default_parameterization=params_ok
        )
        if not params_ok:
            reason = "non-default partition parameters"
        elif chosen.procedure == DEFAULT_PROCEDURE:
            cheapest_other = min(
                (c for c in candidates if c.procedure != DEFAULT_PROCEDURE),
                key=lambda c: c.scalar,
                default=None,
            )
            if cheapest_other is None:
                reason = (
                    f"no specialized candidate for the "
                    f"{profile.fragment} fragment"
                )
            else:
                reason = (
                    f"no candidate predicted cheaper than default "
                    f"({chosen.scalar:g} vs best alternative "
                    f"{cheapest_other.scalar:g})"
                )
        else:
            default = candidates[0]
            reason = (
                f"{chosen.reason} — predicted {chosen.scalar:g} vs "
                f"default {default.scalar:g}"
            )
        return QueryPlan(
            semantics=name,
            method=method,
            fragment=profile.fragment,
            procedure=chosen.procedure,
            claim=_CLAIMS[chosen.procedure],
            reason=reason,
            predicted_np_calls=chosen.np_calls,
            predicted_sigma2=chosen.sigma2_dispatches,
            predicted_nodes=chosen.nodes,
            candidates=candidates,
        )


class PlannedSemantics(Semantics):
    """The ``"planned"`` engine: cost-dispatched façade over an
    oracle-engine instance.

    Obtain through ``get_semantics(name, engine="planned")`` or
    ``DatabaseSession(db, engine="planned")``.  The last chosen plan is
    kept on :attr:`last_plan` for the session/certifier; unknown
    attributes delegate to the wrapped instance.
    """

    def __init__(
        self,
        inner: Semantics,
        planner: Optional[FragmentPlanner] = None,
    ):
        from ..engine.cached import CachedSemantics

        if isinstance(inner, PlannedSemantics):
            inner = inner.inner
        # Deliberately skip Semantics.__init__: "planned" is a wrapper
        # engine, same pattern as CachedSemantics.
        self.inner = inner
        self.engine = "planned"
        self.name = inner.name
        self.aliases = inner.aliases
        self.description = inner.description
        self._custom_planner = planner is not None
        self.planner = planner if planner is not None else FragmentPlanner()
        # The default procedure runs behind the memo cache: the planner
        # composes with the caching layer instead of competing with it
        # (ROADMAP gate: planned is never materially slower than cached).
        self.fallback = CachedSemantics(inner)
        self.last_plan: Optional[QueryPlan] = None
        # The perfect-model fixpoint behind the stratified fast path:
        # for the supported semantics it is the tight-program variant
        # (same memoized computation, documented gate).
        self._perfect = (
            supported_model_tight
            if inner.name == "supported"
            else stratified_perfect_model
        )
        # Lazily-built brute instance backing the kernel-bitset
        # procedure (mask-packed enumeration; see repro.kernel).
        self._kernel_brute: Optional[Semantics] = None
        # Per-instance plan memo in front of the engine-cache entry:
        # repeated queries on one engine pay a dict hit instead of the
        # shared cache's key build + LRU bookkeeping.  A hit also
        # certifies validation — both are deterministic per
        # ``(db, parameterization)``, so a stored plan proves
        # ``validate(db)`` succeeded when it was built.
        self._plan_memo: Dict[Tuple, QueryPlan] = {}

    # ------------------------------------------------------------------
    def validate(self, db: DisjunctiveDatabase) -> None:
        # Runs before planning so inapplicable databases raise exactly
        # as they would on any other engine.
        self.inner.validate(db)

    def plan_for(self, db: DisjunctiveDatabase, method: str) -> QueryPlan:
        """The plan this engine would (and does) use for ``method`` —
        memoized per ``(db, semantics, params, method)``, first in this
        instance and then through
        :func:`repro.engine.cache.query_plan_for` (a custom planner
        bypasses both caches)."""
        if self._custom_planner:
            plan = self._build_plan(db, method)
        else:
            key = (db,) + self.inner.cache_params() + (method,)
            plan = self._plan_memo.get(key)
            if plan is None:
                plan = self._build_plan(db, method)
                if len(self._plan_memo) >= 1024:
                    self._plan_memo.clear()
                self._plan_memo[key] = plan
        self.last_plan = plan
        return plan

    def _build_plan(self, db: DisjunctiveDatabase, method: str) -> QueryPlan:
        from ..engine.cache import query_plan_for

        return query_plan_for(
            db,
            self.inner,
            method,
            planner=self.planner if self._custom_planner else None,
        )

    def _validated_plan(
        self, db: DisjunctiveDatabase, method: str
    ) -> QueryPlan:
        """:meth:`plan_for` with validation folded in: re-validating on
        an instance-memo hit would cost more than the dispatch it guards,
        and the stored plan already proves the database is legal for this
        parameterization."""
        if self._custom_planner:
            self.validate(db)
            return self.plan_for(db, method)
        key = (db,) + self.inner.cache_params() + (method,)
        plan = self._plan_memo.get(key)
        if plan is None:
            self.validate(db)
            plan = self._build_plan(db, method)
            if len(self._plan_memo) >= 1024:
                self._plan_memo.clear()
            self._plan_memo[key] = plan
        self.last_plan = plan
        return plan

    def _answer_key(self, db: DisjunctiveDatabase, *query) -> Tuple:
        """Fast-path answers share the cached engine's key discipline:
        answers are engine-independent (differential-tested), so one
        entry serves ``cached`` and ``planned`` alike."""
        return (
            (db, self.inner.name, self.inner.engine)
            + self.inner.cache_params()
            + query
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        plan = self._validated_plan(db, "model_set")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            return frozenset({model}) if consistent else frozenset()
        if plan.procedure == STRATIFIED_PROCEDURE:
            model, consistent = self._perfect(db)
            return frozenset({model}) if consistent else frozenset()
        if plan.procedure == KERNEL_PROCEDURE:
            return self._memoized(
                "model_set", self._answer_key(db),
                lambda: self._kernel_engine().model_set(db),
            )
        # static: fallback-edge -- planner's never-worse default
        return self.fallback.model_set(db)

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        plan = self._validated_plan(db, "infers")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return True  # vacuous: no selected models
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == STRATIFIED_PROCEDURE:
            model, consistent = self._perfect(db)
            if not consistent:
                return True
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == KERNEL_PROCEDURE:
            return self._memoized(
                "infers", self._answer_key(db, formula),
                lambda: self._kernel_engine().infers(db, formula),
            )
        if plan.procedure == HCF_PROCEDURE:
            return self._memoized(
                "infers", self._answer_key(db, formula),
                lambda: self._hcf_entails(db, ground_query(db, formula)),
            )
        if plan.procedure == HCF_CLOSURE_PROCEDURE:
            return self._memoized(
                "infers", self._answer_key(db, formula),
                lambda: self._hcf_closure_infers(
                    db, ground_query(db, formula)
                ),
            )
        # static: fallback-edge -- planner's never-worse default
        return self.fallback.infers(db, formula)

    def infers_literal(
        self, db: DisjunctiveDatabase, literal: Union[Literal, str]
    ) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        plan = self._validated_plan(db, "infers_literal")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return True
            return (literal.atom in model) == literal.positive
        if plan.procedure == STRATIFIED_PROCEDURE:
            model, consistent = self._perfect(db)
            if not consistent:
                return True
            return (literal.atom in model) == literal.positive
        if plan.procedure == KERNEL_PROCEDURE:
            return self._memoized(
                "infers_literal", self._answer_key(db, literal),
                lambda: self._kernel_infers_literal(db, literal),
            )
        if plan.procedure == HCF_PROCEDURE:
            return self._memoized(
                "infers_literal", self._answer_key(db, literal),
                lambda: self._hcf_infers_literal(db, literal),
            )
        # static: fallback-edge -- planner's never-worse default
        return self.fallback.infers_literal(db, literal)

    def infers_brave(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        plan = self._validated_plan(db, "infers_brave")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return False  # no selected model can witness anything
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == STRATIFIED_PROCEDURE:
            model, consistent = self._perfect(db)
            if not consistent:
                return False
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == KERNEL_PROCEDURE:
            return self._memoized(
                "infers_brave", self._answer_key(db, formula),
                lambda: self._kernel_engine().infers_brave(db, formula),
            )
        if plan.procedure == HCF_PROCEDURE:
            grounded = ground_query(db, formula)
            return self._memoized(
                "infers_brave", self._answer_key(db, formula),
                lambda: self._hcf_witness(db, grounded),
            )
        # static: fallback-edge -- planner's never-worse default
        return self.fallback.infers_brave(db, formula)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        plan = self._validated_plan(db, "has_model")
        if plan.procedure == HORN_PROCEDURE:
            _, consistent = horn_least_model(db)
            return consistent
        if plan.procedure == STRATIFIED_PROCEDURE:
            _, consistent = self._perfect(db)
            return consistent
        if plan.procedure == KERNEL_PROCEDURE:
            return self._memoized(
                "has_model", self._answer_key(db),
                lambda: self._kernel_engine().has_model(db),
            )
        # static: fallback-edge -- planner's never-worse default
        return self.fallback.has_model(db)

    # ------------------------------------------------------------------
    # The head-cycle-free procedures
    # ------------------------------------------------------------------
    def _memoized(self, kind: str, key: Tuple, compute):
        from ..engine.cache import ENGINE_CACHE

        return ENGINE_CACHE.get_or_compute(kind, key, compute)

    # ------------------------------------------------------------------
    # The bitset-kernel procedure
    # ------------------------------------------------------------------
    def _kernel_engine(self) -> Semantics:
        """The brute instance behind the kernel-bitset procedure (lazy).

        The brute engine already runs mask-packed internals whenever the
        kernel is enabled (see :mod:`repro.models.enumeration`); the
        planner only ever routes here with the default parameterization,
        which is exactly what the registry instance carries.
        """
        if self._kernel_brute is None:
            from ..semantics.base import get_semantics

            self._kernel_brute = get_semantics(self.name, engine="brute")
        return self._kernel_brute

    def _kernel_infers_literal(
        self, db: DisjunctiveDatabase, literal: Literal
    ) -> bool:
        """Kernel-procedure literal inference.

        For the GCWA family (default partition, negation read
        classically) the answer comes straight off the memoized
        ``MM(DB)`` enumeration: a positive literal holds iff it holds
        in every minimal model (atoms persist upward from the minimal
        model each GCWA model contains), a negative one iff no minimal
        model contains the atom (the closure test) — so one shared
        ``minimal_models_for`` entry serves every literal of a
        closure-style sweep.  Everything else runs the semantics' own
        brute engine.
        """
        if self.name in FF_REDUCIBLE:
            from ..engine.cache import minimal_models_for

            models = minimal_models_for(db)
            if literal.positive:
                return all(literal.atom in m for m in models)
            return not any(literal.atom in m for m in models)
        return self._kernel_engine().infers_literal(db, literal)

    def _hcf_solver(self, db: DisjunctiveDatabase) -> HeadCycleFreeSolver:
        return HeadCycleFreeSolver(db, reuse=self.inner.sat_reuse)

    def _hcf_entails(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        """Cautious minimal-model entailment on the founded machine."""
        with self._hcf_solver(db) as solver:
            return solver.np_entails(formula)

    def _hcf_witness(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        """Brave inference: some minimal model satisfies ``formula``."""
        with self._hcf_solver(db) as solver:
            return solver.np_find_minimal_satisfying(formula) is not None

    def _hcf_infers_literal(
        self, db: DisjunctiveDatabase, literal: Literal
    ) -> bool:
        """The single-query literal reduction (GCWA family): a positive
        literal is minimal-model entailment, a negative one asks for a
        minimal witness of the atom — one founded search either way."""
        if self.name in FF_REDUCIBLE:
            with self._hcf_solver(db) as solver:
                if literal.positive:
                    return solver.np_entails(Var(literal.atom))
                return (
                    solver.np_find_minimal_satisfying(Var(literal.atom))
                    is None
                )
        return self._hcf_entails(
            db, ground_query(db, literal_formula(literal))
        )

    def _hcf_closure_infers(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        """GCWA-family formula inference: classical entailment from the
        memoized founded ``ff(DB)`` closure."""
        from ..semantics.gcwa import augmented_database

        free = hcf_free_atoms(db, reuse=self.inner.sat_reuse)
        augmented = augmented_database(db, free)
        with pooled_scope(
            augmented, context=("db",), reuse=self.inner.sat_reuse
        ) as sat:
            sat.add_formula(formula, positive=False)
            return not sat.solve()

    # ------------------------------------------------------------------
    def cache_params(self) -> tuple:
        return self.inner.cache_params()

    def __getattr__(self, attr: str):
        # Only reached for attributes not found normally; delegate to
        # the wrapped semantics (partition params, closure helpers, ...).
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return f"PlannedSemantics({self.inner!r})"
