"""The fragment planner and the ``"planned"`` engine.

:class:`FragmentPlanner` maps one ``(semantics, entry point)`` query
over a profiled database to the cheapest *sound* procedure:

* ``horn-least-model`` — on Horn databases every closed-world semantics
  in :data:`HORN_COLLAPSE` selects exactly the least model of the
  definite part (or nothing, when an integrity clause fails), so every
  entry point is answered from the unit-propagation fixpoint — class P,
  **zero SAT calls**;
* ``hcf-founded`` — on head-cycle-free deductive databases the Σ₂ᵖ
  minimality primitive is replaced by the polynomial foundedness check
  (:class:`~repro.analysis.procedures.HeadCycleFreeSolver`), dropping
  minimal-model entailment to an NP-level machine — plain SAT calls,
  **zero Σ₂ᵖ dispatches**;
* ``default`` — everything else delegates verbatim to the wrapped
  oracle-engine instance.

:class:`PlannedSemantics` is the engine façade behind
``get_semantics(name, engine="planned")``: it profiles the database
(memoized), records the chosen :class:`QueryPlan` on itself (the
session copies it onto the :class:`~repro.session.Answer` and hands it
to the certifier, which *tightens* the envelope to the fragment's
class), and executes the planned procedure.

Soundness notes (each backed by the 5-engine differential corpus):

* Horn collapse: on a consistent Horn database the least model ``M`` is
  the unique minimal model; GCWA/EGCWA/CCWA/ECWA/CIRC (default
  partition), DDR, PWS, ICWA (default partition — Horn databases are
  trivially stratified), PERF (Horn + no ICs), DSM and CWA all select
  exactly ``{M}``; on an inconsistent one all select ``∅``.  PDSM's
  three-valued states and the supported-model semantics (``a :- a.``
  has the non-minimal supported model ``{a}``) do *not* collapse and
  stay on ``default``.
* HCF reduction: with the default partition and no negation,
  EGCWA/ECWA/CIRC/DSM/PERF/ICWA inference is minimal-model entailment
  (``EGCWA(DB) = MM(DB)``; stable = minimal on negation-free programs;
  a negation-free database has a single stratum), and GCWA/CCWA
  inference is classical entailment from ``DB ∪ {¬x : x ∈ ff(DB)}``
  where ``ff`` needs only minimal-model witness queries — all served by
  the foundedness machine, which is complete exactly on the
  head-cycle-free fragment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Union

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..sat.incremental import pooled_scope
from ..semantics.base import Semantics, ground_query, literal_formula
from .fragment import FragmentProfile, fragment_profile
from .procedures import HeadCycleFreeSolver, horn_least_model

#: Semantics whose selected-model set collapses to {least model} on
#: consistent Horn databases (and to ∅ on inconsistent ones), under the
#: default partition.  See the module docstring for the exclusions.
HORN_COLLAPSE: FrozenSet[str] = frozenset(
    {
        "cwa", "gcwa", "ddr", "pws", "egcwa", "ccwa", "ecwa", "circ",
        "icwa", "perf", "dsm",
    }
)

#: Semantics whose cautious/brave inference is plain minimal-model
#: entailment on head-cycle-free deductive databases (default partition).
MM_REDUCIBLE: FrozenSet[str] = frozenset(
    {"egcwa", "ecwa", "circ", "icwa", "dsm", "perf"}
)

#: Semantics whose inference is classical entailment from the
#: free-for-negation closure (GCWA-style) — ``ff`` itself reduces to
#: minimal-model witness queries.
FF_REDUCIBLE: FrozenSet[str] = frozenset({"gcwa", "ccwa"})

#: Procedure names recorded on plans.
HORN_PROCEDURE = "horn-least-model"
HCF_PROCEDURE = "hcf-founded"
DEFAULT_PROCEDURE = "default"


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict for one query.

    Attributes:
        semantics: canonical semantics name.
        method: the entry point planned for.
        fragment: the database's fragment label.
        procedure: one of ``horn-least-model`` / ``hcf-founded`` /
            ``default``.
        claim: the complexity class the chosen procedure runs in (what
            the certifier tightens the envelope to).
        reason: one line of planner rationale.
    """

    semantics: str
    method: str
    fragment: str
    procedure: str
    claim: str
    reason: str

    @property
    def envelope_key(self) -> Optional[str]:
        """The certifier's tightened-envelope key (``None`` = the
        regular table-cell envelope applies)."""
        if self.procedure == HORN_PROCEDURE:
            return "horn"
        if self.procedure == HCF_PROCEDURE:
            return "hcf"
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "semantics": self.semantics,
            "method": self.method,
            "fragment": self.fragment,
            "procedure": self.procedure,
            "claim": self.claim,
            "reason": self.reason,
        }

    def render(self) -> str:
        return (
            f"{self.semantics}/{self.method} on {self.fragment}: "
            f"{self.procedure} [{self.claim}] — {self.reason}"
        )


class FragmentPlanner:
    """Maps (profile, semantics, entry point) to a :class:`QueryPlan`."""

    @staticmethod
    def _default_parameterization(inner: Semantics) -> bool:
        """The fast paths are proved only for the default partition
        (minimize the whole vocabulary, nothing floats, canonical
        stratification)."""
        return (
            getattr(inner, "p", None) is None
            and not getattr(inner, "z", frozenset())
            and getattr(inner, "stratification", None) is None
        )

    def plan(
        self,
        profile: FragmentProfile,
        inner: Semantics,
        method: str,
    ) -> QueryPlan:
        name = inner.name
        fragment = profile.fragment

        def fallback(reason: str) -> QueryPlan:
            return QueryPlan(
                semantics=name,
                method=method,
                fragment=fragment,
                procedure=DEFAULT_PROCEDURE,
                claim="table default",
                reason=reason,
            )

        if not self._default_parameterization(inner):
            return fallback("non-default partition parameters")
        if profile.is_horn and name in HORN_COLLAPSE:
            return QueryPlan(
                semantics=name,
                method=method,
                fragment=fragment,
                procedure=HORN_PROCEDURE,
                claim="P",
                reason=(
                    "Horn database: the unit-propagation least model is "
                    "the unique selected model (zero SAT calls)"
                ),
            )
        if profile.negation_free and profile.head_cycle_free:
            if name in MM_REDUCIBLE and method in (
                "infers", "infers_literal", "infers_brave",
            ):
                return QueryPlan(
                    semantics=name,
                    method=method,
                    fragment=fragment,
                    procedure=HCF_PROCEDURE,
                    claim="coNP" if method != "infers_brave" else "NP",
                    reason=(
                        "head-cycle-free: minimal-model entailment with "
                        "the polynomial foundedness check (no Σ₂ᵖ "
                        "dispatch)"
                    ),
                )
            if name in FF_REDUCIBLE and method in (
                "infers", "infers_literal",
            ):
                return QueryPlan(
                    semantics=name,
                    method=method,
                    fragment=fragment,
                    procedure=HCF_PROCEDURE,
                    claim="coNP",
                    reason=(
                        "head-cycle-free: ff(DB) by founded witness "
                        "queries, then one classical entailment call"
                    ),
                )
            return fallback(
                "no NP-level reduction for this semantics/task on the "
                "head-cycle-free fragment"
            )
        return fallback(f"no fast path for the {fragment} fragment")


class PlannedSemantics(Semantics):
    """The ``"planned"`` engine: fragment-dispatched façade over an
    oracle-engine instance.

    Obtain through ``get_semantics(name, engine="planned")`` or
    ``DatabaseSession(db, engine="planned")``.  The last chosen plan is
    kept on :attr:`last_plan` for the session/certifier; unknown
    attributes delegate to the wrapped instance.
    """

    def __init__(
        self,
        inner: Semantics,
        planner: Optional[FragmentPlanner] = None,
    ):
        if isinstance(inner, PlannedSemantics):
            inner = inner.inner
        # Deliberately skip Semantics.__init__: "planned" is a wrapper
        # engine, same pattern as CachedSemantics.
        self.inner = inner
        self.engine = "planned"
        self.name = inner.name
        self.aliases = inner.aliases
        self.description = inner.description
        self.planner = planner if planner is not None else FragmentPlanner()
        self.last_plan: Optional[QueryPlan] = None

    # ------------------------------------------------------------------
    def validate(self, db: DisjunctiveDatabase) -> None:
        # Runs before planning so inapplicable databases raise exactly
        # as they would on any other engine.
        self.inner.validate(db)

    def plan_for(self, db: DisjunctiveDatabase, method: str) -> QueryPlan:
        """The plan this engine would (and does) use for ``method``."""
        plan = self.planner.plan(fragment_profile(db), self.inner, method)
        self.last_plan = plan
        return plan

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        plan = self.plan_for(db, "model_set")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            return frozenset({model}) if consistent else frozenset()
        return self.inner.model_set(db)

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        plan = self.plan_for(db, "infers")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return True  # vacuous: no selected models
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == HCF_PROCEDURE:
            return self._hcf_infers(db, ground_query(db, formula))
        return self.inner.infers(db, formula)

    def infers_literal(
        self, db: DisjunctiveDatabase, literal: Union[Literal, str]
    ) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        plan = self.plan_for(db, "infers_literal")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return True
            return (literal.atom in model) == literal.positive
        if plan.procedure == HCF_PROCEDURE:
            formula = ground_query(db, literal_formula(literal))
            return self._hcf_infers(db, formula)
        return self.inner.infers_literal(db, literal)

    def infers_brave(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        self.validate(db)
        plan = self.plan_for(db, "infers_brave")
        if plan.procedure == HORN_PROCEDURE:
            model, consistent = horn_least_model(db)
            if not consistent:
                return False  # no selected model can witness anything
            return model.satisfies(ground_query(db, formula))
        if plan.procedure == HCF_PROCEDURE:
            formula = ground_query(db, formula)
            with self._hcf_solver(db) as solver:
                return (
                    solver.np_find_minimal_satisfying(formula) is not None
                )
        return self.inner.infers_brave(db, formula)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        plan = self.plan_for(db, "has_model")
        if plan.procedure == HORN_PROCEDURE:
            _, consistent = horn_least_model(db)
            return consistent
        return self.inner.has_model(db)

    # ------------------------------------------------------------------
    # The head-cycle-free procedures
    # ------------------------------------------------------------------
    def _hcf_solver(self, db: DisjunctiveDatabase) -> HeadCycleFreeSolver:
        return HeadCycleFreeSolver(db, reuse=self.inner.sat_reuse)

    def _hcf_infers(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        """Cautious inference on the hcf-deductive fragment: direct
        minimal-model entailment for the MM-reducible semantics, the
        ``ff``-closure + one classical call for the GCWA family."""
        if self.name in FF_REDUCIBLE:
            from ..semantics.gcwa import augmented_database

            with self._hcf_solver(db) as solver:
                free = solver.np_free_for_negation()
            augmented = augmented_database(db, free)
            with pooled_scope(
                augmented, context=("db",), reuse=self.inner.sat_reuse
            ) as sat:
                sat.add_formula(formula, positive=False)
                return not sat.solve()
        with self._hcf_solver(db) as solver:
            return solver.np_entails(formula)

    # ------------------------------------------------------------------
    def cache_params(self) -> tuple:
        return self.inner.cache_params()

    def __getattr__(self, attr: str):
        # Only reached for attributes not found normally; delegate to
        # the wrapped semantics (partition params, closure helpers, ...).
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return f"PlannedSemantics({self.inner!r})"
