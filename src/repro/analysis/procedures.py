"""Fragment-specialized decision procedures.

Three machines back the planner's fast paths:

* :func:`horn_least_model` — the unit-propagation fixpoint of a Horn
  database.  A consistent Horn database has a unique minimal model (its
  least model), every closed-world semantics the planner routes here
  selects exactly that model, and the fixpoint uses **zero** SAT calls —
  the Horn cell of the fragment lattice is genuinely in P, and the
  certifier holds the planner to it.

* :class:`HeadCycleFreeSolver` — minimal-model queries where the Σ₂ᵖ
  primitive (:meth:`~repro.sat.minimal.MinimalModelSolver.
  find_minimal_satisfying`) is replaced by candidate generation plus the
  Ben-Eliyahu–Dechter *foundedness* check.  The foundedness check is a
  polynomial fixpoint, sound for every negation-free database and
  complete for head-cycle-free ones, so on the ``hcf-deductive``
  fragment minimal-model entailment runs as an NP-level machine: plain
  SAT calls only, no Σ₂ᵖ dispatch is ever counted.

* :func:`stratified_perfect_model` — the iterated per-stratum least
  model of a stratified *normal* (head width ≤ 1) database.  On that
  fragment the unique perfect model is the unique stable model
  (Apt–Blair–Walker), so PERF/ICWA/DSM all select exactly it — another
  pure-P cell, zero SAT calls, memoized like the Horn least model.

The free-for-negation closure of the foundedness machine is memoized
per database (:func:`hcf_free_atoms`), so a GCWA-style literal-closure
workload pays the |V| founded searches once, not once per query.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from ..errors import SolverError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation
from ..runtime.budget import check_deadline
from ..sat.incremental import Scope, scoped_sweep
from ..sat.minimal import MinimalModelSolver

#: Engine-cache kind for memoized least models.
_LEAST_MODEL_KIND = "horn_least_model"


def _compute_least_model(
    db: DisjunctiveDatabase,
) -> Tuple[FrozenSet[str], bool]:
    """``(least model of the definite part, consistency)`` of a Horn
    database, by queue-based unit propagation (linear in clause size).

    Consistency: the least model of the definite clauses satisfies every
    definite clause by construction, so the database is consistent iff
    no integrity clause has its whole body in the least model.
    """
    waiting: dict = {}  # atom -> clauses whose body still needs it
    missing: dict = {}  # clause -> count of unsatisfied body atoms
    queue = []
    derived: set = set()
    for clause in db.clauses:
        if not clause.head:
            continue
        (head_atom,) = tuple(clause.head)
        missing[clause] = len(clause.body_pos)
        if not clause.body_pos:
            queue.append(head_atom)
            continue
        for atom in clause.body_pos:
            waiting.setdefault(atom, []).append((clause, head_atom))
    while queue:
        atom = queue.pop()
        if atom in derived:
            continue
        derived.add(atom)
        for clause, head_atom in waiting.get(atom, ()):
            missing[clause] -= 1
            if missing[clause] == 0 and head_atom not in derived:
                queue.append(head_atom)
    least = frozenset(derived)
    consistent = all(
        not clause.body_pos <= least
        for clause in db.clauses
        if clause.is_integrity
    )
    return least, consistent


def horn_least_model(
    db: DisjunctiveDatabase,
) -> Tuple[Interpretation, bool]:
    """``(least model, consistent)`` of a Horn database, memoized.

    Callers must have established ``db`` is Horn (the planner gates on
    the fragment profile); on non-Horn input the result is meaningless.
    """
    from ..engine.cache import ENGINE_CACHE

    least, consistent = ENGINE_CACHE.get_or_compute(
        _LEAST_MODEL_KIND, db, lambda: _compute_least_model(db)
    )
    return Interpretation(least), consistent


#: Engine-cache kind for memoized perfect models.
_PERFECT_MODEL_KIND = "stratified_perfect"

#: Engine-cache kind for the memoized founded free-for-negation closure.
_HCF_FF_KIND = "hcf_free_atoms"


def _compute_perfect_model(
    db: DisjunctiveDatabase,
) -> Tuple[FrozenSet[str], bool]:
    """``(iterated least model, consistency)`` of a stratified normal
    database.

    Strata are processed lowest first; within a stratum the definite
    part is closed under a fixpoint with negative bodies evaluated
    against the (settled) lower strata.  The database is consistent iff
    no integrity clause has its positive body inside and its negative
    body outside the resulting model.
    """
    from ..engine.cache import stratification_for

    stratification = stratification_for(db)
    if stratification is None:  # pragma: no cover - planner gates on it
        raise SolverError("stratified_perfect_model on unstratifiable db")
    derived: set = set()
    for stratum in stratification.strata:
        rules = [
            (clause, tuple(clause.head)[0])
            for clause in db.clauses
            if clause.head and tuple(clause.head)[0] in stratum
        ]
        changed = True
        while changed:
            changed = False
            for clause, head_atom in rules:
                if head_atom in derived:
                    continue
                if clause.body_pos <= derived and not (
                    clause.body_neg & derived
                ):
                    derived.add(head_atom)
                    changed = True
    model = frozenset(derived)
    consistent = all(
        not (
            clause.body_pos <= model
            and not (clause.body_neg & model)
        )
        for clause in db.clauses
        if clause.is_integrity
    )
    return model, consistent


def stratified_perfect_model(
    db: DisjunctiveDatabase,
) -> Tuple[Interpretation, bool]:
    """``(perfect model, consistent)`` of a stratified normal database,
    memoized.

    Callers must have established the gate (stratified, every head ≤ 1
    atom — the planner checks the fragment profile); elsewhere the
    result is meaningless.
    """
    from ..engine.cache import ENGINE_CACHE

    model, consistent = ENGINE_CACHE.get_or_compute(
        _PERFECT_MODEL_KIND, db, lambda: _compute_perfect_model(db)
    )
    return Interpretation(model), consistent


def supported_model_tight(
    db: DisjunctiveDatabase,
) -> Tuple[Interpretation, bool]:
    """``(the unique supported model, consistency)`` of a stratified,
    positive-acyclic normal database.

    On that fragment the Clark completion has exactly one model and it
    is the perfect model: positive acyclicity makes the database *tight*,
    so supported models coincide with stable models (Fages), and a
    stratified normal database has the perfect model as its unique
    stable model (Apt–Blair–Walker).  The computation is therefore the
    memoized :func:`stratified_perfect_model` fixpoint — zero SAT calls.
    Callers must have established the gate (the planner checks
    ``is_stratified``, head width ≤ 1 and positive acyclicity on the
    fragment profile); elsewhere the result is meaningless.
    """
    return stratified_perfect_model(db)


def hcf_free_atoms(
    db: DisjunctiveDatabase, reuse: bool = True
) -> FrozenSet[str]:
    """``ff(DB)`` by founded witness queries, memoized per database.

    The closure is a property of the database alone, so one computation
    serves every subsequent GCWA/CCWA-style query — the planner's
    closure path amortizes to one classical SAT call per query.
    """
    from ..engine.cache import ENGINE_CACHE

    def compute() -> FrozenSet[str]:
        with HeadCycleFreeSolver(db, reuse=reuse) as solver:
            return solver.np_free_for_negation()

    return ENGINE_CACHE.get_or_compute(_HCF_FF_KIND, db, compute)


def is_founded_minimal(
    db: DisjunctiveDatabase, model: Iterable[str]
) -> bool:
    """The Ben-Eliyahu–Dechter foundedness check: is ``model`` a
    *founded* model of the negation-free database ``db``?

    An atom ``a`` of ``M`` is foundable once some clause has ``a`` in its
    head, its positive body inside the already-founded set, and no
    *other* head atom true in ``M``.  If every atom of ``M`` is founded
    (and ``M`` is a model), no proper submodel exists — the check is a
    **sound** minimality test for any negation-free database, and
    complete exactly on the head-cycle-free fragment.  Polynomial, zero
    SAT calls.
    """
    true_atoms = frozenset(model)
    relevant = [
        (clause, tuple(clause.head & true_atoms))
        for clause in db.clauses
        if clause.head
        and clause.body_pos <= true_atoms
        and not (clause.body_neg & true_atoms)
        and len(clause.head & true_atoms) == 1
    ]
    founded: set = set()
    changed = True
    while changed:
        changed = False
        for clause, head_true in relevant:
            (atom,) = head_true
            if atom in founded:
                continue
            if clause.body_pos <= founded:
                founded.add(atom)
                changed = True
    return founded == set(true_atoms)


class HeadCycleFreeSolver(MinimalModelSolver):
    """NP-level minimal-model queries for head-cycle-free deductive
    databases.

    Inherits the pooled-solver plumbing and candidate search of
    :class:`~repro.sat.minimal.MinimalModelSolver`, but exposes
    ``np_``-prefixed variants of the Σ₂ᵖ primitive in which the
    minimality oracle is the polynomial foundedness check — the methods
    are deliberately *not* named ``find_minimal_satisfying`` and *not*
    decorated with ``counts_as_sigma2_dispatch``, because on this
    fragment they realize an NP machine (plain SAT calls only).  Using
    this class on a database with head cycles is unsound (the planner
    gates on the fragment profile).
    """

    def np_is_minimal(self, model: Iterable[str]) -> bool:
        """Polynomial minimality check (complete on HCF input)."""
        return is_founded_minimal(self.db, model)

    def np_find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A minimal model of the theory satisfying ``condition``, or
        ``None`` — candidate generation (SAT) plus foundedness checks
        (polynomial); never dispatches the Σ₂ᵖ primitive."""
        with self._inc.scope() as searcher:
            searcher.add_formula(condition)
            tried = 0
            while max_candidates is None or tried < max_candidates:
                check_deadline()
                self.sat_calls += 1
                if not searcher.solve():
                    return None
                candidate = searcher.model(restrict_to=self.universe)
                candidate = self._shrink_within(searcher, candidate)
                tried += 1
                if self.np_is_minimal(candidate):
                    return candidate
                block = [Literal.neg(a) for a in sorted(candidate)]
                block += [
                    Literal.pos(a)
                    for a in self.universe
                    if a not in candidate
                ]
                searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "np_find_minimal_satisfying"
        )

    def np_entails(self, formula: Formula) -> bool:
        """Minimal-model entailment via the NP-level machine: true iff
        no minimal model satisfies ``¬formula``."""
        return self.np_find_minimal_satisfying(Not(formula)) is None

    def _np_sweep_witness(
        self, searcher: Scope, assumption: Literal
    ) -> Optional[Interpretation]:
        """One candidate atom of a batched founded sweep (undecorated —
        this is the NP machine): the candidate travels as a solver
        assumption so every atom shares one scope, and failed candidates
        leave condition-independent full-assignment blocks behind."""
        while True:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve([assumption]):
                return None
            candidate = searcher.model(restrict_to=self.universe)
            candidate = self._shrink_within(
                searcher, candidate, extra_assumptions=(assumption,)
            )
            if self.np_is_minimal(candidate):
                return candidate
            block = [Literal.neg(a) for a in sorted(candidate)]
            block += [
                Literal.pos(a)
                for a in self.universe
                if a not in candidate
            ]
            searcher.add_clause(block)

    def np_free_for_negation(self) -> FrozenSet[str]:
        """``ff(DB)`` — atoms false in every minimal model — as one
        batched NP-level sweep over the vocabulary (the GCWA/CCWA
        closure input); same SAT-call sites as the per-atom loop, one
        shared scope instead of |V|."""
        results = scoped_sweep(
            self._inc,
            sorted(self.db.vocabulary),
            lambda searcher, atom: self._np_sweep_witness(
                searcher, Literal.pos(atom)
            ),
        )
        return frozenset(
            atom for atom, witness in results.items() if witness is None
        )
