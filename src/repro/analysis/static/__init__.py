"""Whole-program static certification for the ``repro`` package.

Two cooperating passes over one import-aware call graph
(:mod:`.callgraph`):

* :mod:`.complexity` — **Pass 1**: proves every semantics entry point
  can only reach primitive realizations (NP ``solve()``, Σ₂ᵖ
  ``find_minimal_satisfying``, EXP brute enumerators) consistent with
  its Table 1/2 class as claimed in :mod:`repro.obs.certify`.  Rules
  RPR101–RPR103; dynamic-dispatch conservatism surfaces as RPR100
  warnings.
* :mod:`.races` — **Pass 2**: lock-discipline race detection over the
  shared singletons (engine cache, solver pool, metrics registry,
  runtime counters, tracer, query service).  Rules RPR201–RPR204.

:mod:`.checker` drives both (``repro-ddb check`` /
``python -m repro.analysis.static.checker``) and shares the
Finding/waiver/baseline machinery of :mod:`repro.analysis.lint`.
"""

from .callgraph import FALLBACK_MARK, CallGraph, CallSite, FunctionNode
from .checker import RULES, Report, STATIC_WAIVER_MARK, build_graph, check
from .complexity import check_complexity, sigma2_allowed
from .races import check_races

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "FALLBACK_MARK",
    "RULES",
    "Report",
    "STATIC_WAIVER_MARK",
    "build_graph",
    "check",
    "check_complexity",
    "check_races",
    "sigma2_allowed",
]
