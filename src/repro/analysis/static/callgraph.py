"""Import-aware call graph over the ``repro`` package AST.

The whole-program checker (:mod:`repro.analysis.static.checker`) needs
one structure both passes can share: *who can call whom*, resolved as
precisely as plain-AST analysis allows and **conservative everywhere
else**.  The builder parses every module under a package root (plus any
extra files, e.g. the seeded injection fixtures), records

* module import tables (``import a.b as c`` / ``from ..x import y``,
  with relative imports resolved against the importing package),
* every function and method definition (qualified
  ``pkg.mod.Class.meth``), decorator names, and class bases,
* every call site inside each definition, classified by how much the
  AST tells us about the target:

  ========== ========================================================
  kind       resolution
  ========== ========================================================
  direct     ``f(...)`` where ``f`` is a local def, a module-level
             def, or an import — resolved to a qualified name
  self       ``self.m(...)`` — resolved against the MRO of the class
             the traversal entered with (late binding preserved)
  super      ``super().m(...)`` — resolved against the declared bases
  class      ``Cls(...)`` / ``Cls.m(...)`` — constructor or method
  attr       ``obj.m(...)`` with an unresolvable receiver — matched
             *by method name* against every in-graph definition
             (deliberate over-approximation; soundness over precision)
  dynamic    ``getattr(x, n)`` / ``f()()`` — no edge; recorded as an
             RPR100 *warning* so conservatism is documented, never a
             silent miss
  ========== ========================================================

Two edge attributes matter to the complexity pass:

* ``brute_guarded`` — the call site sits inside an
  ``if <...>.engine == "brute":`` branch.  Brute execution is certified
  against the exponential *node* envelope, not the oracle envelopes
  (see :mod:`repro.obs.certify`), so pass 1 prunes these edges.
* ``fallback`` — the source line (or the line above) carries a
  ``# static: fallback-edge`` annotation: an explicitly declared
  degraded-mode edge (the resilient engine's brute fallback, the
  planner's never-worse default) that reachability must not follow.

Module-level singleton instances (``NAME = ClassName(...)``) are
indexed for the race pass (:mod:`repro.analysis.static.races`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..lint import Finding

#: Annotation marking an explicitly declared degraded-mode call edge.
FALLBACK_MARK = "# static: fallback-edge"

#: Call-target kinds that resolve to a *specific* definition (used by
#: rules that must avoid the ``attr`` name-matching over-approximation).
RESOLVED_KINDS = frozenset({"direct", "self", "super", "class"})


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    kind: str  #: direct | self | super | class | attr | dynamic
    target: str  #: qualified name (direct/class) or bare attr name
    lineno: int
    col: int
    brute_guarded: bool = False
    fallback: bool = False


@dataclass
class FunctionNode:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    lineno: int
    name: str
    cls: Optional[str] = None  #: owning class qualname, if a method
    decorators: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)
    node: Optional[ast.AST] = field(default=None, repr=False)


@dataclass
class ClassInfo:
    """One class definition: declared bases and direct methods."""

    qualname: str
    module: str
    path: str
    lineno: int
    name: str
    bases: List[str] = field(default_factory=list)  #: qualified or bare
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> fn qualname
    node: Optional[ast.ClassDef] = field(default=None, repr=False)


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    lines: List[str]
    imports: Dict[str, str] = field(default_factory=dict)


def _decorator_name(dec: ast.AST) -> str:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Attribute):
        return dec.attr
    if isinstance(dec, ast.Name):
        return dec.id
    return ""


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_brute_test(test: ast.AST) -> bool:
    """Does a branch condition compare ``<...>.engine`` (or ``engine``)
    against the constant ``"brute"`` with ``==``?"""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare):
            continue
        if len(node.ops) != 1 or not isinstance(node.ops[0], ast.Eq):
            continue
        sides = [node.left] + list(node.comparators)
        mentions_engine = any(
            (isinstance(s, ast.Attribute) and s.attr == "engine")
            or (isinstance(s, ast.Name) and s.id == "engine")
            for s in sides
        )
        mentions_brute = any(
            isinstance(s, ast.Constant) and s.value == "brute"
            for s in sides
        )
        if mentions_engine and mentions_brute:
            return True
    return False


class CallGraph:
    """The whole-program structure both checker passes query."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method/function name -> every qualname defining it.
        self.by_name: Dict[str, List[str]] = {}
        #: module-level singleton instances: qualname -> class qualname.
        self.singletons: Dict[str, str] = {}
        #: dynamic-dispatch conservatism warnings (rule RPR100).
        self.warnings: List[Finding] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        package_root: Optional[Path] = None,
        package_name: str = "repro",
        extra_paths: Sequence[Path] = (),
    ) -> "CallGraph":
        """Parse a package tree (plus extra files) into a graph."""
        graph = cls()
        files: List[Tuple[str, Path]] = []
        if package_root is not None:
            root = Path(package_root).resolve()
            for path in sorted(root.rglob("*.py")):
                rel = path.relative_to(root).with_suffix("")
                parts = [package_name] + list(rel.parts)
                if parts[-1] == "__init__":
                    parts.pop()
                files.append((".".join(parts), path))
        for path in extra_paths:
            path = Path(path).resolve()
            if path.is_dir():
                for sub in sorted(path.rglob("*.py")):
                    files.append((sub.stem, sub))
            else:
                files.append((path.stem, path))
        for name, path in files:
            graph._add_module(name, path)
        for module in graph.modules.values():
            graph._collect_defs(module)
        for module in graph.modules.values():
            graph._collect_calls(module)
        return graph

    def _add_module(self, name: str, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return  # the linter reports RPR000 for these
        info = ModuleInfo(
            name=name, path=str(path), tree=tree,
            lines=source.splitlines(),
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    info.imports[local] = (
                        alias.name if alias.asname else
                        alias.name.split(".", 1)[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(info.name, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}"
        self.modules[name] = info

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # ``from . import x`` in pkg.mod: level 1 strips the module
        # name; each further level strips one package.
        if len(parts) < node.level:
            return node.module
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else node.module

    def _register_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        qualname: str,
        cls: Optional[str],
    ) -> None:
        fn = FunctionNode(
            qualname=qualname,
            module=module.name,
            path=module.path,
            lineno=node.lineno,
            name=node.name,
            cls=cls,
            decorators={
                _decorator_name(d) for d in node.decorator_list
            } - {""},
            node=node,
        )
        self.functions[qualname] = fn
        self.by_name.setdefault(node.name, []).append(qualname)

    def _collect_defs(self, module: ModuleInfo) -> None:
        def visit(body, prefix: str, cls: Optional[str]) -> None:
            for node in body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = f"{prefix}.{node.name}"
                    self._register_function(module, node, qualname, cls)
                    visit(node.body, qualname, None)
                elif isinstance(node, ast.ClassDef):
                    qualname = f"{prefix}.{node.name}"
                    info = ClassInfo(
                        qualname=qualname,
                        module=module.name,
                        path=module.path,
                        lineno=node.lineno,
                        name=node.name,
                        node=node,
                    )
                    for base in node.bases:
                        text = _dotted(base)
                        if text is None:
                            continue
                        info.bases.append(
                            self._qualify(module, text) or text
                        )
                    self.classes[qualname] = info
                    visit(node.body, qualname, qualname)
                    for child in node.body:
                        if isinstance(
                            child,
                            (ast.FunctionDef, ast.AsyncFunctionDef),
                        ):
                            info.methods[child.name] = (
                                f"{qualname}.{child.name}"
                            )

        visit(module.tree.body, module.name, None)
        # Module-level singleton instances: NAME = ClassName(...).
        for node in module.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            text = _dotted(node.value.func)
            if text is None:
                continue
            target_cls = self._qualify(module, text)
            if target_cls in self.classes:
                self.singletons[
                    f"{module.name}.{node.targets[0].id}"
                ] = target_cls

    def _qualify(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a dotted reference through the import table and the
        module's own top-level definitions."""
        head, _, tail = dotted.partition(".")
        local = f"{module.name}.{head}"
        if local in self.classes or local in self.functions:
            return f"{local}.{tail}" if tail else local
        if head in module.imports:
            base = module.imports[head]
            return f"{base}.{tail}" if tail else base
        return None

    # -- call collection -------------------------------------------------

    def _collect_calls(self, module: ModuleInfo) -> None:
        for fn in self.functions.values():
            if fn.module != module.name or fn.node is None:
                continue
            local_defs = {
                child.name: f"{fn.qualname}.{child.name}"
                for child in ast.walk(fn.node)
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and child is not fn.node
            }
            self._walk_body(module, fn, fn.node, local_defs, brute=False)

    def _walk_body(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        root: ast.AST,
        local_defs: Dict[str, str],
        brute: bool,
    ) -> None:
        for node in ast.iter_child_nodes(root):
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue  # nested defs are their own nodes
            if isinstance(node, ast.If) and _is_brute_test(node.test):
                for child in node.body:
                    self._walk_body(
                        module, fn, child, local_defs, brute=True
                    )
                    self._visit_call(module, fn, child, local_defs, True)
                for child in node.orelse:
                    self._walk_body(
                        module, fn, child, local_defs, brute=brute
                    )
                    self._visit_call(module, fn, child, local_defs, brute)
                continue
            self._visit_call(module, fn, node, local_defs, brute)
            self._walk_body(module, fn, node, local_defs, brute)

    def _visit_call(
        self,
        module: ModuleInfo,
        fn: FunctionNode,
        node: ast.AST,
        local_defs: Dict[str, str],
        brute: bool,
    ) -> None:
        if not isinstance(node, ast.Call):
            return
        fallback = self._has_fallback_mark(module, node.lineno)
        func = node.func
        site = None
        if isinstance(func, ast.Name):
            name = func.id
            if name == "getattr":
                if not fallback:  # a declared edge needs no warning
                    self._warn_dynamic(fn, node, "getattr(...) dispatch")
                return
            target = local_defs.get(name) or self._qualify(module, name)
            if target is None:
                return  # builtin / external — no edge
            kind = "class" if target in self.classes else "direct"
            site = CallSite(
                kind, target, node.lineno, node.col_offset, brute,
                fallback,
            )
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self":
                site = CallSite(
                    "self", func.attr, node.lineno, node.col_offset,
                    brute, fallback,
                )
            elif (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id == "super"
            ):
                site = CallSite(
                    "super", func.attr, node.lineno, node.col_offset,
                    brute, fallback,
                )
            else:
                dotted = _dotted(func)
                target = (
                    self._qualify(module, dotted) if dotted else None
                )
                if target is not None and (
                    target in self.functions or target in self.classes
                ):
                    kind = "class" if target in self.classes else "direct"
                    site = CallSite(
                        kind, target, node.lineno, node.col_offset,
                        brute, fallback,
                    )
                elif target is not None and (
                    target.rsplit(".", 1)[0] in self.classes
                ):
                    # Cls.method(...) on an in-graph class.
                    site = CallSite(
                        "direct", target, node.lineno, node.col_offset,
                        brute, fallback,
                    )
                elif func.attr in self.by_name:
                    site = CallSite(
                        "attr", func.attr, node.lineno,
                        node.col_offset, brute, fallback,
                    )
                else:
                    return  # external method — no edge
        else:
            if not fallback:
                self._warn_dynamic(fn, node, "computed call target")
            return
        fn.calls.append(site)

    def _has_fallback_mark(self, module: ModuleInfo, lineno: int) -> bool:
        for candidate in (lineno, lineno - 1):
            if 1 <= candidate <= len(module.lines):
                if FALLBACK_MARK in module.lines[candidate - 1]:
                    return True
        return False

    def _warn_dynamic(
        self, fn: FunctionNode, node: ast.Call, what: str
    ) -> None:
        self.warnings.append(
            Finding(
                "RPR100", fn.path, node.lineno, node.col_offset,
                f"dynamic call in {fn.qualname} ({what}): target not "
                "statically resolvable; reachability is conservative "
                "here (documented, not silently missed)",
            )
        )

    # -- resolution ------------------------------------------------------

    def mro(self, cls_qualname: str) -> List[str]:
        """The in-graph linearization of a class (C3 not needed — the
        tree uses single inheritance plus mixin-free bases)."""
        order: List[str] = []
        stack = [cls_qualname]
        seen: Set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            order.append(current)
            stack.extend(self.classes[current].bases)
        return order

    def resolve_method(
        self, cls_qualname: str, name: str
    ) -> Optional[str]:
        for cls in self.mro(cls_qualname):
            method = self.classes[cls].methods.get(name)
            if method is not None:
                return method
        return None

    def callees(
        self,
        fn: FunctionNode,
        self_class: Optional[str],
        site: CallSite,
        include_attr_matches: bool = True,
    ) -> Iterator[Tuple[str, Optional[str]]]:
        """Yield ``(callee_qualname, callee_self_class)`` for one site.

        ``self_class`` is the dynamic receiver class of the traversal
        (so inherited methods resolve ``self.x`` against the *concrete*
        class, not the defining one).
        """
        if site.kind == "direct":
            target = site.target
            if target in self.functions:
                yield target, self.functions[target].cls
            return
        if site.kind == "class":
            init = self.resolve_method(site.target, "__init__")
            if init is not None:
                yield init, site.target
            return
        if site.kind == "self":
            cls = self_class or fn.cls
            if cls is None:
                return
            method = self.resolve_method(cls, site.target)
            if method is not None:
                yield method, cls
            return
        if site.kind == "super":
            cls = fn.cls  # super() binds to the *defining* class
            if cls is None:
                return
            for base in self.classes.get(cls, ClassInfo(
                "", "", "", 0, ""
            )).bases:
                method = self.resolve_method(base, site.target)
                if method is not None:
                    yield method, self_class or cls
                    return
            return
        if site.kind == "attr" and include_attr_matches:
            for qualname in self.by_name.get(site.target, ()):
                callee = self.functions[qualname]
                yield qualname, callee.cls

    def reachable(
        self,
        start: str,
        self_class: Optional[str] = None,
        skip_brute: bool = False,
        skip_fallback: bool = False,
        include_attr_matches: bool = True,
    ) -> Dict[str, Tuple[Optional[str], Optional[CallSite]]]:
        """BFS from one definition.

        Returns ``{qualname: (caller_qualname, via_site)}`` for every
        reached definition (the start maps to ``(None, None)``), so
        callers can rebuild witness paths.
        """
        if start not in self.functions:
            return {}
        parents: Dict[str, Tuple[Optional[str], Optional[CallSite]]] = {
            start: (None, None)
        }
        contexts: Dict[str, Optional[str]] = {
            start: self_class or self.functions[start].cls
        }
        queue = [start]
        while queue:
            current = queue.pop(0)
            fn = self.functions[current]
            ctx = contexts[current]
            for site in fn.calls:
                if skip_brute and site.brute_guarded:
                    continue
                if skip_fallback and site.fallback:
                    continue
                for callee, callee_ctx in self.callees(
                    fn, ctx, site,
                    include_attr_matches=include_attr_matches,
                ):
                    if callee in parents:
                        continue
                    parents[callee] = (current, site)
                    contexts[callee] = callee_ctx
                    queue.append(callee)
        return parents

    def witness_path(
        self,
        parents: Dict[str, Tuple[Optional[str], Optional[CallSite]]],
        target: str,
    ) -> List[str]:
        """``start -> ... -> target`` as rendered hops."""
        hops: List[str] = []
        current: Optional[str] = target
        while current is not None:
            caller, site = parents[current]
            fn = self.functions[current]
            hops.append(f"{current} ({Path(fn.path).name}:{fn.lineno})")
            current = caller
        return list(reversed(hops))


def iter_function_calls(fn: FunctionNode) -> Iterable[CallSite]:
    return fn.calls
