"""Driver for ``repro-ddb check`` — the whole-program static certifier.

Builds one :class:`~repro.analysis.static.callgraph.CallGraph` over the
installed ``repro`` package (plus any extra paths, e.g. ``tests/`` for
the nightly sweep or a seeded injection fixture), runs both passes —
complexity reachability (:mod:`.complexity`, rules RPR101–RPR103) and
lock discipline (:mod:`.races`, rules RPR201–RPR204) — and reports
through the same Finding/waiver/baseline machinery as the linter.

Waivers use their own mark so a reviewer can distinguish a local
convention waiver from a whole-program one::

    self._hits += 1  # static: ok RPR202 -- init-only, pre-publication

(the linter's ``# lint: ok`` mark is honored too).  Dynamic-dispatch
conservatism is reported as RPR100 *warnings* — visible in the JSON
artifact, never gating.

Run as ``python -m repro.analysis.static.checker [paths...]`` or
``repro-ddb check``; exit status 1 on any new (non-baselined) finding.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .. import baseline as baseline_mod
from ..lint import Finding, _WAIVER_MARK, _is_waived, default_target
from . import complexity, races
from .callgraph import CallGraph

#: Waiver mark for whole-program findings (``# static: ok RPR201 ...``).
STATIC_WAIVER_MARK = "# static: ok"

#: Directory of seeded known-bad fixtures — skipped when a *directory*
#: is swept (the nightly ``check tests/`` must stay clean) but analyzed
#: fine when a file inside it is passed explicitly (the fixture tests).
INJECTION_DIR = "static_injections"

#: rule id -> one-line summary (the ``--rules`` catalog).
RULES: Dict[str, str] = {
    "RPR100": "dynamic dispatch not statically resolvable (warning)",
    "RPR101": "coNP entry point must not reach a Σ₂ᵖ primitive",
    "RPR102": "coNP semantics modules free of Σ₂ᵖ reachability",
    "RPR103": "no statically nested Σ₂ᵖ dispatch",
    "RPR201": "attribute written both under and outside its guard lock",
    "RPR202": "no non-atomic read-modify-write on guarded/singleton state",
    "RPR203": "no lock-order inversion",
    "RPR204": "no unguarded shared state escaping into worker threads",
}


@dataclass
class Report:
    """One whole-program check run."""

    findings: List[Finding] = field(default_factory=list)
    warnings: List[Finding] = field(default_factory=list)
    summary: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "warnings": [w.as_dict() for w in self.warnings],
            "count": len(self.findings),
            "summary": self.summary,
        }


def _expand_extra(paths: Sequence[Path]) -> List[Path]:
    expanded: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            expanded.extend(
                sub for sub in sorted(path.rglob("*.py"))
                if INJECTION_DIR not in sub.parts
            )
        else:
            expanded.append(path)
    return expanded


def build_graph(extra_paths: Sequence[Path] = ()) -> CallGraph:
    """The package-wide graph (plus extra files/directories)."""
    return CallGraph.build(
        package_root=default_target(),
        package_name="repro",
        extra_paths=_expand_extra(extra_paths),
    )


def apply_waivers(
    graph: CallGraph, findings: Sequence[Finding]
) -> List[Finding]:
    lines_by_path = {
        module.path: module.lines for module in graph.modules.values()
    }
    kept: List[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path)
        if lines is not None and _is_waived(
            finding, lines, marks=(STATIC_WAIVER_MARK, _WAIVER_MARK)
        ):
            continue
        kept.append(finding)
    return kept


def check(
    extra_paths: Sequence[Path] = (),
    graph: Optional[CallGraph] = None,
) -> Report:
    """Run both passes; findings are waiver-filtered and sorted."""
    if graph is None:
        graph = build_graph(extra_paths)
    findings = complexity.check_complexity(graph)
    findings += races.check_races(graph)
    findings = apply_waivers(graph, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    warnings = apply_waivers(graph, graph.warnings)
    warnings.sort(key=lambda f: (f.path, f.line))
    return Report(
        findings=findings,
        warnings=warnings,
        summary={
            "complexity": complexity.summarize(graph),
            "races": races.summarize(graph),
        },
    )


def main(argv: Sequence[str] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-ddb check",
        description="Whole-program static certification: complexity "
        "reachability (RPR101-RPR103) and lock discipline "
        "(RPR201-RPR204) over the repro call graph.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="extra files or directories analyzed alongside the repro "
        "package (e.g. tests/ for the nightly sweep)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    parser.add_argument(
        "--warnings", action="store_true",
        help="also print RPR100 dynamic-dispatch warnings (text mode)",
    )
    parser.add_argument(
        "--baseline", type=Path, metavar="JSON",
        help="gate on findings NOT in this baseline",
    )
    parser.add_argument(
        "--write-baseline", type=Path, metavar="JSON",
        help="record the current findings as a baseline and exit 0",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="only report findings in files changed vs. git HEAD "
        "(the graph is still whole-program)",
    )
    args = parser.parse_args(argv)
    if args.rules:
        for rule_id, summary in sorted(RULES.items()):
            print(f"{rule_id}  {summary}")
        return 0
    report = check(extra_paths=args.paths)
    findings = report.findings
    if args.diff:
        changed = baseline_mod.changed_files()
        if changed is not None:
            findings = baseline_mod.restrict_to_changed(findings, changed)
    if args.write_baseline is not None:
        baseline_mod.save_baseline(findings, args.write_baseline)
        print(
            f"baseline of {len(findings)} finding(s) written to "
            f"{args.write_baseline}"
        )
        return 0
    gated = findings
    if args.baseline is not None:
        gated = baseline_mod.filter_new(
            findings, baseline_mod.load_baseline(args.baseline)
        )
    if args.format == "json":
        document = report.as_dict()
        document["findings"] = [f.as_dict() for f in findings]
        document["count"] = len(findings)
        if args.baseline is not None:
            document["new"] = [f.as_dict() for f in gated]
            document["new_count"] = len(gated)
        print(json.dumps(document, indent=2, ensure_ascii=False))
    else:
        for finding in findings:
            marker = "" if finding in gated else " [baselined]"
            print(finding.render() + marker)
        if args.warnings:
            for warning in report.warnings:
                print(warning.render() + " [warning]")
        print(
            f"{len(findings)} finding(s) ({len(gated)} new), "
            f"{len(report.warnings)} warning(s), "
            f"{len(report.summary['complexity']['sigma2_sites'])} "
            "Σ₂ᵖ site(s) in graph"
        )
    return 1 if gated else 0


if __name__ == "__main__":
    sys.exit(main())
