"""Pass 1 — complexity reachability over the whole-program call graph.

The runtime certifier (:mod:`repro.obs.certify`) checks every query's
*observed* oracle counters against its Table 1/2 cell; this pass proves
the same discipline on paths no test exercises, by classifying the
primitive realization sites in the graph and asking, for every
``@register``-ed semantics entry point, whether the set of *statically
reachable* primitives is consistent with the cell's class:

* **NP sites** — functions that tick :func:`repro.runtime.observe_sat_call`
  / :func:`repro.obs.accounting.note_np_call` (the CDCL ``solve()``);
* **Σ₂ᵖ sites** — functions decorated ``@counts_as_sigma2_dispatch`` or
  entering :func:`~repro.obs.accounting.sigma2_dispatch` /
  :func:`~repro.obs.accounting.note_sigma2_dispatch` (the
  ``find_minimal_satisfying`` realizations and the witness machines);
* **EXP sites** — brute enumerators ticking
  :func:`~repro.runtime.budget.note_nodes`.

The allowed-primitive set per (semantics, entry point) is **derived
from the certifier's own claims** — :meth:`repro.obs.certify.Certifier.
claim_for` over both regimes, admitting Σ₂ᵖ reachability exactly when
some regime's envelope grants a nonzero Σ₂ᵖ dispatch budget — so there
is no hand-maintained second table to drift.

Rules:

====== ===============================================================
RPR101 A semantics entry point whose every Table 1/2 cell forbids Σ₂ᵖ
       dispatch (coNP and below) statically reaches a Σ₂ᵖ primitive.
       This is the transitive closure of RPR003: three helper calls
       deep is as much a violation as a direct import.
RPR102 Any function defined in a coNP-classified semantics module
       reaches a Σ₂ᵖ primitive (module-granular RPR003, transitive).
RPR103 A Σ₂ᵖ primitive realization statically reaches another Σ₂ᵖ
       primitive through resolved edges — a dispatch-depth-2 machine,
       which every Π₂ᵖ/Θ₃ᵖ envelope (``max_sigma2_depth = 1``) forbids.
====== ===============================================================

Escapes the traversal honors (both documented in the guide):

* ``if <...>.engine == "brute":`` branches — brute execution is
  certified against the node envelope, not the oracle envelopes;
* ``# static: fallback-edge`` annotations — explicitly declared
  degraded-mode edges (the resilient engine's brute fallback, the
  planner's never-worse default).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lint import Finding, conp_semantics
from .callgraph import CallGraph, FunctionNode

#: Function names whose *call* marks the enclosing definition as a
#: primitive realization of each kind.
NP_TICKS = frozenset({"observe_sat_call", "note_np_call"})
SIGMA2_TICKS = frozenset({"sigma2_dispatch", "note_sigma2_dispatch"})
EXP_TICKS = frozenset({"note_nodes"})

#: Σ₂ᵖ primitive marker decorator.
SIGMA2_DECORATOR = "counts_as_sigma2_dispatch"

#: Entry-point methods certified per query (the session maps them to
#: the paper's tasks; ``model_set`` is a materialization API, not a
#: Table 1/2 decision problem, and stays out of scope).
ENTRY_METHODS = ("infers", "infers_literal", "has_model")

#: Base-class names that mark a semantics implementation.
SEMANTICS_BASES = frozenset({"Semantics", "PartitionedSemantics"})


def classify_primitives(graph: CallGraph) -> Dict[str, str]:
    """``{qualname: "np"|"sigma2"|"exp"}`` for every primitive site."""
    kinds: Dict[str, str] = {}
    for qualname, fn in graph.functions.items():
        # Direct sites carry qualified targets; ticks match by tail.
        names = {site.target.rsplit(".", 1)[-1] for site in fn.calls}
        if SIGMA2_DECORATOR in fn.decorators or names & SIGMA2_TICKS:
            kinds[qualname] = "sigma2"
        elif names & NP_TICKS:
            kinds[qualname] = "np"
        elif names & EXP_TICKS:
            kinds[qualname] = "exp"
    return kinds


def _method_task(method: str):
    from repro.obs.certify import TASK_FOR_METHOD

    return TASK_FOR_METHOD.get(method)


def sigma2_allowed(semantics: str, method: str) -> Optional[bool]:
    """May this (semantics, entry point) dispatch the Σ₂ᵖ primitive?

    Derived from the certifier's claims: allowed iff *some* regime's
    envelope for the cell grants a nonzero Σ₂ᵖ dispatch budget (the
    regime is a per-database property the static pass cannot know, so
    it takes the union — sound, never over-strict).  ``None`` when the
    semantics has no table claim (comparison semantics like ``cwa``
    escape Pass 1 exactly as they escape certification).
    """
    from repro.obs.certify import Certifier, canonical_name
    from repro.complexity.classes import Regime

    task = _method_task(method)
    if task is None:
        return None
    name = canonical_name(semantics)
    any_claim = False
    for regime in Regime:
        try:
            envelope = Certifier.envelope_for(
                name, task, regime, engine="oracle"
            )
        except KeyError:
            continue
        any_claim = True
        if envelope is not None and envelope.sigma2_dispatches.limit(1) > 0:
            return True
    return False if any_claim else None


def semantics_classes(
    graph: CallGraph,
) -> List[Tuple[str, str]]:
    """``(class_qualname, declared_name)`` for every class that subclasses
    a semantics base (transitively, in-graph or by bare base name) and
    declares a string ``name``."""
    found: List[Tuple[str, str]] = []
    for qualname, info in graph.classes.items():
        if info.node is None:
            continue
        bases: Set[str] = set()
        for cls in graph.mro(qualname):
            for base in graph.classes[cls].bases:
                bases.add(base.rsplit(".", 1)[-1])
        if not bases & SEMANTICS_BASES:
            continue
        declared = None
        for statement in info.node.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "name"
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                declared = statement.value.value
        if declared:
            found.append((qualname, declared))
    return found


def _sigma2_hit(
    graph: CallGraph,
    parents,
    primitives: Dict[str, str],
) -> Optional[str]:
    for reached in parents:
        if primitives.get(reached) == "sigma2":
            return reached
    return None


def check_complexity(graph: CallGraph) -> List[Finding]:
    """Run Pass 1 over a built graph."""
    findings: List[Finding] = []
    primitives = classify_primitives(graph)

    # RPR101 — entry-point envelope consistency.
    for cls_qualname, declared in semantics_classes(graph):
        for method in ENTRY_METHODS:
            allowed = sigma2_allowed(declared, method)
            if allowed is not False:
                continue  # Σ₂ᵖ admitted or no claim: nothing to prove
            start = graph.resolve_method(cls_qualname, method)
            if start is None:
                continue
            parents = graph.reachable(
                start,
                self_class=cls_qualname,
                skip_brute=True,
                skip_fallback=True,
            )
            hit = _sigma2_hit(graph, parents, primitives)
            if hit is None:
                continue
            entry = graph.functions[start]
            path = " -> ".join(graph.witness_path(parents, hit))
            anchor = graph.classes[cls_qualname]
            findings.append(
                Finding(
                    "RPR101",
                    entry.path if entry.cls == cls_qualname
                    else anchor.path,
                    entry.lineno if entry.cls == cls_qualname
                    else anchor.lineno,
                    0,
                    f"semantics {declared!r} entry point {method}() is "
                    f"classified <= coNP for every regime but statically "
                    f"reaches the Σ₂ᵖ primitive {hit} "
                    f"[{path}]; route the call through an annotated "
                    f"fallback edge or fix the dispatch",
                )
            )

    # RPR102 — transitive module purity for coNP semantics modules.
    conp_modules = {
        f"repro/semantics/{name}.py" for name in conp_semantics()
    }
    for qualname, fn in graph.functions.items():
        posix = Path(fn.path).as_posix()
        if not any(posix.endswith(suffix) for suffix in conp_modules):
            continue
        parents = graph.reachable(
            qualname, skip_brute=True, skip_fallback=True
        )
        hit = _sigma2_hit(graph, parents, primitives)
        if hit is not None:
            path = " -> ".join(graph.witness_path(parents, hit))
            findings.append(
                Finding(
                    "RPR102", fn.path, fn.lineno, 0,
                    f"{qualname} lives in a coNP-classified semantics "
                    f"module but statically reaches the Σ₂ᵖ primitive "
                    f"{hit} [{path}] (RPR003, made transitive)",
                )
            )

    # RPR103 — statically nested Σ₂ᵖ dispatch (resolved edges only:
    # the attr-name over-approximation would fake nesting between
    # same-named methods of unrelated solvers).
    for qualname, kind in sorted(primitives.items()):
        if kind != "sigma2":
            continue
        fn = graph.functions[qualname]
        parents = graph.reachable(
            qualname,
            skip_brute=True,
            skip_fallback=True,
            include_attr_matches=False,
        )
        for reached in parents:
            if reached == qualname:
                continue
            if primitives.get(reached) == "sigma2":
                path = " -> ".join(graph.witness_path(parents, reached))
                findings.append(
                    Finding(
                        "RPR103", fn.path, fn.lineno, 0,
                        f"Σ₂ᵖ primitive {qualname} statically reaches "
                        f"Σ₂ᵖ primitive {reached} [{path}] — a nested "
                        "dispatch, which the depth-1 envelopes forbid",
                    )
                )
    return findings


def summarize(graph: CallGraph) -> Dict[str, object]:
    """Machine-readable Pass 1 summary for the JSON report."""
    primitives = classify_primitives(graph)
    by_kind: Dict[str, List[str]] = {"np": [], "sigma2": [], "exp": []}
    for qualname, kind in sorted(primitives.items()):
        by_kind[kind].append(qualname)
    entries: List[Dict[str, object]] = []
    for cls_qualname, declared in sorted(semantics_classes(graph)):
        methods = {}
        for method in ENTRY_METHODS:
            allowed = sigma2_allowed(declared, method)
            if allowed is None:
                continue
            methods[method] = {"sigma2_allowed": allowed}
        if methods:
            entries.append(
                {
                    "class": cls_qualname,
                    "semantics": declared,
                    "entry_points": methods,
                }
            )
    return {
        "functions": len(graph.functions),
        "classes": len(graph.classes),
        "primitives": {k: len(v) for k, v in by_kind.items()},
        "sigma2_sites": by_kind["sigma2"],
        "semantics_entry_points": entries,
        "dynamic_warnings": len(graph.warnings),
    }
