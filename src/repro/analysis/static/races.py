"""Pass 2 — lock-discipline race detection over the shared singletons.

The serve layer fans evaluation out to a thread pool, so every
process-wide singleton (the engine LRU cache, the solver pool, the
metrics registry, the runtime counter facade, the tracer, the query
service's tenant maps) must hold up under interleaving.  PR 9 found a
real lost-update race (``RUNTIME_STATS.x += 1`` was a locked read
followed by a locked write) with a one-off regex scan; this pass turns
that audit into a whole-program discipline:

1. **Guard inference** — any class that assigns ``threading.Lock()`` /
   ``RLock()`` to an attribute (canonically ``self._lock``) in a method
   owns that guard; ``with self._lock:`` blocks mark the guarded
   regions.  Classes without a lock are assumed event-loop-confined
   (the asyncio service core) and are checked only by the executor
   escape rule.
2. **Singleton inventory** — module-level ``NAME = ClassName(...)``
   instances of lock-owning classes, plus the configured facades whose
   locking lives one level down (``RUNTIME_STATS`` proxies locked
   metric counters).

Rules:

====== ===============================================================
RPR201 An attribute written both *under* and *outside* its class's
       inferred guard lock (outside ``__init__``) — the unguarded
       write can interleave with every guarded critical section.
RPR202 Non-atomic read-modify-write on guarded or singleton state:
       ``x.attr += ...``, ``x.attr = x.attr <op> ...``, and dict
       get-then-set (``x.d[k] = x.d.get(k, ...) ...``) outside the
       guard — two critical sections, not one; updates get lost.  The
       PR 9 ``RUNTIME_STATS`` pattern is exactly this rule.
RPR203 Lock-order inversion: traversal A acquires lock L1 then
       (directly or through resolved calls) L2 while another traversal
       acquires L2 then L1 — a deadlock waiting for contention.
RPR204 A function handed to ``ThreadPoolExecutor.submit`` /
       ``run_in_executor`` / ``threading.Thread(target=...)`` reaches
       an unguarded write to a guarded attribute — shared mutable
       state escaping into a worker thread.
====== ===============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lint import Finding
from .callgraph import CallGraph, FunctionNode, _dotted

#: Facade singletons whose locking is delegated to contained objects —
#: externally they must still be treated as shared state (RPR202).
EXTRA_SINGLETONS = frozenset({
    "repro.runtime.budget.RUNTIME_STATS",
})

#: Container methods treated as writes to the receiver attribute.
MUTATORS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "extend",
    "insert",
})

#: Executor-style escape points: call name -> index of the first
#: positional argument that names the escaping callable (every
#: function-reference argument from there on is considered escaped).
ESCAPES = {"submit": 0, "run_in_executor": 1}


@dataclass
class AttrWrite:
    """One write to ``self.<attr>`` inside a method."""

    attr: str
    lineno: int
    col: int
    guarded: bool
    rmw: bool  #: augmented / read-modify-write shape
    method: str


@dataclass
class LockClass:
    """Per-class lock-discipline facts."""

    qualname: str
    path: str
    lock_attrs: Set[str] = field(default_factory=set)
    writes: List[AttrWrite] = field(default_factory=list)

    def guarded_attrs(self) -> Set[str]:
        return {w.attr for w in self.writes if w.guarded}


def _is_lock_ctor(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _dotted(node.func) or ""
    return name.split(".")[-1] in {"Lock", "RLock"}


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (one level; ``self.X.Y`` -> ``X``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _reads_of(node: ast.AST, attr: str) -> bool:
    """Does an expression read ``self.<attr>`` anywhere?"""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr == attr
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            return True
    return False


class _MethodScanner(ast.NodeVisitor):
    """Walk one method tracking the held-lock set."""

    def __init__(
        self,
        owner: LockClass,
        method: FunctionNode,
        graph: CallGraph,
        singleton_locals: Dict[str, str],
    ) -> None:
        self.owner = owner
        self.method = method
        self.graph = graph
        self.singleton_locals = singleton_locals
        self.held: List[str] = []  #: stack of held lock ids
        #: ordered (outer, inner, lineno) acquisitions in this method
        self.orders: List[Tuple[str, str, int]] = []
        #: locks acquired anywhere in this method (for summaries)
        self.acquired: Set[str] = set()
        #: call sites made while holding a lock: (lock, site)
        self.calls_under: List[Tuple[str, ast.Call]] = []
        #: singleton RMW findings raised directly
        self.singleton_rmw: List[Finding] = []

    # -- lock identity ---------------------------------------------------

    def _lock_id(self, expr: ast.AST) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.owner.lock_attrs:
            return f"{self.owner.qualname}.{attr}"
        dotted = _dotted(expr)
        if dotted is None:
            return None
        head, _, tail = dotted.partition(".")
        target = self.singleton_locals.get(head)
        if target is not None and tail:
            return f"{target}.{tail}"
        return None

    # -- traversal -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:  # noqa: N802
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:  # noqa: N802
        self._with(node)

    def _with(self, node) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is not None:
                for held in self.held:
                    if held != lock:
                        self.orders.append((held, lock, node.lineno))
                self.held.append(lock)
                self.acquired.add(lock)
                acquired.append(lock)
            else:
                self.visit(item.context_expr)
        for child in node.body:
            self.visit(child)
        for lock in acquired:
            self.held.remove(lock)

    def visit_FunctionDef(self, node) -> None:  # noqa: N802
        return  # nested defs scanned as their own methods

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_ClassDef(self, node) -> None:  # noqa: N802
        return

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        if self.held:
            self.calls_under.append((self.held[-1], node))
        self.generic_visit(node)

    # -- writes ----------------------------------------------------------

    def _record(self, attr: str, node: ast.AST, rmw: bool) -> None:
        self.owner.writes.append(
            AttrWrite(
                attr=attr,
                lineno=node.lineno,
                col=node.col_offset,
                guarded=any(
                    lock.startswith(self.owner.qualname + ".")
                    for lock in self.held
                ),
                rmw=rmw,
                method=self.method.qualname,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None or attr in self.owner.lock_attrs:
                continue
            rmw = _reads_of(node.value, attr)
            # dict get-then-set: self.d[k] = ... self.d.get(...) ...
            if isinstance(target, ast.Subscript):
                base = _self_attr(target)
                rmw = rmw or (base is not None and _reads_of(
                    node.value, base
                ))
            self._record(attr, node, rmw)
        self._singleton_write(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:  # noqa: N802
        attr = _self_attr(node.target)
        if attr is not None and attr not in self.owner.lock_attrs:
            self._record(attr, node, rmw=True)
        self._singleton_write([node.target], None, node, aug=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:  # noqa: N802
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:  # noqa: N802
        # Container mutators: self.X.append(...) and friends.
        call = node.value
        if isinstance(call, ast.Call) and isinstance(
            call.func, ast.Attribute
        ):
            if call.func.attr in MUTATORS:
                attr = _self_attr(call.func.value)
                if attr is not None and attr not in self.owner.lock_attrs:
                    self._record(attr, node, rmw=False)
        self.generic_visit(node)

    # -- singleton external writes --------------------------------------

    def _singleton_write(
        self, targets, value, node, aug: bool = False
    ) -> None:
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if not (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
            ):
                continue
            singleton = self.singleton_locals.get(base.value.id)
            if singleton is None:
                continue
            rmw = aug or (
                value is not None
                and any(
                    isinstance(child, ast.Attribute)
                    and child.attr == base.attr
                    and isinstance(child.value, ast.Name)
                    and child.value.id == base.value.id
                    for child in ast.walk(value)
                )
            )
            if rmw:
                self.singleton_rmw.append(
                    Finding(
                        "RPR202", self.method.path, node.lineno,
                        node.col_offset,
                        f"non-atomic read-modify-write on shared "
                        f"singleton state {base.value.id}.{base.attr} "
                        f"(singleton {singleton}): a locked read then "
                        "a locked write loses updates under threads; "
                        "use the singleton's atomic mutator (e.g. "
                        ".inc()) instead",
                    )
                )


def _singleton_locals(
    graph: CallGraph, module_name: str
) -> Dict[str, str]:
    """Local name -> singleton qualname visible in one module (its own
    module-level instances plus imported ones)."""
    singletons = set(graph.singletons) | set(EXTRA_SINGLETONS)
    module = graph.modules.get(module_name)
    table: Dict[str, str] = {}
    for qualname in singletons:
        mod, _, name = qualname.rpartition(".")
        if mod == module_name:
            table[name] = qualname
    if module is not None:
        for local, target in module.imports.items():
            if target in singletons:
                table[local] = target
    return table


def collect_lock_classes(graph: CallGraph) -> Dict[str, LockClass]:
    """Infer guard locks and attribute writes for every class."""
    classes: Dict[str, LockClass] = {}
    for qualname, info in graph.classes.items():
        lock_attrs: Set[str] = set()
        for method_qualname in info.methods.values():
            fn = graph.functions.get(method_qualname)
            if fn is None or fn.node is None:
                continue
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Assign)
                    and _is_lock_ctor(node.value)
                ):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            lock_attrs.add(attr)
        if lock_attrs:
            classes[qualname] = LockClass(
                qualname=qualname, path=info.path, lock_attrs=lock_attrs
            )
    return classes


def check_races(graph: CallGraph) -> List[Finding]:
    """Run Pass 2 over a built graph."""
    findings: List[Finding] = []
    lock_classes = collect_lock_classes(graph)
    scanners: List[_MethodScanner] = []

    # Scan every function: methods of lock classes feed guard analysis;
    # everything feeds the singleton-RMW and lock-order rules.
    placeholder: Dict[str, LockClass] = {}
    for qualname, fn in graph.functions.items():
        if fn.node is None:
            continue
        owner = lock_classes.get(fn.cls) if fn.cls else None
        if owner is None:
            key = fn.cls or fn.module
            owner = placeholder.setdefault(
                key, LockClass(qualname=key or "<module>", path=fn.path)
            )
        scanner = _MethodScanner(
            owner, fn, graph, _singleton_locals(graph, fn.module)
        )
        for child in (
            fn.node.body if hasattr(fn.node, "body") else []
        ):
            scanner.visit(child)
        scanners.append(scanner)
        findings.extend(scanner.singleton_rmw)

    # Module-level statements race too (import-time and script bodies):
    # scan them for singleton RMW so the retired regex scan's coverage
    # is a strict subset of this rule.
    for module in graph.modules.values():
        pseudo = FunctionNode(
            qualname=f"{module.name}.<module>", module=module.name,
            path=module.path, lineno=1, name="<module>",
        )
        owner = LockClass(qualname=module.name, path=module.path)
        scanner = _MethodScanner(
            owner, pseudo, graph, _singleton_locals(graph, module.name)
        )
        for node in module.tree.body:
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            scanner.visit(node)
        findings.extend(scanner.singleton_rmw)

    # RPR201 / RPR202 on inferred guard discipline.
    for owner in lock_classes.values():
        guarded = owner.guarded_attrs()
        flagged: Set[Tuple[str, int]] = set()
        for write in owner.writes:
            if write.attr not in guarded or write.guarded:
                continue
            if write.method.endswith(".__init__"):
                continue  # construction happens-before publication
            key = (write.attr, write.lineno)
            if key in flagged:
                continue
            flagged.add(key)
            rule = "RPR202" if write.rmw else "RPR201"
            detail = (
                "non-atomic read-modify-write outside the guard"
                if write.rmw
                else "write outside the guard while other sites write "
                "under it"
            )
            findings.append(
                Finding(
                    rule, owner.path, write.lineno, write.col,
                    f"attribute {owner.qualname.rsplit('.', 1)[-1]}"
                    f".{write.attr} is guarded by "
                    f"{sorted(owner.lock_attrs)} elsewhere but this "
                    f"site mutates it unguarded ({detail})",
                )
            )

    # RPR203 — lock-order inversion (intraprocedural orders plus one
    # interprocedural closure step through resolved calls).
    method_acquires: Dict[str, Set[str]] = {}
    for scanner in scanners:
        method_acquires.setdefault(
            scanner.method.qualname, set()
        ).update(scanner.acquired)
    # Fixpoint: locks transitively acquired through resolved edges.
    closure: Dict[str, Set[str]] = {
        q: set(a) for q, a in method_acquires.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname, fn in graph.functions.items():
            mine = closure.setdefault(qualname, set())
            for site in fn.calls:
                for callee, _ in graph.callees(
                    fn, fn.cls, site, include_attr_matches=False
                ):
                    extra = closure.get(callee, set()) - mine
                    if extra:
                        mine.update(extra)
                        changed = True
    orders: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
    for scanner in scanners:
        for outer, inner, lineno in scanner.orders:
            orders.setdefault(
                (outer, inner),
                (scanner.method.path, lineno, scanner.method.qualname),
            )
        for held, call in scanner.calls_under:
            fn = scanner.method
            site_matches = [
                s for s in fn.calls if s.lineno == call.lineno
            ]
            for site in site_matches:
                for callee, _ in graph.callees(
                    fn, fn.cls, site, include_attr_matches=False
                ):
                    for inner in closure.get(callee, set()):
                        if inner != held:
                            orders.setdefault(
                                (held, inner),
                                (fn.path, call.lineno, fn.qualname),
                            )
    reported: Set[Tuple[str, str]] = set()
    for (outer, inner), (path, lineno, method) in sorted(orders.items()):
        if (inner, outer) not in orders:
            continue
        if (inner, outer) in reported:
            continue
        reported.add((outer, inner))
        other_path, other_line, other_method = orders[(inner, outer)]
        findings.append(
            Finding(
                "RPR203", path, lineno, 0,
                f"lock-order inversion: {method} acquires {outer} then "
                f"{inner}, while {other_method} "
                f"({other_path}:{other_line}) acquires them in the "
                "opposite order — deadlock under contention",
            )
        )

    # RPR204 — unguarded guarded-attr writes reachable from executor
    # escapes.
    unguarded_sites: Dict[str, List[AttrWrite]] = {}
    for owner in lock_classes.values():
        guarded = owner.guarded_attrs()
        for write in owner.writes:
            if (
                write.attr in guarded
                and not write.guarded
                and not write.method.endswith(".__init__")
            ):
                unguarded_sites.setdefault(write.method, []).append(write)
    for qualname, fn in graph.functions.items():
        if fn.node is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = ""
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            escaped: List[ast.AST] = []
            if name in ESCAPES:
                escaped = list(node.args[ESCAPES[name]:])
            elif name == "Thread":
                escaped = [
                    kw.value for kw in node.keywords
                    if kw.arg == "target"
                ]
            for arg in escaped:
                target = None
                if isinstance(arg, ast.Attribute) and isinstance(
                    arg.value, ast.Name
                ) and arg.value.id == "self" and fn.cls:
                    target = graph.resolve_method(fn.cls, arg.attr)
                elif isinstance(arg, (ast.Name, ast.Attribute)):
                    dotted = _dotted(arg)
                    module = graph.modules.get(fn.module)
                    if dotted and module is not None:
                        target = graph._qualify(module, dotted)
                if target is None or target not in graph.functions:
                    continue
                parents = graph.reachable(
                    target, include_attr_matches=False
                )
                for reached in parents:
                    for write in unguarded_sites.get(reached, ()):
                        findings.append(
                            Finding(
                                "RPR204", fn.path, node.lineno,
                                node.col_offset,
                                f"{target} escapes into a worker "
                                f"thread here and reaches an unguarded "
                                f"write to guarded attribute "
                                f".{write.attr} at "
                                f"{graph.functions[reached].path}:"
                                f"{write.lineno}",
                            )
                        )
    return findings


def summarize(graph: CallGraph) -> Dict[str, object]:
    """Machine-readable Pass 2 summary for the JSON report."""
    lock_classes = collect_lock_classes(graph)
    return {
        "lock_classes": {
            qualname: sorted(owner.lock_attrs)
            for qualname, owner in sorted(lock_classes.items())
        },
        "singletons": {
            name: cls
            for name, cls in sorted(graph.singletons.items())
        },
    }
