"""Command-line interface: ``repro-ddb`` / ``python -m repro``.

Subcommands:

* ``models FILE --semantics S`` — print the models a semantics selects;
* ``infer FILE --query F --semantics S`` — decide formula inference;
* ``solve FILE`` — classical satisfiability / one model;
* ``stratify FILE`` — show the canonical stratification;
* ``closure FILE`` — the GCWA / WGCWA / EGCWA closure objects;
* ``ground FILE`` — ground a non-ground (variable) program;
* ``tables [--evidence]`` — regenerate the paper's Tables 1 and 2;
* ``cache [FILE]`` — exercise the memoizing engine and print the
  process-wide cache statistics (hits/misses/evictions, entries by kind);
* ``query FILE --query F --timeout-ms N`` — budgeted inference through
  the resilient engine: a structured outcome (ok / degraded / timeout)
  instead of an unbounded run; exit code 4 signals a timeout/failure;
* ``faults [FILE]`` — deterministic fault-injection demo: run a query
  under a seeded :class:`~repro.runtime.faults.FaultPlan` and print the
  degradation path taken;
* ``serve`` — run the multi-tenant async query daemon: per-tenant
  sessions over HTTP with admission control, cross-request batching,
  QoS budget headers, ``/metrics`` and ``/trace`` endpoints
  (see ``docs/serving_guide.md``);
* ``trace FILE --query F`` — run queries under a recording
  :class:`~repro.obs.trace.Tracer` and print the span tree (or JSON
  lines with ``--jsonl``), the per-query complexity certificates, and
  optionally the full metrics exposition (``--metrics``).

``FILE`` is a database in the surface syntax (``-`` for stdin).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ReproError
from .logic.parser import parse_database, parse_formula
from .semantics import ENGINES, SEMANTICS, get_semantics, resolve_name


def _read_database(path: str):
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    return parse_database(text)


def _semantics_kwargs(args) -> dict:
    kwargs = {"engine": args.engine}
    if getattr(args, "p", None) is not None:
        kwargs["p"] = [a for a in args.p.split(",") if a]
    if getattr(args, "z", None):
        kwargs["z"] = [a for a in args.z.split(",") if a]
    # Partition kwargs only exist on partitioned semantics.
    name = resolve_name(args.semantics)
    if name not in ("ccwa", "ecwa", "circ", "icwa"):
        kwargs.pop("p", None)
        kwargs.pop("z", None)
    return kwargs


def _cmd_models(args) -> int:
    db = _read_database(args.file)
    semantics = get_semantics(args.semantics, **_semantics_kwargs(args))
    models = sorted(semantics.model_set(db), key=str)
    label = resolve_name(args.semantics).upper()
    print(f"{label} selects {len(models)} model(s):")
    for model in models:
        print(" ", model)
    return 0


def _cmd_infer(args) -> int:
    db = _read_database(args.file)
    formula = parse_formula(args.query)
    semantics = get_semantics(args.semantics, **_semantics_kwargs(args))
    verdict = semantics.infers(db, formula)
    label = resolve_name(args.semantics).upper()
    print(f"{label}(DB) |= {formula}  :  {verdict}")
    return 0 if verdict else 1


def _cmd_solve(args) -> int:
    from .sat.solver import find_model

    db = _read_database(args.file)
    model = find_model(db)
    if model is None:
        print("UNSATISFIABLE")
        return 1
    print("SATISFIABLE")
    print("model:", model)
    return 0


def _cmd_stratify(args) -> int:
    from .engine.cache import stratification_for

    db = _read_database(args.file)
    stratification = stratification_for(db)
    if stratification is None:
        print("NOT STRATIFIED (dependency cycle through negation)")
        return 1
    for index, stratum in enumerate(stratification.strata, start=1):
        print(f"S{index}: {{{', '.join(sorted(stratum))}}}")
    return 0


def _cmd_repl(args) -> int:
    from .repl import run_repl

    db = _read_database(args.file) if args.file else None
    return run_repl(db=db, semantics=args.semantics)


def _cmd_closure(args) -> int:
    from .semantics.state import (
        egcwa_closure_clauses,
        gcwa_closure_literals,
        wgcwa_closure_literals,
    )

    db = _read_database(args.file)
    if db.has_negation:
        print("error: closures are defined for deductive databases",
              file=sys.stderr)
        return 2
    wgcwa = wgcwa_closure_literals(db)
    gcwa = gcwa_closure_literals(db)
    print("WGCWA/DDR adds:",
          ", ".join(f"not {a}" for a in sorted(wgcwa)) or "(nothing)")
    print("GCWA adds:     ",
          ", ".join(f"not {a}" for a in sorted(gcwa)) or "(nothing)")
    egcwa = egcwa_closure_clauses(db, max_size=args.max_size)
    rendered = [
        ":- " + ", ".join(sorted(body)) + "."
        for body in sorted(egcwa, key=lambda b: (len(b), sorted(b)))
    ]
    print("EGCWA adds:    ", "  ".join(rendered) or "(nothing)")
    return 0


def _cmd_ground(args) -> int:
    from .ground import ground_program

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as handle:
            text = handle.read()
    db = ground_program(text, extra_constants=args.constants or ())
    print(db)
    return 0


def _cmd_cache(args) -> int:
    from .engine.cache import ENGINE_CACHE

    if args.clear:
        ENGINE_CACHE.clear()
    if args.limit is not None:
        ENGINE_CACHE.configure(args.limit)
    if args.file:
        db = _read_database(args.file)
        names = [n.strip() for n in args.semantics.split(",") if n.strip()]
        for _ in range(max(1, args.repeat)):
            for name in names:
                semantics = get_semantics(name, engine="cached")
                semantics.has_model(db)
                semantics.model_set(db)
                if args.query:
                    semantics.infers(db, parse_formula(args.query))
    stats = ENGINE_CACHE.stats()
    print(f"entries:   {stats['entries']} / {stats['maxsize']}")
    print(
        f"lookups:   {stats['hits'] + stats['misses']}  "
        f"(hits {stats['hits']}, misses {stats['misses']}, "
        f"hit rate {stats['hit_rate']:.1%})"
    )
    print(f"evictions: {stats['evictions']}")
    kinds = sorted(
        set(stats["entries_by_kind"])
        | set(stats["hits_by_kind"])
        | set(stats["misses_by_kind"])
        | set(stats["evictions_by_kind"])
    )
    if kinds:
        print("by kind:")
    for kind in kinds:
        print(
            f"  {kind:<20} entries={stats['entries_by_kind'].get(kind, 0):<5} "
            f"hits={stats['hits_by_kind'].get(kind, 0):<5} "
            f"misses={stats['misses_by_kind'].get(kind, 0):<5} "
            f"evictions={stats['evictions_by_kind'].get(kind, 0)}"
        )
    from .sat.incremental import solver_pool_stats

    pool = solver_pool_stats()
    print("solver pool:")
    print(
        f"  parked:    {pool['solvers_pooled']} / {pool['pool_maxsize']}"
    )
    print(
        f"  checkouts: {pool['solvers_created'] + pool['solver_reuses']}  "
        f"(built {pool['solvers_created']}, "
        f"reused {pool['solver_reuses']}, "
        f"reuse rate {pool['reuse_rate']:.1%})"
    )
    print(
        f"  retained learned clauses: {pool['clauses_retained']}  "
        f"(discarded {pool['solvers_discarded']}, "
        f"evicted {pool['solver_evictions']})"
    )
    return 0


#: Exit code of ``query``/``faults`` when no engine produced an answer
#: (budget tripped or every retry faulted) — distinct from the verdict
#: codes 0/1 and the usage-error code 2.
EXIT_NO_ANSWER = 4


def _cmd_query(args) -> int:
    from .runtime import Budget, runtime_stats

    db = _read_database(args.file)
    formula = parse_formula(args.query)
    budget = Budget(
        wall_ms=args.timeout_ms,
        max_sat_calls=args.max_sat_calls,
        max_nodes=args.max_nodes,
    )
    kwargs = _semantics_kwargs(args)
    kwargs["budget"] = budget
    semantics = get_semantics(args.semantics, **kwargs)
    method = "infers_brave" if args.mode == "brave" else "infers"
    outcome = semantics.run(method, db, formula)
    label = resolve_name(args.semantics).upper()
    print(f"{label}(DB) |= {formula}  [budget: {budget.render()}]")
    print(outcome.render())
    if args.stats:
        print("runtime counters:")
        for key, value in runtime_stats().items():
            print(f"  {key}: {value}")
    if not outcome.ok:
        return EXIT_NO_ANSWER
    return 0 if outcome.value else 1


#: The built-in database the ``faults`` demo queries when no file is
#: given: a disjunctive fact plus a dependent rule, small enough that
#: every engine answers instantly and the printout stays readable.
FAULTS_DEMO_DB = "a | b. c :- a."


def _cmd_faults(args) -> int:
    from .engine.resilient import RetryPolicy
    from .runtime import Budget, FaultPlan, fault_plan, runtime_stats

    if args.file:
        db = _read_database(args.file)
    else:
        db = parse_database(FAULTS_DEMO_DB)
        print(f"(no FILE given; using the demo database {FAULTS_DEMO_DB!r})")
    formula = parse_formula(args.query)
    plan = FaultPlan(
        seed=args.seed,
        sat_fault_rate=args.sat_fault_rate,
        latency_ms=args.latency_ms,
        worker_crash_rate=args.worker_crash_rate,
        max_sat_faults=args.max_sat_faults,
    )
    kwargs = _semantics_kwargs(args)
    kwargs["budget"] = Budget(wall_ms=args.timeout_ms)
    kwargs["retry"] = RetryPolicy(
        max_retries=args.retries, backoff_ms=args.backoff_ms
    )
    semantics = get_semantics(args.semantics, **kwargs)
    label = resolve_name(args.semantics).upper()
    print(f"querying {label}(DB) |= {formula} under {plan!r}")
    with fault_plan(plan):
        outcome = semantics.run("infers", db, formula)
    print(outcome.render())
    print("fault plan counters:")
    for key, value in plan.stats().items():
        print(f"  {key}: {value}")
    print("runtime counters:")
    for key, value in runtime_stats().items():
        print(f"  {key}: {value}")
    return 0 if outcome.ok else EXIT_NO_ANSWER


def _cmd_trace(args) -> int:
    from .obs.trace import Tracer, use_tracer
    from .session import DatabaseSession

    db = _read_database(args.file)
    tracer = Tracer()
    session = DatabaseSession(
        db, default_semantics=args.semantics, engine=args.engine
    )
    answers = []
    with use_tracer(tracer):
        for _ in range(max(1, args.repeat)):
            session.has_model()
            for query in args.query or ():
                answers.append(session.ask(query))
            for literal in args.literal or ():
                answers.append(session.ask_literal(literal))
    if args.jsonl is not None:
        payload = tracer.export_jsonl()
        if args.jsonl == "-":
            sys.stdout.write(payload)
        else:
            with open(args.jsonl, "w") as handle:
                handle.write(payload)
            print(
                f"wrote {len(tracer.finished_roots())} trace root(s) "
                f"to {args.jsonl}"
            )
    else:
        print(tracer.render_tree())
    for answer in answers:
        print(answer.render())
        if answer.complexity is not None:
            print(f"  certificate: {answer.complexity.render()}")
    print(
        f"certificates: {session.certificates_checked} checked, "
        f"{session.certificate_violations} violated"
    )
    if args.metrics:
        from .obs.metrics import METRICS

        print(METRICS.expose(), end="")
    return 0


def _cmd_tables(args) -> int:
    from .complexity.classes import Regime
    from .tables import render_table

    regimes = {
        "1": [Regime.POSITIVE],
        "2": [Regime.WITH_ICS],
        "both": [Regime.POSITIVE, Regime.WITH_ICS],
    }[args.regime]
    for regime in regimes:
        print(
            render_table(
                regime,
                with_evidence=args.evidence,
                instances=args.instances,
                atoms=args.atoms,
            )
        )
        print()
    return 0


def _cmd_analyze(args) -> int:
    import json as _json

    from .analysis import FragmentPlanner, fragment_profile
    from .complexity import ROW_ORDER
    from .semantics import get_semantics

    db = _read_database(args.file)
    profile = fragment_profile(db)
    planner = FragmentPlanner()
    plans = {
        name: planner.plan(profile, get_semantics(name), "infers")
        for name in ROW_ORDER
    }
    if args.json:
        print(
            _json.dumps(
                {
                    "profile": profile.as_dict(),
                    "plans": {
                        name: plan.as_dict()
                        for name, plan in plans.items()
                    },
                },
                indent=2,
                ensure_ascii=False,
            )
        )
        return 0
    print(profile.render())
    print()
    print("planner dispatch (formula inference):")
    for name, plan in plans.items():
        print(f"  {name:6s} -> {plan.procedure:16s} [{plan.claim}]")
    return 0


def _cmd_plan(args) -> int:
    import json as _json

    from .analysis import fragment_profile
    from .complexity import ROW_ORDER
    from .engine.cache import query_plan_for
    from .semantics import get_semantics, resolve_name

    db = _read_database(args.file)
    profile = fragment_profile(db)
    names = (
        list(ROW_ORDER)
        if args.all_semantics
        else [resolve_name(args.semantics)]
    )
    plans = {
        name: query_plan_for(db, get_semantics(name), args.method)
        for name in names
    }
    if args.json:
        print(
            _json.dumps(
                {
                    "profile": profile.as_dict(),
                    "method": args.method,
                    "plans": {
                        name: plan.as_dict()
                        for name, plan in plans.items()
                    },
                },
                indent=2,
                ensure_ascii=False,
            )
        )
        return 0
    print(f"fragment: {profile.fragment}  ({profile.atoms} atoms, "
          f"{profile.clauses} clauses)")
    for name, plan in plans.items():
        print()
        print(f"{name}/{args.method}: chosen {plan.procedure} "
              f"[{plan.claim}]")
        print(f"  {plan.reason}")
        header = (
            f"  {'procedure':18s} {'np':>8s} {'sigma2':>8s} "
            f"{'nodes':>10s} {'scalar':>10s}"
        )
        print(header)
        for candidate in plan.candidates:
            marker = "*" if candidate.procedure == plan.procedure else " "
            print(
                f" {marker}{candidate.procedure:18s} "
                f"{candidate.np_calls:8.1f} "
                f"{candidate.sigma2_dispatches:8.1f} "
                f"{candidate.nodes:10.1f} "
                f"{candidate.scalar:10.2f}  {candidate.reason}"
            )
    return 0


def _cmd_lint(args) -> int:
    from .analysis.lint import main as lint_main

    argv = [str(path) for path in args.paths]
    argv += ["--format", args.format]
    if args.rules:
        argv.append("--rules")
    if args.baseline is not None:
        argv += ["--baseline", str(args.baseline)]
    if args.diff:
        argv.append("--diff")
    status = lint_main(argv)
    if args.deep and not args.rules:
        # Fold the whole-program certifier in: worst status wins.  The
        # deep pass is always whole-program (paths are not forwarded —
        # the call graph needs the entire package either way).
        from .analysis.static.checker import main as check_main

        check_argv = ["--format", args.format]
        if args.baseline is not None:
            check_argv += ["--baseline", str(args.baseline)]
        if args.diff:
            check_argv.append("--diff")
        status = max(status, check_main(check_argv))
    return status


def _cmd_check(args) -> int:
    from .analysis.static.checker import main as check_main

    argv = [str(path) for path in args.paths]
    argv += ["--format", args.format]
    if args.rules:
        argv.append("--rules")
    if args.warnings:
        argv.append("--warnings")
    if args.baseline is not None:
        argv += ["--baseline", str(args.baseline)]
    if args.diff:
        argv.append("--diff")
    return check_main(argv)


def _cmd_serve(args) -> int:
    from .runtime import Budget
    from .serve import QueryService, run_server
    from .serve.server import DEFAULT_TENANT

    default_budget = None
    if (
        args.default_timeout_ms is not None
        or args.default_max_sat_calls is not None
    ):
        default_budget = Budget(
            wall_ms=args.default_timeout_ms,
            max_sat_calls=args.default_max_sat_calls,
        )
    service = QueryService(
        engine=args.engine,
        max_queue=args.max_queue,
        workers=args.workers,
        default_budget=default_budget,
    )
    for path in args.preload or ():
        db = _read_database(path)
        info = service.register_database(DEFAULT_TENANT, str(db))
        print(f"preloaded {path} as db {info['db']}")
    return run_server(
        service=service,
        host=args.host,
        port=args.port,
        tracing=not args.no_trace,
    )


def _cmd_hunt(args) -> int:
    import json as _json

    from .adversary import DEFAULT_CORPUS_PATH, HuntConfig, hunt

    corpus_path = args.corpus or DEFAULT_CORPUS_PATH
    config = HuntConfig(
        seed=args.seed,
        max_cases=args.max_cases,
        budget_ms=args.budget_ms,
        base_atoms=args.atoms,
        base_clauses=args.clauses,
        mutators=tuple(args.mutators.split(",")) if args.mutators else None,
        reports_dir=args.reports_dir,
        corpus_path=corpus_path if args.fold else None,
    )
    report = hunt(config)
    if args.format == "json":
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for every repro-ddb subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-ddb",
        description=(
            "Disjunctive database semantics — reproduction of Eiter & "
            "Gottlob, PODS 1993"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_semantics_options(sub):
        sub.add_argument(
            "--semantics",
            "-s",
            default="egcwa",
            help="semantics name or alias (e.g. gcwa, wgcwa, circ, stable)",
        )
        sub.add_argument(
            "--engine",
            choices=ENGINES,
            default="oracle",
            help=(
                "decision engine ('fresh' disables solver-pool reuse; "
                "'cached' memoizes oracle results; "
                "'resilient' adds retry/fallback degradation; "
                "'planned' dispatches Horn/head-cycle-free fragments "
                "to cheaper sound procedures; 'kernel' runs the brute "
                "enumerator on the opposite bitset/pure representation)"
            ),
        )
        sub.add_argument(
            "--p", help="comma-separated minimized atoms (CCWA/ECWA/ICWA)"
        )
        sub.add_argument(
            "--z", help="comma-separated floating atoms (CCWA/ECWA/ICWA)"
        )

    models_cmd = commands.add_parser(
        "models", help="print the models a semantics selects"
    )
    models_cmd.add_argument("file", help="database file ('-' for stdin)")
    add_semantics_options(models_cmd)
    models_cmd.set_defaults(handler=_cmd_models)

    infer_cmd = commands.add_parser("infer", help="decide inference")
    infer_cmd.add_argument("file", help="database file ('-' for stdin)")
    infer_cmd.add_argument(
        "--query", "-q", required=True, help="formula to infer"
    )
    add_semantics_options(infer_cmd)
    infer_cmd.set_defaults(handler=_cmd_infer)

    solve_cmd = commands.add_parser(
        "solve", help="classical satisfiability of the database"
    )
    solve_cmd.add_argument("file", help="database file ('-' for stdin)")
    solve_cmd.set_defaults(handler=_cmd_solve)

    stratify_cmd = commands.add_parser(
        "stratify", help="compute the canonical stratification"
    )
    stratify_cmd.add_argument("file", help="database file ('-' for stdin)")
    stratify_cmd.set_defaults(handler=_cmd_stratify)

    repl_cmd = commands.add_parser(
        "repl", help="interactive query session"
    )
    repl_cmd.add_argument(
        "file", nargs="?", help="database file to preload"
    )
    repl_cmd.add_argument("--semantics", "-s", default="egcwa")
    repl_cmd.set_defaults(handler=_cmd_repl)

    closure_cmd = commands.add_parser(
        "closure", help="show the GCWA / WGCWA / EGCWA closure objects"
    )
    closure_cmd.add_argument("file", help="database file ('-' for stdin)")
    closure_cmd.add_argument(
        "--max-size", type=int, default=2,
        help="maximum EGCWA closure-clause body size",
    )
    closure_cmd.set_defaults(handler=_cmd_closure)

    ground_cmd = commands.add_parser(
        "ground", help="ground a non-ground (variable) program"
    )
    ground_cmd.add_argument("file", help="program file ('-' for stdin)")
    ground_cmd.add_argument(
        "--constants",
        nargs="*",
        help="extra constants for the active domain",
    )
    ground_cmd.set_defaults(handler=_cmd_ground)

    tables_cmd = commands.add_parser(
        "tables", help="regenerate the paper's Tables 1 and 2"
    )
    tables_cmd.add_argument(
        "--regime", choices=("1", "2", "both"), default="both"
    )
    tables_cmd.add_argument(
        "--evidence",
        action="store_true",
        help="re-measure the evidence for every cell (slow)",
    )
    tables_cmd.add_argument("--instances", type=int, default=3)
    tables_cmd.add_argument("--atoms", type=int, default=4)
    tables_cmd.set_defaults(handler=_cmd_tables)

    cache_cmd = commands.add_parser(
        "cache",
        help="exercise the memoizing engine and print cache statistics",
    )
    cache_cmd.add_argument(
        "file", nargs="?",
        help="database to query repeatedly through the cached engine",
    )
    cache_cmd.add_argument(
        "--semantics", "-s", default="egcwa",
        help="comma-separated semantics names to exercise",
    )
    cache_cmd.add_argument(
        "--query", "-q", help="formula to infer on each pass"
    )
    cache_cmd.add_argument(
        "--repeat", type=int, default=2,
        help="number of identical passes (default 2: cold + warm)",
    )
    cache_cmd.add_argument(
        "--limit", type=int, default=None,
        help="re-bound the LRU entry limit before running",
    )
    cache_cmd.add_argument(
        "--clear", action="store_true",
        help="clear the cache (and its counters) first",
    )
    cache_cmd.set_defaults(handler=_cmd_cache)

    query_cmd = commands.add_parser(
        "query",
        help=(
            "budgeted inference through the resilient engine "
            "(structured outcome instead of an unbounded run)"
        ),
    )
    query_cmd.add_argument("file", help="database file ('-' for stdin)")
    query_cmd.add_argument(
        "--query", "-q", required=True, help="formula to infer"
    )
    query_cmd.add_argument(
        "--semantics", "-s", default="egcwa",
        help="semantics name or alias",
    )
    query_cmd.add_argument(
        "--mode", choices=("cautious", "brave"), default="cautious"
    )
    query_cmd.add_argument(
        "--timeout-ms", type=float, default=None,
        help="wall-clock budget in milliseconds",
    )
    query_cmd.add_argument(
        "--max-sat-calls", type=int, default=None,
        help="NP-oracle (SAT solve) call budget",
    )
    query_cmd.add_argument(
        "--max-nodes", type=int, default=None,
        help="enumeration/search node budget",
    )
    query_cmd.add_argument(
        "--p", help="comma-separated minimized atoms (CCWA/ECWA/ICWA)"
    )
    query_cmd.add_argument(
        "--z", help="comma-separated floating atoms (CCWA/ECWA/ICWA)"
    )
    query_cmd.add_argument(
        "--stats", action="store_true",
        help="also print the process-wide runtime counters",
    )
    query_cmd.set_defaults(handler=_cmd_query, engine="resilient")

    faults_cmd = commands.add_parser(
        "faults",
        help=(
            "deterministic fault-injection demo through the resilient "
            "engine"
        ),
    )
    faults_cmd.add_argument(
        "file", nargs="?",
        help="database file (default: a built-in demo database)",
    )
    faults_cmd.add_argument(
        "--query", "-q", default="~a | ~b", help="formula to infer"
    )
    faults_cmd.add_argument(
        "--semantics", "-s", default="egcwa",
        help="semantics name or alias",
    )
    faults_cmd.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed (same seed, same degradation path)",
    )
    faults_cmd.add_argument(
        "--sat-fault-rate", type=float, default=0.5,
        help="probability a SAT call raises a transient fault",
    )
    faults_cmd.add_argument(
        "--latency-ms", type=float, default=0.0,
        help="injected latency per SAT call",
    )
    faults_cmd.add_argument(
        "--worker-crash-rate", type=float, default=0.0,
        help="probability a parallel dispatch crashes",
    )
    faults_cmd.add_argument(
        "--max-sat-faults", type=int, default=None,
        help="cap on injected SAT faults ('fail N times, then succeed')",
    )
    faults_cmd.add_argument(
        "--retries", type=int, default=2,
        help="retry attempts before degrading to the fallback engine",
    )
    faults_cmd.add_argument(
        "--backoff-ms", type=float, default=1.0,
        help="first-retry backoff delay",
    )
    faults_cmd.add_argument(
        "--timeout-ms", type=float, default=None,
        help="wall-clock budget in milliseconds",
    )
    faults_cmd.add_argument(
        "--p", help="comma-separated minimized atoms (CCWA/ECWA/ICWA)"
    )
    faults_cmd.add_argument(
        "--z", help="comma-separated floating atoms (CCWA/ECWA/ICWA)"
    )
    faults_cmd.set_defaults(handler=_cmd_faults, engine="resilient")

    trace_cmd = commands.add_parser(
        "trace",
        help=(
            "run queries under a recording tracer and print the span "
            "tree with complexity certificates"
        ),
    )
    trace_cmd.add_argument("file", help="database file ('-' for stdin)")
    trace_cmd.add_argument(
        "--query", "-q", action="append",
        help="formula to infer (repeatable)",
    )
    trace_cmd.add_argument(
        "--literal", "-l", action="append",
        help="literal to infer (repeatable, e.g. 'a' or '~a')",
    )
    add_semantics_options(trace_cmd)
    trace_cmd.add_argument(
        "--repeat", type=int, default=1,
        help="identical passes (2+ shows cache-warm spans)",
    )
    trace_cmd.add_argument(
        "--jsonl", nargs="?", const="-", default=None, metavar="PATH",
        help="emit spans as JSON lines to PATH (default: stdout) "
             "instead of the human-readable tree",
    )
    trace_cmd.add_argument(
        "--metrics", action="store_true",
        help="also print the Prometheus-style metrics exposition",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    analyze_cmd = commands.add_parser(
        "analyze",
        help=(
            "fragment-analyze a database and show how the planner "
            "would dispatch each semantics"
        ),
    )
    analyze_cmd.add_argument("file", help="database file ('-' for stdin)")
    analyze_cmd.add_argument(
        "--json", action="store_true",
        help="machine-readable report (the CI artifact format)",
    )
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    plan_cmd = commands.add_parser(
        "plan",
        help=(
            "show the cost-based planner's per-candidate estimate table "
            "and chosen procedure for a database"
        ),
    )
    plan_cmd.add_argument("file", help="database file ('-' for stdin)")
    plan_cmd.add_argument(
        "--semantics", "-s", default="egcwa",
        help="semantics name or alias (ignored with --all-semantics)",
    )
    plan_cmd.add_argument(
        "--all-semantics", action="store_true",
        help="plan every table-row semantics",
    )
    plan_cmd.add_argument(
        "--method",
        choices=(
            "infers", "infers_literal", "infers_brave", "has_model",
            "model_set",
        ),
        default="infers",
        help="entry point to plan for",
    )
    plan_cmd.add_argument(
        "--json", action="store_true",
        help="machine-readable report (includes the full cost table)",
    )
    plan_cmd.set_defaults(handler=_cmd_plan)

    lint_cmd = commands.add_parser(
        "lint",
        help=(
            "lint the source tree for complexity-accounting "
            "conventions (rules RPR001-RPR006)"
        ),
    )
    lint_cmd.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the repro package)",
    )
    lint_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    lint_cmd.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    lint_cmd.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program static certifier "
        "(repro-ddb check) and combine exit status",
    )
    lint_cmd.add_argument(
        "--baseline", metavar="JSON",
        help="gate on findings NOT in this baseline",
    )
    lint_cmd.add_argument(
        "--diff", action="store_true",
        help="only report findings in files changed vs. git HEAD",
    )
    lint_cmd.set_defaults(handler=_cmd_lint)

    check_cmd = commands.add_parser(
        "check",
        help=(
            "whole-program static certification: call-graph complexity "
            "envelopes (RPR101-RPR103) and lock discipline "
            "(RPR201-RPR204)"
        ),
    )
    check_cmd.add_argument(
        "paths", nargs="*",
        help="extra files or directories analyzed alongside the repro "
        "package (e.g. tests/ for the nightly sweep)",
    )
    check_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    check_cmd.add_argument(
        "--rules", action="store_true",
        help="list the rule catalog and exit",
    )
    check_cmd.add_argument(
        "--warnings", action="store_true",
        help="also print RPR100 dynamic-dispatch warnings",
    )
    check_cmd.add_argument(
        "--baseline", metavar="JSON",
        help="gate on findings NOT in this baseline",
    )
    check_cmd.add_argument(
        "--diff", action="store_true",
        help="only report findings in files changed vs. git HEAD",
    )
    check_cmd.set_defaults(handler=_cmd_check)

    serve_cmd = commands.add_parser(
        "serve",
        help=(
            "run the multi-tenant async query daemon (HTTP JSON API, "
            "/metrics exposition, /trace drain)"
        ),
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8035,
        help="bind port (0 picks an ephemeral port)",
    )
    serve_cmd.add_argument(
        "--engine",
        choices=("cached", "planned", "resilient", "oracle"),
        default="cached",
        help="session engine backing every tenant session",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4,
        help="evaluation threads (= maximum concurrent batches)",
    )
    serve_cmd.add_argument(
        "--max-queue", type=int, default=64,
        help="per-tenant admission bound (queued + running queries)",
    )
    serve_cmd.add_argument(
        "--default-timeout-ms", type=float, default=None,
        help="wall-clock budget applied when a request sets no QoS header",
    )
    serve_cmd.add_argument(
        "--default-max-sat-calls", type=int, default=None,
        help="SAT-call budget applied when a request sets no QoS header",
    )
    serve_cmd.add_argument(
        "--preload", action="append", metavar="FILE",
        help="database file to register for the default tenant (repeatable)",
    )
    serve_cmd.add_argument(
        "--no-trace", action="store_true",
        help="do not install the recording tracer behind /trace",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    hunt_cmd = commands.add_parser(
        "hunt",
        help=(
            "adversarial divergence hunt: mutate random databases and "
            "cross-check the six-engine differential stack"
        ),
    )
    hunt_cmd.add_argument(
        "--seed", type=int, default=0,
        help="master seed (the hunt is a pure function of it)",
    )
    hunt_cmd.add_argument(
        "--max-cases", type=int, default=200,
        help="number of mutated databases to try",
    )
    hunt_cmd.add_argument(
        "--budget-ms", type=float, default=60000.0,
        help="wall-clock ceiling for the whole hunt (ms)",
    )
    hunt_cmd.add_argument(
        "--atoms", type=int, default=4, help="base-database vocabulary size"
    )
    hunt_cmd.add_argument(
        "--clauses", type=int, default=5, help="base-database clause count"
    )
    hunt_cmd.add_argument(
        "--mutators",
        help="comma-separated mutator names (default: the full catalogue)",
    )
    hunt_cmd.add_argument(
        "--reports-dir", default="reports",
        help="directory for markdown diagnosis reports",
    )
    hunt_cmd.add_argument(
        "--corpus",
        default=None,
        help=(
            "corpus file to fold survivors into "
            "(default: tests/data/adversarial_corpus.json)"
        ),
    )
    hunt_cmd.add_argument(
        "--fold", action="store_true",
        help="fold minimized survivors into the regression corpus",
    )
    hunt_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    hunt_cmd.set_defaults(handler=_cmd_hunt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
