"""Complexity machinery: classes-as-data, instrumented oracles, the
paper's oracle-machine algorithms, and reduction validation."""

from .classes import (
    CC,
    ROW_LABELS,
    ROW_ORDER,
    TABLE1,
    TABLE2,
    Claim,
    Regime,
    Task,
    table,
)
from .hierarchy import (
    OracleSignature,
    is_subclass_of,
    log_bound,
    signature_consistent_with,
    strictness_caveat,
)
from .machines import ThetaResult, linear_inference, theta_inference
from .oracles import (
    OracleProfile,
    SatCallCount,
    Sigma2Oracle,
    count_sat_calls,
    profile,
)
from .verify import ReductionReport, check_reduction

__all__ = [
    "CC",
    "ROW_LABELS",
    "ROW_ORDER",
    "TABLE1",
    "TABLE2",
    "Claim",
    "Regime",
    "Task",
    "table",
    "OracleSignature",
    "is_subclass_of",
    "log_bound",
    "signature_consistent_with",
    "strictness_caveat",
    "ThetaResult",
    "linear_inference",
    "theta_inference",
    "OracleProfile",
    "SatCallCount",
    "Sigma2Oracle",
    "count_sat_calls",
    "profile",
    "ReductionReport",
    "check_reduction",
]
