"""Complexity classes and the paper's claimed classifications.

Tables 1 and 2 of the paper are encoded here as structured data: for each
(semantics, task, regime) cell the claimed complexity class and whether
the claim includes hardness.  The benchmark harness renders these next to
the measured evidence (oracle-call profiles and validated reductions).

The classes the paper uses (Johnson [13] notation; ``P^Σ2[O(log n)]``
means polynomial time with O(log n) calls to a Σ₂ᵖ oracle — the class now
commonly written Θ₃ᵖ):
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class CC(Enum):
    """The complexity classes appearing in the paper's tables."""

    CONSTANT = "O(1)"
    P = "P"
    NP = "NP"
    CONP = "coNP"
    SIGMA2P = "Sigma2p"
    PI2P = "Pi2p"
    THETA3P = "P^Sigma2p[O(log n)]"

    def __str__(self) -> str:
        return self.value


class Task(Enum):
    """The paper's three decision problems."""

    LITERAL = "inference of literal"
    FORMULA = "inference of formula"
    EXISTS_MODEL = "exists model"

    def __str__(self) -> str:
        return self.value


class Regime(Enum):
    """The two syntactic regimes of Tables 1 and 2."""

    POSITIVE = "positive (no ICs, no negation)"  # Table 1
    WITH_ICS = "with integrity clauses"  # Table 2

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Claim:
    """One table cell.

    Attributes:
        upper: the claimed membership class.
        complete: ``True`` when the paper claims completeness for
            ``upper``; ``False`` for membership-only cells.
        hard_for: a lower-bound class when it differs from ``upper``
            (e.g. "Π₂ᵖ-hard, in P^{Σ₂ᵖ}[O(log n)]").
        note: provenance marks, e.g. Chan's results (the paper's ``*``).
    """

    upper: CC
    complete: bool = True
    hard_for: Optional[CC] = None
    note: str = ""

    def render(self) -> str:
        """The cell in the paper's wording."""
        if self.upper is CC.CONSTANT:
            return "O(1)"
        if self.complete:
            text = f"{self.upper}-complete"
        elif self.hard_for is not None:
            text = f"{self.hard_for}-hard, in {self.upper}"
        else:
            text = f"in {self.upper}"
        if self.note:
            text += f" {self.note}"
        return text


#: Row order of the paper's tables.
ROW_ORDER: List[str] = [
    "gcwa",
    "ddr",
    "pws",
    "egcwa",
    "ccwa",
    "ecwa",
    "icwa",
    "perf",
    "dsm",
    "pdsm",
]

#: Display names used by the paper.
ROW_LABELS: Dict[str, str] = {
    "gcwa": "GCWA",
    "ddr": "DDR (=WGCWA)",
    "pws": "PWS (=PMS)",
    "egcwa": "EGCWA",
    "ccwa": "CCWA",
    "ecwa": "ECWA (=CIRC)",
    "icwa": "ICWA",
    "perf": "PERF",
    "dsm": "DSM",
    "pdsm": "PDSM",
}

_THETA = Claim(CC.THETA3P, complete=False, hard_for=CC.PI2P)
_PI2C = Claim(CC.PI2P)
_CONST = Claim(CC.CONSTANT)

#: Table 1: positive propositional DDBs (no integrity clauses, no negation).
TABLE1: Dict[Tuple[str, Task], Claim] = {
    ("gcwa", Task.LITERAL): _PI2C,
    ("gcwa", Task.FORMULA): _THETA,
    ("gcwa", Task.EXISTS_MODEL): _CONST,
    ("ddr", Task.LITERAL): Claim(CC.P, complete=False, note="* [Chan]"),
    ("ddr", Task.FORMULA): Claim(CC.CONP),
    ("ddr", Task.EXISTS_MODEL): _CONST,
    ("pws", Task.LITERAL): Claim(CC.P, complete=False, note="* [Chan]"),
    ("pws", Task.FORMULA): Claim(CC.CONP),
    ("pws", Task.EXISTS_MODEL): _CONST,
    ("egcwa", Task.LITERAL): _PI2C,
    ("egcwa", Task.FORMULA): _PI2C,
    ("egcwa", Task.EXISTS_MODEL): _CONST,
    ("ccwa", Task.LITERAL): _THETA,
    ("ccwa", Task.FORMULA): _THETA,
    ("ccwa", Task.EXISTS_MODEL): _CONST,
    ("ecwa", Task.LITERAL): _PI2C,
    ("ecwa", Task.FORMULA): _PI2C,
    ("ecwa", Task.EXISTS_MODEL): _CONST,
    ("icwa", Task.LITERAL): _PI2C,
    ("icwa", Task.FORMULA): _PI2C,
    ("icwa", Task.EXISTS_MODEL): _CONST,
    ("perf", Task.LITERAL): _PI2C,
    ("perf", Task.FORMULA): _PI2C,
    ("perf", Task.EXISTS_MODEL): _CONST,
    ("dsm", Task.LITERAL): _PI2C,
    ("dsm", Task.FORMULA): _PI2C,
    ("dsm", Task.EXISTS_MODEL): _CONST,
    ("pdsm", Task.LITERAL): _PI2C,
    ("pdsm", Task.FORMULA): _PI2C,
    ("pdsm", Task.EXISTS_MODEL): _CONST,
}

#: Table 2: propositional DDBs with integrity clauses.  ICWA and PERF rows
#: concern stratified / normal databases (which admit negation); the DSM
#: and PDSM existence bounds hold even without integrity clauses [8].
TABLE2: Dict[Tuple[str, Task], Claim] = {
    ("gcwa", Task.LITERAL): _PI2C,
    ("gcwa", Task.FORMULA): _THETA,
    ("gcwa", Task.EXISTS_MODEL): Claim(CC.NP),
    ("ddr", Task.LITERAL): Claim(CC.CONP, note="* [Chan]"),
    ("ddr", Task.FORMULA): Claim(CC.CONP),
    ("ddr", Task.EXISTS_MODEL): Claim(CC.NP),
    ("pws", Task.LITERAL): Claim(CC.CONP, note="* [Chan]"),
    ("pws", Task.FORMULA): Claim(CC.CONP),
    ("pws", Task.EXISTS_MODEL): Claim(CC.NP),
    ("egcwa", Task.LITERAL): _PI2C,
    ("egcwa", Task.FORMULA): _PI2C,
    ("egcwa", Task.EXISTS_MODEL): Claim(CC.NP),
    ("ccwa", Task.LITERAL): _THETA,
    ("ccwa", Task.FORMULA): _THETA,
    ("ccwa", Task.EXISTS_MODEL): Claim(CC.NP),
    ("ecwa", Task.LITERAL): _PI2C,
    ("ecwa", Task.FORMULA): _PI2C,
    ("ecwa", Task.EXISTS_MODEL): Claim(CC.NP),
    ("icwa", Task.LITERAL): _PI2C,
    ("icwa", Task.FORMULA): _PI2C,
    ("icwa", Task.EXISTS_MODEL): _CONST,
    ("perf", Task.LITERAL): _PI2C,
    ("perf", Task.FORMULA): _PI2C,
    ("perf", Task.EXISTS_MODEL): Claim(CC.SIGMA2P),
    ("dsm", Task.LITERAL): _PI2C,
    ("dsm", Task.FORMULA): _PI2C,
    ("dsm", Task.EXISTS_MODEL): Claim(CC.SIGMA2P),
    ("pdsm", Task.LITERAL): _PI2C,
    ("pdsm", Task.FORMULA): _PI2C,
    ("pdsm", Task.EXISTS_MODEL): Claim(CC.SIGMA2P),
}


def table(regime: Regime) -> Dict[Tuple[str, Task], Claim]:
    """The claims table for a regime."""
    return TABLE1 if regime is Regime.POSITIVE else TABLE2
