"""The polynomial hierarchy as data, and profile-vs-claim consistency.

Johnson's catalogue [13] is the paper's reference for complexity
notation; this module encodes the fragment the tables use — the classes,
their inclusion structure, and the oracle-usage *signatures* each class
predicts for our instrumented decision procedures — so that "the
measured profile is consistent with the claimed class" is a checkable
statement rather than prose.

The signature view (for a procedure deciding instances of size ``n``):

========================  ==========================================
class                      admissible oracle profile
========================  ==========================================
O(1), P                    0 NP-oracle calls
NP, coNP                   O(1) NP-oracle calls (here: ≤ 2)
Δ₂ᵖ = P^NP                 polynomially many NP calls
Θ₂ᵖ-style (P^NP[O(log)])   ≤ ⌈log₂(n+1)⌉ + 1 NP calls
Σ₂ᵖ, Π₂ᵖ                   unbounded NP calls; ≥ 1 Σ₂ᵖ query suffices
P^{Σ₂ᵖ}[O(log n)]          ≤ ⌈log₂(n+1)⌉ + 1 Σ₂ᵖ calls
========================  ==========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from .classes import CC

#: Direct inclusions (transitively closed by :func:`is_subclass_of`).
_DIRECT_INCLUSIONS: Dict[CC, FrozenSet[CC]] = {
    CC.CONSTANT: frozenset({CC.P}),
    CC.P: frozenset({CC.NP, CC.CONP}),
    CC.NP: frozenset({CC.SIGMA2P}),
    CC.CONP: frozenset({CC.PI2P}),
    # NP ∪ coNP ⊆ Δ2p ⊆ Σ2p ∩ Π2p; we route through the classes we use:
    CC.SIGMA2P: frozenset({CC.THETA3P}),
    CC.PI2P: frozenset({CC.THETA3P}),
    CC.THETA3P: frozenset(),
}


def is_subclass_of(lower: CC, upper: CC) -> bool:
    """Whether ``lower ⊆ upper`` in the (believed-strict) hierarchy."""
    if lower is upper:
        return True
    seen = set()
    frontier = [lower]
    while frontier:
        current = frontier.pop()
        for parent in _DIRECT_INCLUSIONS.get(current, ()):
            if parent is upper:
                return True
            if parent not in seen:
                seen.add(parent)
                frontier.append(parent)
    return False


@dataclass(frozen=True)
class OracleSignature:
    """Measured oracle usage of one decision-procedure run.

    Attributes:
        size: the instance-size parameter ``n`` (here: ``|V|`` or ``|P|``).
        sat_calls: NP-oracle calls made.
        sigma2_calls: Σ₂ᵖ-oracle calls made (``None`` = procedure does
            not use a Σ₂ᵖ oracle).
    """

    size: int
    sat_calls: int
    sigma2_calls: Optional[int] = None


def log_bound(size: int) -> int:
    """The ``⌈log₂(n+1)⌉ + 1`` call budget of the Θ-style machines."""
    return (math.ceil(math.log2(size + 1)) if size else 0) + 1


def signature_consistent_with(
    signature: OracleSignature, claimed: CC
) -> bool:
    """Whether a measured profile is admissible for the claimed class.

    This checks the *upper-bound shape* only — a tractable run is always
    consistent with a larger class (the hierarchy is upward closed for
    membership).
    """
    if claimed in (CC.CONSTANT, CC.P):
        return signature.sat_calls == 0 and not signature.sigma2_calls
    if claimed in (CC.NP, CC.CONP):
        return signature.sat_calls <= 2 and not signature.sigma2_calls
    if claimed in (CC.SIGMA2P, CC.PI2P):
        return True  # any NP/Σ₂ᵖ usage is admissible
    if claimed is CC.THETA3P:
        return (
            signature.sigma2_calls is None
            or signature.sigma2_calls <= log_bound(signature.size)
        )
    raise ValueError(f"unknown class {claimed!r}")


def strictness_caveat(lower: CC, upper: CC) -> str:
    """The standard hedge: strictness of PH inclusions is open."""
    if lower is upper:
        return "trivially equal"
    if is_subclass_of(lower, upper):
        return (
            f"{lower} ⊆ {upper}; strictness would separate levels of the "
            "polynomial hierarchy and is open"
        )
    return f"{lower} is not known to be contained in {upper}"
