"""Oracle-machine upper-bound algorithms.

The showpiece is :func:`theta_inference` — the paper's
``P^{Σ₂ᵖ}[O(log n)]`` algorithm for formula inference under GCWA and CCWA
(Tables 1 and 2; the method is credited to [7]).  Sketch, for CCWA with
partition ``(P; Q; Z)``:

1.  Let ``S* = {x ∈ P : x true in some (P;Z)-minimal model}`` (the
    complement of the atoms the closure negates).  The predicate
    ``Q(k) ≡ |S*| ≥ k`` is a Σ₂ᵖ query: guess ``k`` distinct atoms and a
    minimal-model witness for each; a single query suffices because ``k``
    disjoint renamed copies of DB have, as their ``(P;Z)``-minimal
    models, exactly the products of per-copy minimal models.
2.  Binary-search ``k* = |S*|`` with ``O(log |P|)`` queries (``Q`` is
    monotone).
3.  One final Σ₂ᵖ query asks for witnesses of ``k*`` distinct atoms
    ``S`` — necessarily ``S = S*`` — *plus* a model ``N`` of
    ``DB ∪ {¬x : x ∈ P∖S}`` with ``N |= ¬F``.  The formula is inferred
    iff that query fails.

Total: ``⌈log₂(|P|+1)⌉ + 1`` Σ₂ᵖ-oracle calls, each of polynomial size —
the executable content of the ``P^{Σ₂ᵖ}[O(log n)]`` membership claim.
GCWA is the special case ``Q = Z = ∅``.

:func:`linear_inference` is the naive ``|P|+1``-query variant, kept as an
ablation baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..logic.atoms import Literal
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Implies, Not, Var, conj, disj
from ..logic.transform import rename_atoms
from ..obs.accounting import (
    note_sigma2_dispatch as _note_sigma2_dispatch,
    sigma2_dispatch as _sigma2_dispatch,
)
from ..runtime.budget import check_deadline
from .oracles import Sigma2Oracle


def _copy_name(atom: str, index: int) -> str:
    return f"{atom}__c{index}"


def _sel_name(atom: str, index: int) -> str:
    return f"__sel_{index}__{atom}"


@dataclass
class ThetaResult:
    """Outcome of the Θ-style inference algorithm.

    Attributes:
        inferred: the verdict ``DB |=_CCWA F``.
        witness_count: ``k* = |S*|``.
        sigma2_calls: Σ₂ᵖ-oracle calls spent (the O(log n) bound).
        call_bound: the theoretical bound ``ceil(log2(|P|+1)) + 1``.
    """

    inferred: bool
    witness_count: int
    sigma2_calls: int
    call_bound: int


def _copied_database(
    db: DisjunctiveDatabase, count: int
) -> Tuple[DisjunctiveDatabase, List[dict]]:
    """``count`` disjoint renamed copies of ``db`` as one database,
    together with the per-copy renaming maps."""
    renamings = [
        {a: _copy_name(a, i) for a in db.vocabulary} for i in range(1, count + 1)
    ]
    union_clauses: List[Clause] = []
    union_vocab: set = set()
    for renaming in renamings:
        copy = rename_atoms(db, renaming)
        union_clauses.extend(copy.clauses)
        union_vocab.update(copy.vocabulary)
    return DisjunctiveDatabase(union_clauses, union_vocab), renamings


def _distinct_witness_condition(
    p_atoms: List[str], count: int
) -> Formula:
    """``count`` selector blocks choosing distinct atoms of ``P``, each
    forced true in its own copy."""
    parts: List[Formula] = []
    for i in range(1, count + 1):
        selectors = [Var(_sel_name(a, i)) for a in p_atoms]
        parts.append(disj(selectors))  # at least one choice per block
        for a in p_atoms:
            parts.append(
                Implies(Var(_sel_name(a, i)), Var(_copy_name(a, i)))
            )
    # All-different across blocks.
    for a in p_atoms:
        for i in range(1, count + 1):
            for j in range(i + 1, count + 1):
                parts.append(
                    Not(Var(_sel_name(a, i)) & Var(_sel_name(a, j)))
                )
    return conj(parts)


def _block_cone(
    searcher,
    renaming: dict,
    witness: FrozenSet[str],
    p: FrozenSet[str],
    q: FrozenSet[str],
    fresh: List[int],
) -> None:
    """Exclude, in one copy's coordinates, every model that the witness
    proves non-minimal: same ``Q`` part, ``P`` part a *strict* superset of
    the witness's.  (The witness itself stays admissible.)

    Encoded with one auxiliary "equals the witness exactly" atom ``e``:
    ``disagree-on-Q ∨ drop-some-witness-P-atom ∨ e`` plus ``e →`` the
    exact witness ``P`` pattern.
    """
    from ..logic.atoms import Literal

    fresh[0] += 1
    equals = Literal.pos(f"__cone{fresh[0]}")
    clause = [equals]
    for atom in sorted(q):
        copy_atom = renaming[atom]
        clause.append(
            Literal.neg(copy_atom)
            if atom in witness
            else Literal.pos(copy_atom)
        )
    for atom in sorted(p & witness):
        clause.append(Literal.neg(renaming[atom]))
    searcher.add_clause(clause)
    for atom in sorted(p):
        copy_atom = renaming[atom]
        if atom in witness:
            searcher.add_clause([-equals, Literal.pos(copy_atom)])
        else:
            searcher.add_clause([-equals, Literal.neg(copy_atom)])


def _solve_union_query(
    oracle: Sigma2Oracle,
    db: DisjunctiveDatabase,
    p: FrozenSet[str],
    z: FrozenSet[str],
    k: int,
    extra_condition: Optional[Formula],
) -> bool:
    """One Σ₂ᵖ-oracle query: ∃ per-copy ``(P;Z)``-minimal models of ``k``
    disjoint renamed copies of ``db``, whose selector blocks choose ``k``
    distinct witnesses, optionally satisfying ``extra_condition``.

    Realized as CEGAR over the NP oracle: candidates come from a SAT
    solver over the copies + condition; each copy is checked for
    ``(P;Z)``-minimality (an NP call); failures refine the abstraction by
    blocking the cone above the discovered smaller model.
    """
    from ..sat.incremental import pooled_scope
    from ..sat.minimal import PZMinimalModelSolver

    oracle.queries += 1
    from .oracles import count_sat_calls

    # One Σ₂ᵖ dispatch: the inner CEGAR loop only consults the NP oracle
    # (``witness_below`` is a single SAT call), so the dispatch depth
    # stays at one no matter how many refinement rounds run.  The union
    # database is freshly renamed per query, so the scope is a throwaway
    # (``reuse=False``): never pooled, but still budget-aware.
    with _sigma2_dispatch(), count_sat_calls() as counter:
        union, renamings = _copied_database(db, k)
        with pooled_scope(union, reuse=False) as searcher:
            searcher.add_formula(
                _distinct_witness_condition(sorted(p), k)
            )
            if extra_condition is not None:
                searcher.add_formula(extra_condition)
            q = frozenset(db.vocabulary) - p - z
            checker = PZMinimalModelSolver(db, p, z)
            fresh = [0]
            result = False
            while True:
                # Each CEGAR refinement round re-checks the deadline: a
                # round can add many cones before the next SAT call
                # trips the per-call budget hooks.
                check_deadline()
                if not searcher.solve():
                    break
                model = searcher.model(restrict_to=union.vocabulary)
                refined = False
                for renaming in renamings:
                    part = frozenset(
                        atom for atom, copy_atom in renaming.items()
                        if copy_atom in model
                    )
                    witness = checker.witness_below(part)
                    if witness is not None:
                        _block_cone(
                            searcher, renaming, frozenset(witness),
                            p, q, fresh,
                        )
                        refined = True
                        break
                if not refined:
                    result = True
                    break
    oracle.inner_sat_calls += counter.calls
    return result


def _query_at_least(
    oracle: Sigma2Oracle,
    db: DisjunctiveDatabase,
    p: FrozenSet[str],
    z: FrozenSet[str],
    k: int,
) -> bool:
    """The Σ₂ᵖ query ``Q(k)``: at least ``k`` atoms of ``P`` are true in
    some ``(P;Z)``-minimal model each (one oracle call)."""
    if k == 0:
        return True
    return _solve_union_query(oracle, db, p, z, k, None)


def _final_query(
    oracle: Sigma2Oracle,
    db: DisjunctiveDatabase,
    formula: Formula,
    p: FrozenSet[str],
    z: FrozenSet[str],
    k_star: int,
) -> bool:
    """The last Σ₂ᵖ query: witnesses for ``S*`` plus a countermodel of the
    augmented theory (copy 0 of the database, as a side condition)."""
    copy0_map = {a: _copy_name(a, 0) for a in db.vocabulary}
    copy0_db = rename_atoms(db, copy0_map)
    copy0_formula = copy0_db.to_formula()
    renamed_negation = Not(
        _rename_formula(formula, copy0_map)
    )
    closure_parts: List[Formula] = []
    for a in sorted(p):
        in_s = disj(
            [Var(_sel_name(a, i)) for i in range(1, k_star + 1)]
        )
        closure_parts.append(Implies(Var(_copy_name(a, 0)), in_s))
    side = conj([copy0_formula, renamed_negation] + closure_parts)

    if k_star == 0:
        return _degenerate_final_query(oracle, side)

    return _solve_union_query(oracle, db, p, z, k_star, side)


def _degenerate_final_query(
    oracle: Sigma2Oracle, side: Formula
) -> bool:
    """The ``k* = 0`` corner of :func:`_final_query`: no witness copies,
    so the query degenerates to plain satisfiability of the side
    condition (still one oracle call, trivially in Σ₂ᵖ).  Kept as its
    own realization site so each function performs exactly one dispatch
    — the static certifier checks nesting per definition (RPR103)."""
    from ..sat.solver import formula_is_satisfiable
    from .oracles import count_sat_calls

    oracle.queries += 1
    _note_sigma2_dispatch()
    with count_sat_calls() as counter:
        answer = formula_is_satisfiable(side)
    oracle.inner_sat_calls += counter.calls
    return answer


def _rename_formula(formula: Formula, mapping: dict) -> Formula:
    from ..logic.formula import And, Bottom, Iff, Implies as Imp, Or, Top

    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Var):
        return Var(mapping.get(formula.name, formula.name))
    if isinstance(formula, Not):
        return Not(_rename_formula(formula.operand, mapping))
    if isinstance(formula, And):
        return conj([_rename_formula(f, mapping) for f in formula.operands])
    if isinstance(formula, Or):
        return disj([_rename_formula(f, mapping) for f in formula.operands])
    if isinstance(formula, Imp):
        return Imp(
            _rename_formula(formula.antecedent, mapping),
            _rename_formula(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(
            _rename_formula(formula.left, mapping),
            _rename_formula(formula.right, mapping),
        )
    raise TypeError(f"unknown formula node: {formula!r}")


def theta_inference(
    db: DisjunctiveDatabase,
    formula: Formula,
    p: Optional[Iterable[str]] = None,
    z: Iterable[str] = (),
    oracle: Optional[Sigma2Oracle] = None,
) -> ThetaResult:
    """Formula inference under CCWA (GCWA when ``p`` is the whole
    vocabulary, the default) with ``O(log |P|)`` Σ₂ᵖ-oracle calls.

    Returns a :class:`ThetaResult` whose ``sigma2_calls`` is asserted
    against the logarithmic bound in the tests and benchmarks.
    """
    from ..semantics.base import ground_query

    oracle = oracle or Sigma2Oracle()
    formula = ground_query(db, formula)
    z = frozenset(z)
    p_set = frozenset(db.vocabulary) - z if p is None else frozenset(p)
    q = frozenset(db.vocabulary) - p_set - z
    db.check_partition(p_set, q, z)
    start_queries = oracle.queries

    # Binary search for k* = |S*| (Q is monotone, Q(0) true for free).
    low, high = 0, len(p_set)
    while low < high:
        check_deadline()
        mid = (low + high + 1) // 2
        if _query_at_least(oracle, db, p_set, z, mid):
            low = mid
        else:
            high = mid - 1
    k_star = low

    counterexample = _final_query(oracle, db, formula, p_set, z, k_star)
    calls = oracle.queries - start_queries
    bound = math.ceil(math.log2(len(p_set) + 1)) + 1 if p_set else 1
    return ThetaResult(
        inferred=not counterexample,
        witness_count=k_star,
        sigma2_calls=calls,
        call_bound=bound,
    )


def linear_inference(
    db: DisjunctiveDatabase,
    formula: Formula,
    p: Optional[Iterable[str]] = None,
    z: Iterable[str] = (),
    oracle: Optional[Sigma2Oracle] = None,
) -> ThetaResult:
    """The naive ``|P| + 1``-oracle-call variant (ablation baseline):
    one Σ₂ᵖ query per atom to compute ``S*`` directly, then one classical
    check of the augmented theory."""
    from ..sat.solver import entails_classically
    from ..semantics.base import ground_query
    from ..semantics.gcwa import augmented_database

    oracle = oracle or Sigma2Oracle()
    formula = ground_query(db, formula)
    z = frozenset(z)
    p_set = frozenset(db.vocabulary) - z if p is None else frozenset(p)
    q = frozenset(db.vocabulary) - p_set - z
    db.check_partition(p_set, q, z)
    start_queries = oracle.queries

    surviving = set()
    for atom in sorted(p_set):
        if oracle.query(db, Var(atom), p=p_set, z=z):
            surviving.add(atom)
    augmented = augmented_database(db, frozenset(p_set) - surviving)
    inferred = entails_classically(augmented, formula)
    return ThetaResult(
        inferred=inferred,
        witness_count=len(surviving),
        sigma2_calls=oracle.queries - start_queries,
        call_bound=len(p_set) + 1,
    )
