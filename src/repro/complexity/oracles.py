"""Instrumented oracles.

The paper's upper-bound proofs are algorithms for oracle Turing machines:
"polynomial time with an NP oracle", "O(log n) calls to a Σ₂ᵖ oracle",
"a guess verified in polynomial time with an NP oracle".  This module
makes those resources *observable*:

* :func:`count_sat_calls` — context manager counting every NP-oracle
  (SAT ``solve``) call made anywhere in the package;
* :class:`Sigma2Oracle` — a Σ₂ᵖ oracle whose queries are "is there a
  (P;Z)-minimal model of this database satisfying this condition?" (the
  primitive all of the paper's Σ₂ᵖ upper bounds factor through), with a
  per-instance query counter;
* :class:`OracleProfile` — the record the benchmark harness prints.

The point is not performance: it is that the *shape* of the oracle usage
(constant, linear, logarithmic in ``|V|``) matches the claimed class.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional

from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation
from ..runtime.budget import check_deadline
from ..sat.minimal import MinimalModelSolver, PZMinimalModelSolver
from ..sat.solver import GLOBAL_SAT_CALLS


@dataclass
class SatCallCount:
    """Mutable result object of :func:`count_sat_calls`."""

    calls: int = 0


@contextmanager
def count_sat_calls() -> Iterator[SatCallCount]:
    """Count NP-oracle (SAT) calls made inside the ``with`` block::

        with count_sat_calls() as counter:
            semantics.infers(db, formula)
        print(counter.calls)
    """
    start = GLOBAL_SAT_CALLS.calls
    record = SatCallCount()
    try:
        yield record
    finally:
        record.calls = GLOBAL_SAT_CALLS.calls - start


class Sigma2Oracle:
    """A Σ₂ᵖ oracle for minimal-model queries, with query counting.

    Every query is of the form "∃ a ``(P;Z)``-minimal model ``M`` of
    ``db`` with ``M |= condition``?" — a guess (``M`` plus the condition's
    helper atoms) verifiable with one NP-oracle call, hence a Σ₂ᵖ
    predicate.  Each :meth:`query` increments :attr:`queries` by one,
    regardless of how many SAT calls the realization spends internally
    (an oracle answers in one step; the realization's internal NP calls
    are reported separately as ``inner_sat_calls``).
    """

    def __init__(self) -> None:
        self.queries = 0
        self.inner_sat_calls = 0

    def query(
        self,
        db: DisjunctiveDatabase,
        condition: Formula,
        p: Optional[Iterable[str]] = None,
        z: Iterable[str] = (),
    ) -> bool:
        """Answer "∃ M ∈ MM(db; P; Z): M |= condition".

        ``p`` defaults to the whole vocabulary (plain subset-minimality).
        """
        check_deadline()
        self.queries += 1
        with count_sat_calls() as counter:
            if p is None or frozenset(p) == frozenset(db.vocabulary):
                witness = MinimalModelSolver(db).find_minimal_satisfying(
                    condition
                )
            else:
                witness = PZMinimalModelSolver(
                    db, p, z
                ).find_minimal_satisfying(condition)
        self.inner_sat_calls += counter.calls
        return witness is not None

    def witness(
        self,
        db: DisjunctiveDatabase,
        condition: Formula,
        p: Optional[Iterable[str]] = None,
        z: Iterable[str] = (),
    ) -> Optional[Interpretation]:
        """Like :meth:`query` but returning the witnessing model."""
        check_deadline()
        self.queries += 1
        with count_sat_calls() as counter:
            if p is None or frozenset(p) == frozenset(db.vocabulary):
                witness = MinimalModelSolver(db).find_minimal_satisfying(
                    condition
                )
            else:
                witness = PZMinimalModelSolver(
                    db, p, z
                ).find_minimal_satisfying(condition)
        self.inner_sat_calls += counter.calls
        return witness

    def entails(
        self,
        db: DisjunctiveDatabase,
        formula: Formula,
        p: Optional[Iterable[str]] = None,
        z: Iterable[str] = (),
    ) -> bool:
        """The Π₂ᵖ complement: ``MM(db;P;Z) |= formula`` (one query)."""
        return not self.query(db, Not(formula), p=p, z=z)


@dataclass
class OracleProfile:
    """Measured oracle usage of one decision-procedure run."""

    answer: bool
    sat_calls: int = 0
    sigma2_calls: int = 0
    detail: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"answer={self.answer}"]
        if self.sigma2_calls:
            parts.append(f"Σ2-calls={self.sigma2_calls}")
        parts.append(f"SAT-calls={self.sat_calls}")
        parts += [f"{k}={v}" for k, v in self.detail.items()]
        return ", ".join(parts)


def profile(callable_, *args, **kwargs) -> OracleProfile:
    """Run ``callable_`` and record the NP-oracle calls it made."""
    with count_sat_calls() as counter:
        answer = callable_(*args, **kwargs)
    return OracleProfile(answer=bool(answer), sat_calls=counter.calls)
