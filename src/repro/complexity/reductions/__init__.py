"""The paper's hardness reductions as executable transformations."""

from .qbf_to_mm import (
    MinimalEntailmentInstance,
    dnf_terms,
    qbf_to_minimal_entailment,
)
from .qbf_to_stable import (
    ExistenceInstance,
    qbf_to_dsm_existence,
    qbf_to_pdsm_existence,
    qbf_to_perf_existence,
)
from .sat_to_model_existence import cnf_to_database, database_to_cnf_clauses
from .uminsat import (
    has_unique_minimal_model,
    to_normal_program,
    unsat_to_nlp_unique_minimal,
    unsat_to_uminsat,
)
from .unsat_to_closure import (
    FormulaInferenceInstance,
    LiteralInferenceInstance,
    unsat_to_ddr_formula,
    unsat_to_ddr_literal,
)

__all__ = [
    "MinimalEntailmentInstance",
    "dnf_terms",
    "qbf_to_minimal_entailment",
    "ExistenceInstance",
    "qbf_to_dsm_existence",
    "qbf_to_pdsm_existence",
    "qbf_to_perf_existence",
    "cnf_to_database",
    "database_to_cnf_clauses",
    "has_unique_minimal_model",
    "to_normal_program",
    "unsat_to_nlp_unique_minimal",
    "unsat_to_uminsat",
    "FormulaInferenceInstance",
    "LiteralInferenceInstance",
    "unsat_to_ddr_formula",
    "unsat_to_ddr_literal",
]
