"""Σ₂ᵖ/Π₂ᵖ-hardness: 2QBF validity → minimal-model reasoning.

The paper's central lower bound (behind the Π₂ᵖ-completeness of literal
inference under GCWA, EGCWA, ECWA/CIRC, ICWA, PERF, DSM and PDSM — its
Theorem 3.1 family, "Φ is valid iff MM(T) |= ¬w"): from a Σ₂ᵖ-complete
``∃X ∀Y φ`` (φ in DNF) build a *positive* DDB ``T`` over
``X ∪ X' ∪ Y ∪ Y' ∪ {w}``::

    x | x'                     for each x ∈ X
    y | y'                     for each y ∈ Y
    y  :- w     y' :- w        for each y ∈ Y
    w  :- σ(D)                 for each DNF term D of φ

where ``σ`` maps the literal ``x`` to the atom ``x`` and ``¬x`` to ``x'``
(and likewise for ``y``).  Then:

    ∃X∀Y φ is valid   ⟺   some minimal model of T contains w
                      ⟺   MM(T) ⊭ ¬w.

Proof shape (verified empirically against brute force in the tests):

* For an outer assignment ``σ``, the interpretation
  ``M_σ = σ-literals ∪ {y, y' : y ∈ Y} ∪ {w}`` is always a model, and a
  *minimal* one iff ``∀Y φ(σ, ·)`` holds: a strictly smaller model must
  drop ``w`` (keeping ``w`` forces all ``y, y'`` back) and therefore
  encodes, through which of ``y/y'`` it keeps, a ``Y``-counterexample
  avoiding every term body.
* Conversely a minimal model containing ``w`` has exactly one of
  ``x/x'`` for each ``x`` (dropping a duplicate preserves modelhood), so
  it is some ``M_σ``, and its minimality again means no
  ``Y``-counterexample exists.

Consequences, all positive-DDB (Table 1) lower bounds:

* literal inference of ``¬w`` under EGCWA/GCWA/ECWA/ICWA/PERF/DSM is
  Π₂ᵖ-hard (these all answer ``MM(T) |= ¬w`` on positive databases);
* CCWA literal inference is Π₂ᵖ-hard via ``Q = Z = ∅``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ...errors import ReproError
from ...logic.clause import Clause
from ...logic.database import DisjunctiveDatabase
from ...logic.formula import And, Bottom, Formula, Not, Or, Top, Var
from ...qbf.formula import QBF2

#: Suffix for the "complement" atom of a QBF variable.
PRIME = "_f"
#: The distinguished head atom.
W = "w"


def _primed(atom: str) -> str:
    return atom + PRIME


def dnf_terms(matrix: Formula) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Decompose a DNF formula into ``(positive, negative)`` atom pairs.

    Accepts ``Or`` of terms, each an ``And`` of literals (or a single
    literal / single term).  Raises for non-DNF inputs.
    """
    def literal_of(node: Formula) -> Tuple[str, bool]:
        if isinstance(node, Var):
            return node.name, True
        if isinstance(node, Not) and isinstance(node.operand, Var):
            return node.operand.name, False
        raise ReproError(f"matrix is not in DNF: bad literal {node!r}")

    def term_of(node: Formula) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        literals: List[Tuple[str, bool]] = []
        if isinstance(node, And):
            for part in node.operands:
                literals.append(literal_of(part))
        else:
            literals.append(literal_of(node))
        positive = frozenset(a for a, sign in literals if sign)
        negative = frozenset(a for a, sign in literals if not sign)
        return positive, negative

    if isinstance(matrix, (Top, Bottom)):
        raise ReproError("constant matrices need no reduction")
    if isinstance(matrix, Or):
        return [term_of(part) for part in matrix.operands]
    return [term_of(matrix)]


@dataclass(frozen=True)
class MinimalEntailmentInstance:
    """The reduction's output: valid(qbf) ⟺ ``MM(db) ⊭ ¬w``."""

    db: DisjunctiveDatabase
    w: str

    @property
    def query_literal(self) -> str:
        """The literal whose non-inference witnesses validity."""
        return "not " + self.w


def qbf_to_minimal_entailment(qbf: QBF2) -> MinimalEntailmentInstance:
    """Reduce ``∃X ∀Y φ`` (φ in DNF) to minimal-model literal inference.

    Contract: ``qbf`` is valid  ⟺  some minimal model of the returned
    positive DDB contains ``w``  ⟺  ``MM(db) |= ¬w`` is **false**.
    """
    if not qbf.exists_first:
        raise ReproError(
            "reduction starts from the Σ₂ᵖ form ∃X∀Y; negate the input "
            "for the Π₂ᵖ form"
        )
    reserved = {W} | {_primed(a) for a in qbf.x | qbf.y}
    clash = reserved & (qbf.x | qbf.y)
    if clash:
        raise ReproError(
            "QBF variables clash with reduction atoms: "
            + ", ".join(sorted(clash))
        )
    clauses: List[Clause] = []
    for x in sorted(qbf.x):
        clauses.append(Clause.fact(x, _primed(x)))
    for y in sorted(qbf.y):
        clauses.append(Clause.fact(y, _primed(y)))
        clauses.append(Clause.rule([y], [W]))
        clauses.append(Clause.rule([_primed(y)], [W]))
    for positive, negative in dnf_terms(qbf.matrix):
        body = set(positive) | {_primed(a) for a in negative}
        clauses.append(Clause.rule([W], body))
    return MinimalEntailmentInstance(
        db=DisjunctiveDatabase(clauses), w=W
    )


def decode_witness(
    instance: MinimalEntailmentInstance, model: FrozenSet[str], x_vars
) -> dict:
    """Read the outer assignment off a minimal model containing ``w``."""
    return {x: (x in model) for x in x_vars}
