"""Σ₂ᵖ-hardness of DSM / PDSM / PERF model existence (Table 2).

All three constructions extend the positive database ``T`` of
:mod:`.qbf_to_mm` (where ``∃X∀Y φ`` is valid iff some minimal model of
``T`` contains ``w``).

**DSM** (no integrity clauses needed, matching the remark credited to
[8]): add ``a :- not w`` for *every* atom ``a`` of ``T``.  For a stable
candidate ``M``:

* if ``w ∈ M`` the added clauses vanish from the reduct, so ``M`` is
  stable iff ``M ∈ MM(T)`` with ``w ∈ M``;
* if ``w ∉ M`` the reduct contains every atom as a fact, forcing
  ``M = V ∋ w`` — a contradiction — so no stable model omits ``w``.

Hence ``DSM(DB) ≠ ∅`` iff the QBF is valid.  Because total partial stable
models are exactly the stable models and the construction leaves no room
for strictly-partial ones to appear when the QBF is invalid is *not*
automatic, the PDSM benchmark uses the same instance but its claim —
agreement with DSM existence — is verified against brute force on small
instances in the tests.

**PERF**: add the unstratified pair ``p :- not q, not w`` /
``q :- not p, not w``.  When ``w`` is in a minimal model (QBF valid) that
model is perfect (the gadget is switched off and ``w``-containing minimal
models tolerate no preferable rival); when the QBF is invalid every model
either contains ``w`` non-minimally/unsupportedly or trips the
``p``/``q`` priority cycle, which always yields a preferable rival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...logic.clause import Clause
from ...logic.database import DisjunctiveDatabase
from ...qbf.formula import QBF2
from .qbf_to_mm import W, qbf_to_minimal_entailment

#: Gadget atoms for the PERF construction.
P_GADGET = "p_gadget"
Q_GADGET = "q_gadget"


@dataclass(frozen=True)
class ExistenceInstance:
    """valid(qbf) ⟺ the target semantics admits a model of ``db``."""

    db: DisjunctiveDatabase
    w: str


def qbf_to_dsm_existence(qbf: QBF2) -> ExistenceInstance:
    """``∃X∀Y φ`` valid  ⟺  ``db`` has a disjunctive stable model.

    The database is a DNDB *without integrity clauses*.
    """
    base = qbf_to_minimal_entailment(qbf)
    clauses: List[Clause] = list(base.db.clauses)
    for atom in sorted(base.db.vocabulary):
        if atom == W:
            continue
        clauses.append(Clause.rule([atom], [], [W]))
    return ExistenceInstance(
        db=DisjunctiveDatabase(clauses, base.db.vocabulary), w=W
    )


def qbf_to_pdsm_existence(qbf: QBF2) -> ExistenceInstance:
    """``∃X∀Y φ`` valid  ⟺  ``db`` has a *partial* stable model.

    Construction: ``T ∪ {:- not w}``.  The integrity clause's reduct
    bound is ``1 - I(w)``, and an empty head has value 0, so any partial
    stable candidate must set ``w = 1`` exactly.  The reduct then
    collapses to the positive ``T``, and for positive programs a 3-valued
    interpretation satisfies ``T`` iff both its true-set and its
    possible-set do classically — so a non-total candidate ``I`` is
    always beaten by ``(true(I), true(I))`` and the partial stable models
    are exactly the minimal models of ``T`` containing ``w``.  The same
    database also works for DSM (Table 2, with integrity clauses).
    """
    base = qbf_to_minimal_entailment(qbf)
    clauses: List[Clause] = list(base.db.clauses)
    clauses.append(Clause(frozenset(), frozenset(), frozenset((W,))))
    return ExistenceInstance(
        db=DisjunctiveDatabase(clauses, base.db.vocabulary), w=W
    )


def qbf_to_perf_existence(qbf: QBF2) -> ExistenceInstance:
    """``∃X∀Y φ`` valid  ⟺  ``db`` has a perfect model.

    The database is a DNDB without integrity clauses whose only negation
    sits in the two gadget clauses.
    """
    base = qbf_to_minimal_entailment(qbf)
    clauses: List[Clause] = list(base.db.clauses)
    clauses.append(Clause.rule([P_GADGET], [], [Q_GADGET, W]))
    clauses.append(Clause.rule([Q_GADGET], [], [P_GADGET, W]))
    vocabulary = base.db.vocabulary | {P_GADGET, Q_GADGET}
    return ExistenceInstance(
        db=DisjunctiveDatabase(clauses, vocabulary), w=W
    )
