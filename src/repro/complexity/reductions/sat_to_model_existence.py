"""NP-hardness of model existence with integrity clauses (Table 2).

A CNF formula becomes a disjunctive deductive database clause-for-clause:
positive literals go to the head, negated variables to the positive body
(an all-negative CNF clause becomes an integrity clause).  The classical
models coincide, so:

* ``EGCWA(DB) = MM(DB) ≠ ∅`` iff the CNF is satisfiable — the Table 2
  NP-completeness of EGCWA (and ECWA/GCWA/CCWA) model existence;
* the same instance exercises the coNP-hardness of consistency-dependent
  reasoning for DDR/PWS with integrity clauses.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ...logic.atoms import Literal
from ...logic.clause import Clause
from ...logic.cnf import Cnf
from ...logic.database import DisjunctiveDatabase

#: A CNF for this module is a sequence of clauses, each a sequence of
#: (atom, positive) pairs — or repro's symbolic ``Cnf``.


def cnf_to_database(cnf: Cnf) -> DisjunctiveDatabase:
    """Translate a symbolic CNF into an equivalent DDB (with ICs for
    all-negative clauses).  Model sets coincide exactly."""
    clauses: List[Clause] = []
    for cnf_clause in cnf:
        head = frozenset(l.atom for l in cnf_clause if l.positive)
        body = frozenset(l.atom for l in cnf_clause if not l.positive)
        clauses.append(Clause(head, body, frozenset()))
    return DisjunctiveDatabase(clauses)


def database_to_cnf_clauses(db: DisjunctiveDatabase) -> Cnf:
    """The inverse direction (for round-trip tests)."""
    return [frozenset(c.to_classical_literals()) for c in db.clauses]
