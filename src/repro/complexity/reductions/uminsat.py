"""UMINSAT — unique minimal model (paper, Proposition 5.4 / Lemma 5.5).

``UMINSAT``: given a propositional CNF ``C``, does ``C`` have a *unique*
minimal model?  The paper shows (Prop. 5.4, after [7]) that UMINSAT is
coNP-hard and — unless the polynomial hierarchy collapses — lies outside
``coDᵖ``, and (Lemma 5.5) that it transforms to deciding whether a
*normal* logic program has a unique minimal model (using fresh atoms, as
in the paper's sketch "let a, b, c be new atoms not occurring in C").

This module provides:

* :func:`has_unique_minimal_model` — the decision procedure (find one
  minimal model, then one more SAT round for a model avoiding it);
* :func:`unsat_to_uminsat` — the coNP-hardness reduction:
  ``C`` is unsatisfiable  ⟺  ``D(C)`` has a unique minimal model, where
  ``D(C) = {c ∨ a : c ∈ C} ∪ {a ∨ b}`` with fresh ``a, b``.
  ``{a}`` is always a minimal model of ``D(C)``; any *other* minimal
  model must avoid ``a``, hence contain ``b`` and restrict to a model of
  ``C`` — so a second minimal model exists iff ``C`` is satisfiable.
* :func:`to_normal_program` — Lemma 5.5's target form: every disjunctive
  clause ``p1 | .. | pk :- B`` becomes the normal clause
  ``p1 :- B, not p2, .., not pk`` (the same classical formula, so the
  same minimal models), giving a *normal* logic program.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...logic.atoms import Literal
from ...logic.clause import Clause
from ...logic.cnf import Cnf
from ...logic.database import DisjunctiveDatabase
from ...sat.minimal import MinimalModelSolver
from .sat_to_model_existence import cnf_to_database

#: Fresh atoms of the reduction (the paper's "a, b, c").
A_FRESH = "a_fresh"
B_FRESH = "b_fresh"


def has_unique_minimal_model(db: DisjunctiveDatabase) -> bool:
    """Whether ``db`` has exactly one minimal model.

    Procedure: find a first minimal model ``M1``; a second one exists iff
    some model is not a superset of ``M1`` (any such model shrinks to a
    minimal model different from ``M1``).
    """
    engine = MinimalModelSolver(db)
    models = engine.iter_minimal_models(max_models=2)
    first = next(models, None)
    if first is None:
        return False  # inconsistent: zero minimal models
    return next(models, None) is None


def unsat_to_uminsat(cnf: Cnf) -> DisjunctiveDatabase:
    """``cnf`` unsatisfiable  ⟺  the returned database has a unique
    minimal model (namely ``{a_fresh}``)."""
    atoms = {l.atom for clause in cnf for l in clause}
    if {A_FRESH, B_FRESH} & atoms:
        raise ValueError("input CNF uses the reduction's fresh atoms")
    widened = [
        frozenset(set(clause) | {Literal.pos(A_FRESH)}) for clause in cnf
    ]
    widened.append(frozenset({Literal.pos(A_FRESH), Literal.pos(B_FRESH)}))
    return cnf_to_database(widened)


def to_normal_program(db: DisjunctiveDatabase) -> DisjunctiveDatabase:
    """Lemma 5.5's normalization: push all but one head atom into the
    negative body.  The classical formula of each clause — and hence the
    (minimal) model set — is unchanged, but every head is a singleton,
    i.e. the result is a normal logic program (NLP).

    Integrity clauses are kept as they are (already headless).
    """
    normal: List[Clause] = []
    for clause in db.clauses:
        if len(clause.head) <= 1:
            normal.append(clause)
            continue
        heads = sorted(clause.head)
        keep, rest = heads[0], heads[1:]
        normal.append(
            Clause(
                frozenset((keep,)),
                clause.body_pos,
                clause.body_neg | frozenset(rest),
            )
        )
    return DisjunctiveDatabase(normal, db.vocabulary)


def unsat_to_nlp_unique_minimal(cnf: Cnf) -> DisjunctiveDatabase:
    """The full Lemma 5.5 pipeline: CNF → DDB with fresh atoms → NLP,
    with ``cnf`` unsatisfiable ⟺ unique minimal model."""
    return to_normal_program(unsat_to_uminsat(cnf))
