"""coNP-hardness of DDR / PWS inference (Tables 1 and 2, Chan [5]).

Two executable reductions from CNF *unsatisfiability*:

**Formula inference, no integrity clauses (Table 1).**  Over fresh
"complement" atoms ``x~`` let ``DB = {x | x~ : x ∈ vars(C)}`` (a positive
IC-free DDB whose possibly-true set is everything, so both closures add
nothing).  With ``σ`` renaming ``¬x ↦ x~``,

    F(C)  =  σ(C)  →  ⋁_x (x ∧ x~)

is inferred under DDR (and PWS) iff ``C`` is unsatisfiable: a satisfying
assignment yields a *proper* cover model falsifying ``F``, while if ``C``
is unsatisfiable every proper cover falsifies ``σ(C)`` and every improper
cover satisfies the consequent.

**Literal inference, with integrity clauses (Table 2).**

    DB = {x | x~} ∪ {:- x, x~} ∪ {σ(c) :- u : c ∈ C} ∪ {u | d}

with fresh ``u, d``.  The integrity clauses make covers proper (exact
assignments); ``u`` is possibly-true (head of the disjunctive fact), so
the closure does not negate it, and ``DDR(DB) |= ¬u`` iff ``DB ∧ u`` is
unsatisfiable iff ``C`` is unsatisfiable.  The same instance works for
PWS literal inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ...logic.atoms import Literal
from ...logic.clause import Clause
from ...logic.cnf import Cnf
from ...logic.database import DisjunctiveDatabase
from ...logic.formula import And, Formula, Implies, Var, conj, disj

#: Suffix of the complement atom.
COMP = "_c"
U_FRESH = "u_fresh"
D_FRESH = "d_fresh"


def _comp(atom: str) -> str:
    return atom + COMP


def _vars_of(cnf: Cnf) -> List[str]:
    return sorted({l.atom for clause in cnf for l in clause})


@dataclass(frozen=True)
class FormulaInferenceInstance:
    """unsat(cnf) ⟺ ``db`` infers ``formula`` under DDR (and PWS)."""

    db: DisjunctiveDatabase
    formula: Formula


def unsat_to_ddr_formula(cnf: Cnf) -> FormulaInferenceInstance:
    """Table 1 lower bound: coNP-hardness of formula inference under
    DDR/PWS for positive, IC-free DDBs."""
    variables = _vars_of(cnf)
    clauses = [Clause.fact(x, _comp(x)) for x in variables]
    db = DisjunctiveDatabase(clauses)
    renamed = conj(
        [
            disj(
                [
                    Var(l.atom) if l.positive else Var(_comp(l.atom))
                    for l in sorted(clause)
                ]
            )
            for clause in cnf
        ]
    )
    improper = disj([And(Var(x), Var(_comp(x))) for x in variables])
    return FormulaInferenceInstance(db, Implies(renamed, improper))


@dataclass(frozen=True)
class LiteralInferenceInstance:
    """unsat(cnf) ⟺ ``db`` infers ``not u`` under DDR (and PWS)."""

    db: DisjunctiveDatabase
    literal: str  # always "not u_fresh"


def unsat_to_ddr_literal(cnf: Cnf) -> LiteralInferenceInstance:
    """Table 2 lower bound: coNP-hardness of (negative) literal inference
    under DDR/PWS once integrity clauses are allowed."""
    variables = _vars_of(cnf)
    if U_FRESH in variables or D_FRESH in variables:
        raise ValueError("input CNF uses the reduction's fresh atoms")
    clauses: List[Clause] = []
    for x in variables:
        clauses.append(Clause.fact(x, _comp(x)))
        clauses.append(Clause.integrity([x, _comp(x)]))
    for clause in cnf:
        head = frozenset(
            l.atom if l.positive else _comp(l.atom) for l in clause
        )
        clauses.append(Clause(head, frozenset((U_FRESH,)), frozenset()))
    clauses.append(Clause.fact(U_FRESH, D_FRESH))
    return LiteralInferenceInstance(
        DisjunctiveDatabase(clauses), "not " + U_FRESH
    )
