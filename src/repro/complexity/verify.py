"""Empirical validation of reductions.

A polynomial-time many-one reduction is a program; its correctness claim
is "source answer = target answer on every instance".  This harness runs
a reduction over a batch of instances, computes both answers (the source
one with a trusted/brute decision procedure), and reports agreement.
Tests use it with exhaustive small instances, the benchmark harness with
random ones — together they are the executable form of the paper's
hardness proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

SourceInstance = TypeVar("SourceInstance")


@dataclass
class ReductionReport:
    """Outcome of validating one reduction over a batch of instances."""

    name: str
    total: int = 0
    yes_instances: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every instance agreed."""
        return not self.disagreements

    #: How many disagreements :meth:`render` spells out before eliding.
    RENDER_LIMIT = 3

    def render(self) -> str:
        status = "OK" if self.ok else "FAIL"
        text = (
            f"{self.name}: {status} on {self.total} instances "
            f"({self.yes_instances} yes / {self.total - self.yes_instances}"
            f" no)"
        )
        if not self.ok:
            shown = self.disagreements[: self.RENDER_LIMIT]
            text += " — " + "; ".join(shown)
            hidden = len(self.disagreements) - len(shown)
            if hidden > 0:
                text += f" …and {hidden} more"
        return text


def check_reduction(
    name: str,
    instances: Iterable[SourceInstance],
    source_decides: Callable[[SourceInstance], bool],
    reduce_and_decide: Callable[[SourceInstance], bool],
    describe: Callable[[SourceInstance], str] = repr,
) -> ReductionReport:
    """Validate ``source(i) == target(reduce(i))`` over ``instances``.

    Args:
        name: label for the report.
        instances: source instances to test.
        source_decides: trusted decision procedure for the source problem.
        reduce_and_decide: applies the reduction and decides the target.
        describe: renders an instance for disagreement messages.
    """
    report = ReductionReport(name=name)
    for instance in instances:
        expected = source_decides(instance)
        actual = reduce_and_decide(instance)
        report.total += 1
        if expected:
            report.yes_instances += 1
        if expected != actual:
            report.disagreements.append(
                f"{describe(instance)}: source={expected} target={actual}"
            )
    return report
