"""The evaluation engine: memoization and parallel enumeration.

Layered between :mod:`repro.logic`/:mod:`repro.models` below and
:mod:`repro.semantics`/:mod:`repro.session` above:

* :mod:`repro.engine.cache` — the bounded process-wide LRU memo store
  (:data:`ENGINE_CACHE`) plus always-safe memoized helpers for pure
  derived objects (minimal-model sets, priority relations, CNF forms);
* :mod:`repro.engine.cached` — :class:`CachedSemantics`, the
  ``engine="cached"`` façade memoizing ``model_set`` / ``infers`` /
  ``infers_literal`` / ``infers_brave`` / ``has_model``;
* :mod:`repro.engine.parallel` — process-pool enumeration of ``M(DB)`` /
  ``MM(DB)`` and generic suite fan-out;
* :mod:`repro.engine.resilient` — :class:`ResilientSemantics`, the
  ``engine="resilient"`` façade running any engine under a
  :class:`~repro.runtime.budget.Budget` with retry, fallback and
  structured-timeout degradation.

See ``docs/performance_guide.md`` for the cache-key and eviction design
and ``docs/robustness_guide.md`` for the budget and degradation model.
"""

from .cache import (
    DEFAULT_MAXSIZE,
    ENGINE_CACHE,
    EngineCache,
    all_models_for,
    cache_stats,
    classical_clauses_for,
    clear_cache,
    configure_cache,
    database_cnf_for,
    minimal_models_for,
    priority_relation_for,
    pz_minimal_models_for,
)
from .cached import CachedSemantics
from .parallel import (
    MIN_PARALLEL_ATOMS,
    default_workers,
    parallel_all_models,
    parallel_map,
    parallel_minimal_models,
    split_blocks,
)
from .resilient import ResilientSemantics, RetryPolicy

#: Engine order of the differential stack.  The brute enumerator comes
#: first — it is the ground truth the others are judged against.  The
#: trailing ``kernel`` leg is the brute enumerator re-run on the
#: *opposite* interpretation representation (bitset masks vs. pure
#: frozensets), so every corpus answer also cross-checks the two kernel
#: code paths against each other.
DIFFERENTIAL_ENGINES = (
    "brute", "oracle", "fresh", "cached", "planned", "kernel"
)


class KernelLegSemantics:
    """Brute semantics evaluated on the opposite kernel representation.

    The ``engine="kernel"`` wrapper: wraps an ``engine="brute"``
    semantics instance and runs each entry point under
    :func:`repro.kernel.force_kernel` with the mode *opposite* to the
    ambient one (checked per call): with bitset internals active (the
    default) this leg exercises the pure frozenset path, and under
    ``REPRO_KERNEL=pure`` it exercises the bitset path.  Agreement with
    the leading brute leg therefore pins the two representations to
    each other on the whole differential corpus, whichever mode the
    suite runs in.
    """

    engine = "kernel"

    def __init__(self, inner):
        self._inner = inner

    def _opposite_mode(self) -> str:
        from ..kernel import kernel_enabled

        return "pure" if kernel_enabled() else "bitset"

    def _call(self, method: str, *args):
        from ..kernel import force_kernel

        with force_kernel(self._opposite_mode()):
            return getattr(self._inner, method)(*args)

    def model_set(self, db):
        return self._call("model_set", db)

    def infers(self, db, formula):
        return self._call("infers", db, formula)

    def infers_literal(self, db, literal):
        return self._call("infers_literal", db, literal)

    def infers_brave(self, db, formula):
        return self._call("infers_brave", db, formula)

    def has_model(self, db):
        return self._call("has_model", db)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)


def differential_stack(name: str, engines=DIFFERENTIAL_ENGINES):
    """One semantics instance per differential engine, brute first.

    The canonical cross-checking stack shared by
    ``tests/test_differential.py`` and the adversarial hunter
    (:mod:`repro.adversary.hunter`): every answer the oracle-, cache-
    and planner-backed engines give is compared against the brute
    enumerator's.  The ``kernel`` engine is the brute enumerator
    wrapped in :class:`KernelLegSemantics`, cross-checking bitset
    against pure-frozenset internals on every answer.
    """
    from ..semantics import get_semantics  # deferred: avoids the
    # semantics -> engine import cycle at module-load time

    return tuple(get_semantics(name, engine=engine) for engine in engines)


__all__ = [
    "DIFFERENTIAL_ENGINES",
    "differential_stack",
    "DEFAULT_MAXSIZE",
    "ENGINE_CACHE",
    "EngineCache",
    "CachedSemantics",
    "KernelLegSemantics",
    "MIN_PARALLEL_ATOMS",
    "ResilientSemantics",
    "RetryPolicy",
    "all_models_for",
    "cache_stats",
    "classical_clauses_for",
    "clear_cache",
    "configure_cache",
    "database_cnf_for",
    "default_workers",
    "minimal_models_for",
    "parallel_all_models",
    "parallel_map",
    "parallel_minimal_models",
    "priority_relation_for",
    "pz_minimal_models_for",
    "split_blocks",
]
