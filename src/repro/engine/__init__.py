"""The evaluation engine: memoization and parallel enumeration.

Layered between :mod:`repro.logic`/:mod:`repro.models` below and
:mod:`repro.semantics`/:mod:`repro.session` above:

* :mod:`repro.engine.cache` — the bounded process-wide LRU memo store
  (:data:`ENGINE_CACHE`) plus always-safe memoized helpers for pure
  derived objects (minimal-model sets, priority relations, CNF forms);
* :mod:`repro.engine.cached` — :class:`CachedSemantics`, the
  ``engine="cached"`` façade memoizing ``model_set`` / ``infers`` /
  ``infers_literal`` / ``infers_brave`` / ``has_model``;
* :mod:`repro.engine.parallel` — process-pool enumeration of ``M(DB)`` /
  ``MM(DB)`` and generic suite fan-out;
* :mod:`repro.engine.resilient` — :class:`ResilientSemantics`, the
  ``engine="resilient"`` façade running any engine under a
  :class:`~repro.runtime.budget.Budget` with retry, fallback and
  structured-timeout degradation.

See ``docs/performance_guide.md`` for the cache-key and eviction design
and ``docs/robustness_guide.md`` for the budget and degradation model.
"""

from .cache import (
    DEFAULT_MAXSIZE,
    ENGINE_CACHE,
    EngineCache,
    all_models_for,
    cache_stats,
    classical_clauses_for,
    clear_cache,
    configure_cache,
    database_cnf_for,
    minimal_models_for,
    priority_relation_for,
    pz_minimal_models_for,
)
from .cached import CachedSemantics
from .parallel import (
    MIN_PARALLEL_ATOMS,
    default_workers,
    parallel_all_models,
    parallel_map,
    parallel_minimal_models,
    split_blocks,
)
from .resilient import ResilientSemantics, RetryPolicy

__all__ = [
    "DEFAULT_MAXSIZE",
    "ENGINE_CACHE",
    "EngineCache",
    "CachedSemantics",
    "MIN_PARALLEL_ATOMS",
    "ResilientSemantics",
    "RetryPolicy",
    "all_models_for",
    "cache_stats",
    "classical_clauses_for",
    "clear_cache",
    "configure_cache",
    "database_cnf_for",
    "default_workers",
    "minimal_models_for",
    "parallel_all_models",
    "parallel_map",
    "parallel_minimal_models",
    "priority_relation_for",
    "pz_minimal_models_for",
    "split_blocks",
]
