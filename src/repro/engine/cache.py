"""Process-wide memoization for the evaluation engine.

Every object this layer caches is a *pure function of immutable, hashable
inputs*: selected-model sets, minimal-model sets, ``(P;Z)``-minimal model
sets, :class:`~repro.semantics.perf.PriorityRelation` instances, and the
classical clause / CNF translations of a database.  The cache is therefore
transparent — a hit returns exactly the object a recomputation would have
produced — and safe to share across sessions, semantics instances and
repeated benchmark passes.

Entries live in one bounded LRU store keyed on ``(kind, key)`` where
``kind`` names the cached object family (``"model_set"``, ``"infers"``,
``"minimal_models"``, ``"priority_relation"``, ``"cnf"``, ...) and ``key``
is the hashable identity of the computation — typically a
``(DisjunctiveDatabase, semantics-name, engine, params)`` tuple.  Hits,
misses and evictions are counted per kind and surfaced as a
``SatSolver.stats()``-style flat dict (plus a per-kind breakdown) through
:meth:`EngineCache.stats` and the ``repro-ddb cache`` CLI subcommand.

The module-level singleton :data:`ENGINE_CACHE` is the process-wide
instance used by the cached engine, the session layer and the always-safe
helpers (:func:`priority_relation_for`, :func:`classical_clauses_for`).
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from ..obs.metrics import METRICS

#: Default maximum number of entries retained across all kinds.
DEFAULT_MAXSIZE = 4096


class EngineCache:
    """A bounded, thread-safe LRU cache with per-kind statistics.

    Args:
        maxsize: maximum number of entries (all kinds combined); least
            recently used entries are evicted beyond this bound.  ``0``
            disables caching entirely (every lookup misses and nothing is
            stored), which keeps :meth:`get_or_compute` usable as a plain
            call-through.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, Hashable], Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits: "Counter[str]" = Counter()
        self._misses: "Counter[str]" = Counter()
        self._evictions: "Counter[str]" = Counter()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get_or_compute(
        self, kind: str, key: Hashable, builder: Callable[[], Any]
    ) -> Any:
        """The cached value for ``(kind, key)``, computing it on a miss.

        ``builder`` runs outside the lock (computations may themselves
        consult the cache); if two threads race on the same miss, the
        first stored value wins and both observe one miss each.
        """
        full_key = (kind, key)
        with self._lock:
            try:
                value = self._entries[full_key]
            except KeyError:
                self._misses[kind] += 1
            else:
                self._entries.move_to_end(full_key)
                self._hits[kind] += 1
                return value
        value = builder()
        with self._lock:
            if full_key in self._entries:
                return self._entries[full_key]
            if self.maxsize == 0:
                return value
            self._entries[full_key] = value
            while len(self._entries) > self.maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                self._evictions[evicted_key[0]] += 1
        return value

    def peek(self, kind: str, key: Hashable) -> Any:
        """The cached value without recording a hit or refreshing LRU
        order; raises :class:`KeyError` on absence (test/introspection
        helper)."""
        with self._lock:
            return self._entries[(kind, key)]

    def __contains__(self, full_key: Tuple[str, Hashable]) -> bool:
        with self._lock:
            return full_key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Management
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._hits.clear()
            self._misses.clear()
            self._evictions.clear()

    def configure(self, maxsize: int) -> None:
        """Change the entry bound, evicting LRU entries if shrinking."""
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        with self._lock:
            self.maxsize = maxsize
            while len(self._entries) > maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                self._evictions[evicted_key[0]] += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate statistics in the ``SatSolver.stats()`` style.

        Returns a dict with flat totals (``entries``, ``maxsize``,
        ``hits``, ``misses``, ``evictions``, ``hit_rate``) plus per-kind
        breakdowns under ``entries_by_kind`` / ``hits_by_kind`` /
        ``misses_by_kind`` / ``evictions_by_kind``.
        """
        with self._lock:
            entries_by_kind: "Counter[str]" = Counter(
                kind for kind, _ in self._entries
            )
            hits = sum(self._hits.values())
            misses = sum(self._misses.values())
            lookups = hits + misses
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": hits,
                "misses": misses,
                "evictions": sum(self._evictions.values()),
                "hit_rate": (hits / lookups) if lookups else 0.0,
                "entries_by_kind": dict(entries_by_kind),
                "hits_by_kind": dict(self._hits),
                "misses_by_kind": dict(self._misses),
                "evictions_by_kind": dict(self._evictions),
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"EngineCache(entries={s['entries']}/{s['maxsize']}, "
            f"hits={s['hits']}, misses={s['misses']}, "
            f"evictions={s['evictions']})"
        )


#: The process-wide cache instance.
ENGINE_CACHE = EngineCache()


def _cache_metrics() -> Dict[str, float]:
    stats = ENGINE_CACHE.stats()
    return {
        f"repro_cache_{name}": float(stats[name])
        for name in ("entries", "maxsize", "hits", "misses", "evictions",
                     "hit_rate")
    }


# Pull-style exposition: the cache keeps its own per-kind counters under
# its own lock; the registry polls the flat totals at expose() time.
METRICS.register_collector("engine_cache", _cache_metrics)


def cache_stats() -> Dict[str, Any]:
    """Statistics of the process-wide cache."""
    return ENGINE_CACHE.stats()


def clear_cache() -> None:
    """Reset the process-wide cache (entries and counters)."""
    ENGINE_CACHE.clear()


def configure_cache(maxsize: int) -> None:
    """Re-bound the process-wide cache."""
    ENGINE_CACHE.configure(maxsize)


# ----------------------------------------------------------------------
# Always-safe memoized helpers (pure functions of immutable inputs).
# Imports happen lazily so this module stays at the bottom of the layer
# graph and can be used from repro.logic / repro.sat without cycles.
# ----------------------------------------------------------------------
def classical_clauses_for(db) -> Tuple[Tuple, ...]:
    """The classical literal form of every clause of ``db``, memoized.

    Each inner tuple holds the :class:`~repro.logic.atoms.Literal`
    objects of one clause; clause order is the database's canonical
    (sorted) order so downstream solvers see a deterministic sequence.
    """
    return ENGINE_CACHE.get_or_compute(
        "classical_clauses",
        db,
        lambda: tuple(tuple(c.to_classical_literals()) for c in db),
    )


def database_cnf_for(db) -> Tuple:
    """The CNF translation of ``db`` as a tuple of frozen clauses,
    memoized (callers wanting the list-typed
    :data:`~repro.logic.cnf.Cnf` should copy with ``list(...)``)."""
    return ENGINE_CACHE.get_or_compute(
        "cnf",
        db,
        lambda: tuple(frozenset(lits) for lits in classical_clauses_for(db)),
    )


def priority_relation_for(db):
    """The PERF :class:`~repro.semantics.perf.PriorityRelation` of ``db``,
    memoized (its Floyd–Warshall closure is cubic in ``|V|``)."""

    def build():
        from ..semantics.perf import PriorityRelation

        return PriorityRelation(db)

    return ENGINE_CACHE.get_or_compute("priority_relation", db, build)


def all_models_for(db) -> Tuple:
    """``M(DB)`` by explicit enumeration, memoized."""

    def build():
        from ..models.enumeration import all_models

        return tuple(all_models(db))

    return ENGINE_CACHE.get_or_compute("all_models", db, build)


def minimal_models_for(db) -> Tuple:
    """``MM(DB)`` by explicit enumeration, memoized."""

    def build():
        from ..models.enumeration import minimal_models_brute

        return tuple(minimal_models_brute(db))

    return ENGINE_CACHE.get_or_compute("minimal_models", db, build)


def stratification_for(db):
    """The canonical :class:`~repro.semantics.stratification.Stratification`
    of ``db``, or ``None`` when it has a dependency cycle through
    negation — memoized.  The full dependency-graph/SCC pass is linear
    but was rebuilt on every ``is_stratified`` / ``require_stratification``
    call; the fragment analyzer, ICWA and the CLI all route through this
    single cached entry instead."""

    def build():
        from ..semantics.stratification import stratify

        return stratify(db)

    return ENGINE_CACHE.get_or_compute("stratification", db, build)


def fragment_profile_for(db):
    """The :class:`~repro.analysis.fragment.FragmentProfile` of ``db``,
    memoized (one linear clause pass plus two SCC passes per database,
    shared by the planner, the certifier and the CLI)."""

    def build():
        from ..analysis.fragment import FragmentAnalyzer

        return FragmentAnalyzer().analyze(db)

    return ENGINE_CACHE.get_or_compute("fragment_profile", db, build)


def query_plan_for(db, inner, method: str, planner=None):
    """The :class:`~repro.analysis.planner.QueryPlan` for one
    ``(database, semantics, entry point)`` triple, memoized per
    parameterization.

    Planning reads only the memoized fragment profile, but the cost
    table is rebuilt per candidate; sessions re-plan on *every* query,
    so this entry is what keeps the planned engine's overhead at one
    cache lookup on the repeated-query path (the BENCH_pr5
    ``stratified-tower`` regression was exactly this loop).  Passing an
    explicit non-default ``planner`` bypasses the cache — custom cost
    models see their own fresh plans.
    """

    def build():
        from ..analysis.fragment import fragment_profile
        from ..analysis.planner import FragmentPlanner

        chooser = planner if planner is not None else FragmentPlanner()
        return chooser.plan(fragment_profile(db), inner, method)

    if planner is not None:
        return build()
    key = (db, inner.name) + inner.cache_params() + (method,)
    return ENGINE_CACHE.get_or_compute("query_plan", key, build)


def pz_minimal_models_for(db, p, z) -> Tuple:
    """``MM(DB; P; Z)`` by explicit enumeration, memoized per partition."""
    p = frozenset(p)
    z = frozenset(z)

    def build():
        from ..models.enumeration import pz_minimal_models_brute

        return tuple(pz_minimal_models_brute(db, p, z))

    return ENGINE_CACHE.get_or_compute(
        "pz_minimal_models", (db, p, z), build
    )
