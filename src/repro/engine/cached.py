"""The memoizing ("cached") evaluation engine.

:class:`CachedSemantics` wraps any oracle- or brute-engine
:class:`~repro.semantics.base.Semantics` instance and memoizes its five
decision entry points in the process-wide :data:`~repro.engine.cache.
ENGINE_CACHE`, keyed on::

    (DisjunctiveDatabase, semantics-name, inner-engine, *params, *query)

where ``params`` is the semantics' :meth:`~repro.semantics.base.Semantics.
cache_params` tuple (the ``(P;Z)`` partition for CCWA/ECWA/CIRC/ICWA,
empty for the others).  Databases hash structurally, so two structurally
equal databases — however constructed — share entries, while distinct
partitions or engines never collide.

Obtain instances through ``get_semantics(name, engine="cached")`` or
``DatabaseSession(db, engine="cached")`` rather than constructing
directly; the registry routes the ``"cached"`` engine name here.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Optional, Tuple, Union

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..semantics.base import Semantics
from .cache import ENGINE_CACHE, EngineCache


class CachedSemantics(Semantics):
    """Memoizing façade over a concrete semantics instance.

    Args:
        inner: the wrapped semantics (usually oracle-engined).
        cache: the cache to use (default: the process-wide one).

    Unknown attributes (``p``, ``z``, ``partition``, ``free_atoms``, ...)
    delegate to ``inner``, so the wrapper is a drop-in replacement.
    """

    def __init__(
        self, inner: Semantics, cache: Optional[EngineCache] = None
    ):
        if isinstance(inner, CachedSemantics):
            inner = inner.inner
        # Deliberately skip Semantics.__init__: "cached" is not a concrete
        # decision engine, it is this façade.
        self.inner = inner
        self.engine = "cached"
        self.name = inner.name
        self.aliases = inner.aliases
        self.description = inner.description
        self.cache = cache if cache is not None else ENGINE_CACHE

    # ------------------------------------------------------------------
    def _key(self, db: DisjunctiveDatabase, *query: Hashable) -> Tuple:
        return (
            (db, self.inner.name, self.inner.engine)
            + self.inner.cache_params()
            + query
        )

    # ------------------------------------------------------------------
    def validate(self, db: DisjunctiveDatabase) -> None:
        self.inner.validate(db)

    def _validated(self, db: DisjunctiveDatabase, compute):
        # Validation runs inside the build closure, i.e. only on a
        # cache miss: an inapplicable database raises before anything
        # is memoized (so every later call re-raises identically), and
        # a hit needs no re-check — the stored answer proves
        # ``validate(db)`` succeeded for this parameterization, and
        # databases are immutable.
        self.inner.validate(db)
        return compute()

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        return self.cache.get_or_compute(
            "model_set",
            self._key(db),
            lambda: self._validated(db, lambda: self.inner.model_set(db)),
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        return self.cache.get_or_compute(
            "infers",
            self._key(db, formula),
            lambda: self._validated(
                db, lambda: self.inner.infers(db, formula)
            ),
        )

    def infers_literal(
        self, db: DisjunctiveDatabase, literal: Union[Literal, str]
    ) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        return self.cache.get_or_compute(
            "infers_literal",
            self._key(db, literal),
            lambda: self._validated(
                db, lambda: self.inner.infers_literal(db, literal)
            ),
        )

    def infers_brave(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        return self.cache.get_or_compute(
            "infers_brave",
            self._key(db, formula),
            lambda: self._validated(
                db, lambda: self.inner.infers_brave(db, formula)
            ),
        )

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        return self.cache.get_or_compute(
            "has_model",
            self._key(db),
            lambda: self._validated(db, lambda: self.inner.has_model(db)),
        )

    # ------------------------------------------------------------------
    def __getattr__(self, attr: str):
        # Only reached for attributes not found normally; delegate to the
        # wrapped semantics (partition params, closure helpers, ...).
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return f"CachedSemantics({self.inner!r})"
