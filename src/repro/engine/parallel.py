"""Process-pool parallel enumeration.

Brute-force enumeration (``M(DB)``, ``MM(DB)``) is embarrassingly
parallel: the ``2^|V|`` interpretation space splits into disjoint blocks
by fixing the truth values of the first ``k`` vocabulary atoms, and each
block enumerates independently.  This module fans those blocks out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and offers the same
fan-out for mapping a function over a benchmark suite's instances.

Everything shipped to workers (databases, interpretations, block specs)
is picklable by construction; worker entry points are module-level
functions.  When a pool cannot be created (restricted environments) or
``max_workers <= 1``, every function degrades to the serial path, so
callers need no fallback logic of their own.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation
from ..models.enumeration import (
    all_models,
    minimal_models_brute,
    models_in_block,
)

T = TypeVar("T")
R = TypeVar("R")

#: Below this vocabulary size the serial enumerator wins outright and
#: parallel dispatch is pure overhead.
MIN_PARALLEL_ATOMS = 10


def default_workers() -> int:
    """The default worker count (CPU count, at least 2)."""
    return max(2, os.cpu_count() or 2)


def _make_pool(max_workers: int):
    """A process pool, or ``None`` where one cannot be created."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=max_workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None


def split_blocks(
    vocabulary: Iterable[str], num_blocks: int
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Partition the interpretation space into ``>= num_blocks`` disjoint
    blocks, each a ``(fixed_true, fixed_false)`` assignment of the first
    ``k`` atoms (``2^k >= num_blocks``)."""
    atoms = sorted(vocabulary)
    k = 0
    while (1 << k) < max(1, num_blocks) and k < len(atoms):
        k += 1
    prefix = atoms[:k]
    blocks = []
    for mask in range(1 << k):
        fixed_true = tuple(
            prefix[i] for i in range(k) if mask >> i & 1
        )
        fixed_false = tuple(
            prefix[i] for i in range(k) if not mask >> i & 1
        )
        blocks.append((fixed_true, fixed_false))
    return blocks


def _enumerate_block(
    args: Tuple[DisjunctiveDatabase, Tuple[str, ...], Tuple[str, ...]],
) -> List[Interpretation]:
    db, fixed_true, fixed_false = args
    return models_in_block(db, fixed_true, fixed_false)


def parallel_all_models(
    db: DisjunctiveDatabase, max_workers: Optional[int] = None
) -> List[Interpretation]:
    """``M(DB)`` by block-parallel explicit enumeration.

    Equals :func:`~repro.models.enumeration.all_models` as a set; the
    result is returned in the deterministic binary-counter order of the
    serial enumerator.
    """
    workers = default_workers() if max_workers is None else max_workers
    if workers <= 1 or len(db.vocabulary) < MIN_PARALLEL_ATOMS:
        return all_models(db)
    pool = _make_pool(workers)
    if pool is None:
        return all_models(db)
    blocks = split_blocks(db.vocabulary, workers)
    with pool:
        chunks = list(
            pool.map(
                _enumerate_block,
                [(db, ft, ff) for ft, ff in blocks],
            )
        )
    atoms = sorted(db.vocabulary)
    rank = {a: i for i, a in enumerate(atoms)}
    merged = [m for chunk in chunks for m in chunk]
    merged.sort(key=lambda m: sum(1 << rank[a] for a in m))
    return merged


def _minimality_chunk(
    args: Tuple[List[Interpretation], List[Interpretation]],
) -> List[Interpretation]:
    candidates, universe = args
    return [
        m for m in candidates if not any(other < m for other in universe)
    ]


def parallel_minimal_models(
    db: DisjunctiveDatabase, max_workers: Optional[int] = None
) -> List[Interpretation]:
    """``MM(DB)`` by parallel enumeration plus a parallel pairwise
    minimality filter (equals
    :func:`~repro.models.enumeration.minimal_models_brute` as a set)."""
    workers = default_workers() if max_workers is None else max_workers
    if workers <= 1 or len(db.vocabulary) < MIN_PARALLEL_ATOMS:
        return minimal_models_brute(db)
    models = parallel_all_models(db, max_workers=workers)
    if not models:
        return []
    pool = _make_pool(workers)
    if pool is None:
        return [
            m for m in models if not any(other < m for other in models)
        ]
    chunk_size = max(1, (len(models) + workers - 1) // workers)
    chunks = [
        models[i : i + chunk_size]
        for i in range(0, len(models), chunk_size)
    ]
    with pool:
        filtered = list(
            pool.map(
                _minimality_chunk, [(chunk, models) for chunk in chunks]
            )
        )
    return [m for chunk in filtered for m in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map a picklable function over items with a process pool.

    The benchmark suites use this to fan out per-instance work (one
    database per task).  Order is preserved.  Serial fallback when the
    pool is unavailable or ``max_workers <= 1``.
    """
    items = list(items)
    workers = default_workers() if max_workers is None else max_workers
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = _make_pool(min(workers, len(items)))
    if pool is None:
        return [fn(item) for item in items]
    with pool:
        return list(pool.map(fn, items))
