"""Process-pool parallel enumeration.

Brute-force enumeration (``M(DB)``, ``MM(DB)``) is embarrassingly
parallel: the ``2^|V|`` interpretation space splits into disjoint blocks
by fixing the truth values of the first ``k`` vocabulary atoms, and each
block enumerates independently.  This module fans those blocks out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and offers the same
fan-out for mapping a function over a benchmark suite's instances.

Everything shipped to workers (databases, interpretations, block specs)
is picklable by construction; worker entry points are module-level
functions.  When a pool cannot be created (restricted environments) or
``max_workers <= 1``, every function degrades to the serial path, so
callers need no fallback logic of their own.

Two runtime interactions (see :mod:`repro.runtime`):

* **budgets** — pool workers cannot tick the parent's cooperative
  :class:`~repro.runtime.budget.BudgetScope`, so while a scope is active
  every function here routes to the serial path, where each node is
  governed;
* **fault injection** — an active :class:`~repro.runtime.faults.
  FaultPlan` may crash a block/item dispatch (a seeded, deterministic
  stand-in for a dying worker); the lost work is recovered serially in
  the parent and counted in ``RUNTIME_STATS.worker_crashes_recovered``.
  A genuinely broken pool (e.g. :class:`~concurrent.futures.process.
  BrokenProcessPool`) is recovered the same way.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation
from ..models.enumeration import (
    all_models,
    minimal_models_brute,
    models_in_block,
)
from ..obs import trace as _trace
from ..runtime.budget import RUNTIME_STATS, current_scope
from ..runtime.faults import maybe_crash_worker

T = TypeVar("T")
R = TypeVar("R")

#: Below this vocabulary size the serial enumerator wins outright and
#: parallel dispatch is pure overhead.
MIN_PARALLEL_ATOMS = 10


def default_workers() -> int:
    """The default worker count (CPU count, at least 2)."""
    return max(2, os.cpu_count() or 2)


def _make_pool(max_workers: int):
    """A process pool, or ``None`` where one cannot be created."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=max_workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None


def _pool_map(pool, fn, tasks) -> Optional[List]:
    """``pool.map`` with broken-pool recovery: returns the results, or
    ``None`` when the pool died mid-flight (callers recompute serially)."""
    try:
        with pool:
            return list(pool.map(fn, tasks))
    except (OSError, RuntimeError):
        # Covers BrokenProcessPool (a RuntimeError subclass) and pipe
        # failures from workers killed by the OS.
        return None


def split_blocks(
    vocabulary: Iterable[str], num_blocks: int
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Partition the interpretation space into ``>= num_blocks`` disjoint
    blocks, each a ``(fixed_true, fixed_false)`` assignment of the first
    ``k`` atoms (``2^k >= num_blocks``)."""
    atoms = sorted(vocabulary)
    k = 0
    while (1 << k) < max(1, num_blocks) and k < len(atoms):
        k += 1
    prefix = atoms[:k]
    blocks = []
    for mask in range(1 << k):
        fixed_true = tuple(
            prefix[i] for i in range(k) if mask >> i & 1
        )
        fixed_false = tuple(
            prefix[i] for i in range(k) if not mask >> i & 1
        )
        blocks.append((fixed_true, fixed_false))
    return blocks


def _enumerate_block(
    args: Tuple[DisjunctiveDatabase, Tuple[str, ...], Tuple[str, ...]],
) -> List[Interpretation]:
    db, fixed_true, fixed_false = args
    return models_in_block(db, fixed_true, fixed_false)


def parallel_all_models(
    db: DisjunctiveDatabase, max_workers: Optional[int] = None
) -> List[Interpretation]:
    """``M(DB)`` by block-parallel explicit enumeration.

    Equals :func:`~repro.models.enumeration.all_models` as a set; the
    result is returned in the deterministic binary-counter order of the
    serial enumerator.  Under an active budget scope the serial
    (budget-governed) enumerator runs instead; crashed block dispatches
    are recovered serially in the parent.
    """
    workers = default_workers() if max_workers is None else max_workers
    if (
        workers <= 1
        or len(db.vocabulary) < MIN_PARALLEL_ATOMS
        or current_scope() is not None
    ):
        return all_models(db)
    blocks = split_blocks(db.vocabulary, workers)
    # Span on the parent side only: worker processes cannot contribute to
    # this process's trace, so the fan-out is recorded as one span with
    # block counts rather than per-worker children.
    with _trace.active_tracer().span(
        "parallel.all_models",
        workers=workers,
        blocks=len(blocks),
        atoms=len(db.vocabulary),
    ) as span:
        dispatched, crashed = [], []
        for block in blocks:
            (crashed if maybe_crash_worker() else dispatched).append(block)
        pool = _make_pool(workers) if dispatched else None
        chunks: List[List[Interpretation]] = []
        if dispatched:
            results = (
                _pool_map(
                    pool,
                    _enumerate_block,
                    [(db, ft, ff) for ft, ff in dispatched],
                )
                if pool is not None
                else None
            )
            if results is None:  # no pool, or the pool died: do it here
                results = [
                    models_in_block(db, ft, ff) for ft, ff in dispatched
                ]
            chunks.extend(results)
        for ft, ff in crashed:
            RUNTIME_STATS.inc("worker_crashes_recovered")
            chunks.append(models_in_block(db, ft, ff))
        atoms = sorted(db.vocabulary)
        rank = {a: i for i, a in enumerate(atoms)}
        merged = [m for chunk in chunks for m in chunk]
        merged.sort(key=lambda m: sum(1 << rank[a] for a in m))
        span.set_attributes(models=len(merged), crashed_blocks=len(crashed))
        return merged


def _minimality_chunk(
    args: Tuple[List[Interpretation], List[Interpretation]],
) -> List[Interpretation]:
    candidates, universe = args
    return [
        m for m in candidates if not any(other < m for other in universe)
    ]


def parallel_minimal_models(
    db: DisjunctiveDatabase, max_workers: Optional[int] = None
) -> List[Interpretation]:
    """``MM(DB)`` by parallel enumeration plus a parallel pairwise
    minimality filter (equals
    :func:`~repro.models.enumeration.minimal_models_brute` as a set).
    A database whose clause graph is disconnected is decomposed first and
    the answer assembled as a per-component product — each component's
    sweep is ``2^|Vᵢ|`` instead of ``2^|V|``.  Serial under an active
    budget scope; crash-injected or broken-pool chunks are recovered
    serially."""
    workers = default_workers() if max_workers is None else max_workers
    if (
        workers <= 1
        or len(db.vocabulary) < MIN_PARALLEL_ATOMS
        or current_scope() is not None
    ):
        return minimal_models_brute(db)
    from ..models.enumeration import _rank_order
    from ..sat.decompose import decompose, product_interpretations

    with _trace.active_tracer().span(
        "parallel.minimal_models",
        workers=workers,
        atoms=len(db.vocabulary),
    ) as span:
        parts = decompose(db)
        if parts is not None:
            span.set_attribute("components", len(parts))
            per_part = [
                parallel_minimal_models(part, max_workers=workers)
                for part in parts
            ]
            return _rank_order(db, product_interpretations(per_part))
        models = parallel_all_models(db, max_workers=workers)
        if not models:
            return []
        chunk_size = max(1, (len(models) + workers - 1) // workers)
        chunks = [
            models[i : i + chunk_size]
            for i in range(0, len(models), chunk_size)
        ]
        dispatched, crashed = [], []
        for chunk in chunks:
            (crashed if maybe_crash_worker() else dispatched).append(chunk)
        pool = _make_pool(workers) if dispatched else None
        filtered: List[List[Interpretation]] = []
        if dispatched:
            results = (
                _pool_map(
                    pool,
                    _minimality_chunk,
                    [(chunk, models) for chunk in dispatched],
                )
                if pool is not None
                else None
            )
            if results is None:
                results = [
                    _minimality_chunk((chunk, models))
                    for chunk in dispatched
                ]
            filtered.extend(results)
        for chunk in crashed:
            RUNTIME_STATS.inc("worker_crashes_recovered")
            filtered.append(_minimality_chunk((chunk, models)))
        span.set_attributes(crashed_chunks=len(crashed))
        return [m for chunk in filtered for m in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map a picklable function over items with a process pool.

    The benchmark suites use this to fan out per-instance work (one
    database per task).  Order is preserved.  Serial fallback when the
    pool is unavailable, ``max_workers <= 1``, or a budget scope is
    active; items whose dispatch is crash-injected (or lost to a broken
    pool) are recomputed serially in the parent, still in order.
    """
    items = list(items)
    workers = default_workers() if max_workers is None else max_workers
    if workers <= 1 or len(items) <= 1 or current_scope() is not None:
        return [fn(item) for item in items]
    dispatched, crashed_indices = [], []
    for index, item in enumerate(items):
        if maybe_crash_worker():
            crashed_indices.append(index)
        else:
            dispatched.append((index, item))
    pool = _make_pool(min(workers, max(1, len(dispatched))))
    results: List = [None] * len(items)
    if dispatched:
        mapped = (
            _pool_map(pool, fn, [item for _, item in dispatched])
            if pool is not None
            else None
        )
        if mapped is None:
            mapped = [fn(item) for _, item in dispatched]
        for (index, _), value in zip(dispatched, mapped):
            results[index] = value
    for index in crashed_indices:
        RUNTIME_STATS.inc("worker_crashes_recovered")
        results[index] = fn(items[index])
    return results
