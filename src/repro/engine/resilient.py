"""The deadline-governed, fault-tolerant ("resilient") evaluation engine.

:class:`ResilientSemantics` wraps any concrete
:class:`~repro.semantics.base.Semantics` instance and runs every decision
entry point under a :class:`~repro.runtime.budget.Budget`, degrading
gracefully instead of hanging or propagating transient faults.  The
degradation ladder, in order:

1. **retry with backoff** — a transient fault
   (:class:`~repro.runtime.faults.FaultInjected`,
   :class:`~repro.runtime.faults.WorkerCrash`) triggers up to
   ``retry.max_retries`` fresh attempts, sleeping an exponentially
   growing delay between them;
2. **fallback engine** — when the primary keeps faulting, the alternate
   engine (by default the brute enumerator, which shares no SAT-call
   fault surface) answers instead; the value is still *exact*, the
   outcome is merely :attr:`~repro.runtime.outcome.Status.DEGRADED`;
3. **structured timeout** — a tripped budget converts to
   ``Outcome(status=TIMEOUT, partial=<resources spent>)`` rather than an
   unbounded hang;
4. **failure** — no fallback and retries exhausted:
   ``Outcome(status=FAILED)`` carrying the last exception.

Two surfaces:

* :meth:`ResilientSemantics.run` — the non-raising API: always returns an
  :class:`~repro.runtime.outcome.Outcome`;
* the strict :class:`~repro.semantics.base.Semantics` interface
  (``infers`` / ``model_set`` / ...) — returns the plain value for
  ``OK``/``DEGRADED`` outcomes and re-raises the underlying exception
  otherwise, so with faults disabled and an unbounded budget the wrapper
  is answer-for-answer identical to its inner engine.

Obtain instances through ``get_semantics(name, engine="resilient")`` or
``DatabaseSession(db, engine="resilient")`` rather than constructing
directly; the registry routes the ``"resilient"`` engine name here and
supplies the brute fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, Optional, Union

from ..errors import BudgetExceededError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..obs import trace as _trace
from ..runtime.budget import (
    RUNTIME_STATS,
    Budget,
    BudgetExceeded,
    budget_scope,
)
from ..runtime.faults import FaultInjected, WorkerCrash
from ..runtime.outcome import Outcome, Status
from ..sat.incremental import checkout_token
from ..semantics.base import Semantics

#: Exception types the retry ladder treats as transient.
TRANSIENT = (FaultInjected, WorkerCrash)


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient engine retries transient faults.

    Attributes:
        max_retries: additional attempts after the first (0 = one shot).
        backoff_ms: delay before the first retry.
        backoff_factor: multiplier applied to the delay per retry.
        sleeper: the sleep function (injectable so tests run instantly).
    """

    max_retries: int = 2
    backoff_ms: float = 10.0
    backoff_factor: float = 2.0
    sleeper: Callable[[float], None] = field(
        default=time.sleep, compare=False, repr=False
    )

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_ms < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be >= 0")

    def delays_ms(self) -> Iterator[float]:
        """The backoff delay sequence, one entry per retry."""
        delay = self.backoff_ms
        for _ in range(self.max_retries):
            yield delay
            delay *= self.backoff_factor


class ResilientSemantics(Semantics):
    """Deadline-governed, fault-tolerant façade over a semantics instance.

    Args:
        inner: the primary semantics (usually oracle-engined).
        fallback: the alternate engine for the DEGRADED path (``None``
            disables step 2 of the ladder).
        budget: limits enforced on every entry-point call (the neutral
            default never trips).
        retry: the transient-fault :class:`RetryPolicy`.

    Unknown attributes (``p``, ``z``, ``partition``, ...) delegate to
    ``inner``, so the wrapper is a drop-in replacement.
    """

    def __init__(
        self,
        inner: Semantics,
        fallback: Optional[Semantics] = None,
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if isinstance(inner, ResilientSemantics):
            inner = inner.inner
        # Deliberately skip Semantics.__init__: "resilient" is not a
        # concrete decision engine, it is this façade.
        self.inner = inner
        self.fallback = fallback
        self.engine = "resilient"
        self.name = inner.name
        self.aliases = inner.aliases
        self.description = inner.description
        self.budget = budget if budget is not None else Budget()
        self.retry = retry if retry is not None else RetryPolicy()
        self.outcome_counts: Dict[str, int] = {
            s.value: 0 for s in Status
        }

    # ------------------------------------------------------------------
    # The non-raising API
    # ------------------------------------------------------------------
    def run(self, method: str, db: DisjunctiveDatabase, *args) -> Outcome:
        """Run ``inner.<method>(db, *args)`` under the budget and the
        degradation ladder, always returning an
        :class:`~repro.runtime.outcome.Outcome`."""
        # One checkout window per run(): a retry re-acquires the very
        # solver the failed attempt just released, which must not count
        # as a fresh pool reuse in session.stats().
        with checkout_token():
            return self._run_ladder(method, db, *args)

    @staticmethod
    def _event(name: str, **attributes) -> None:
        """Attach a ladder event to the enclosing span, if tracing."""
        tracer = _trace.active_tracer()
        if not tracer.is_noop:
            span = tracer.current()
            if span is not None:
                span.add_event(name, **attributes)

    def _run_ladder(
        self, method: str, db: DisjunctiveDatabase, *args
    ) -> Outcome:
        call = getattr(self.inner, method)
        attempts = 0
        faults = 0
        last_exc: Optional[BaseException] = None
        delays = self.retry.delays_ms()
        while attempts <= self.retry.max_retries:
            attempts += 1
            try:
                with budget_scope(self.budget) as scope:
                    value = call(db, *args)
                    usage = scope.usage()
                return self._record(Outcome(
                    status=Status.OK,
                    value=value,
                    usage=usage,
                    attempts=attempts,
                    engine_used=self.inner.engine,
                    faults=faults,
                ))
            except BudgetExceeded as exc:
                return self._timeout(exc, attempts, faults)
            except TRANSIENT as exc:
                faults += 1
                last_exc = exc
                delay = next(delays, None)
                if delay is not None:
                    RUNTIME_STATS.inc("retries")
                    self._event(
                        "retry",
                        attempt=attempts,
                        delay_ms=delay,
                        fault=type(exc).__name__,
                    )
                    if delay > 0:
                        self.retry.sleeper(delay / 1000.0)
        # Retries exhausted on transient faults: degrade to the fallback
        # engine (which shares no SAT fault surface with the primary).
        if self.fallback is not None:
            RUNTIME_STATS.inc("fallbacks")
            self._event(
                "fallback",
                engine=self.fallback.engine,
                faults=faults,
            )
            try:
                with budget_scope(self.budget) as scope:
                    # static: fallback-edge -- degraded-mode brute dispatch
                    value = getattr(self.fallback, method)(db, *args)
                    usage = scope.usage()
                return self._record(Outcome(
                    status=Status.DEGRADED,
                    value=value,
                    usage=usage,
                    attempts=attempts,
                    engine_used=self.fallback.engine,
                    faults=faults,
                    error=f"primary engine faulted {faults}x: {last_exc}",
                ))
            except BudgetExceeded as exc:
                return self._timeout(exc, attempts, faults)
            except TRANSIENT as exc:
                # A fault plan aggressive enough to break even the
                # fallback (e.g. crash-rate 1.0): report failure.
                faults += 1
                last_exc = exc
        return self._record(Outcome(
            status=Status.FAILED,
            attempts=attempts,
            faults=faults,
            error=f"all retries faulted, no engine answered: {last_exc}",
            exception=last_exc,
        ))

    def _timeout(
        self, exc: BudgetExceeded, attempts: int, faults: int
    ) -> Outcome:
        RUNTIME_STATS.inc("timeouts")
        self._event(
            "timeout", resource=exc.resource, attempts=attempts,
        )
        return self._record(Outcome(
            status=Status.TIMEOUT,
            usage=exc.usage,
            partial=exc.usage,
            attempts=attempts,
            faults=faults,
            error=str(exc),
            exception=exc,
        ))

    def _record(self, outcome: Outcome) -> Outcome:
        self.outcome_counts[outcome.status.value] += 1
        return outcome

    def stats(self) -> Dict[str, int]:
        """Outcome counts of this instance, by terminal status."""
        return dict(self.outcome_counts)

    # ------------------------------------------------------------------
    # The strict Semantics interface
    # ------------------------------------------------------------------
    def _strict(self, method: str, db: DisjunctiveDatabase, *args):
        outcome = self.run(method, db, *args)
        if outcome.ok:
            return outcome.value
        if outcome.exception is not None:
            raise outcome.exception
        raise BudgetExceededError(  # pragma: no cover - defensive
            outcome.error or "resilient evaluation failed"
        )

    def validate(self, db: DisjunctiveDatabase) -> None:
        # Runs eagerly (outside the ladder) so inapplicable databases
        # raise exactly as they would on the inner engine.
        self.inner.validate(db)

    def cache_params(self):
        return self.inner.cache_params()

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        return self._strict("model_set", db)

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        return self._strict("infers", db, formula)

    def infers_literal(
        self, db: DisjunctiveDatabase, literal: Union[Literal, str]
    ) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        return self._strict("infers_literal", db, literal)

    def infers_brave(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        self.validate(db)
        return self._strict("infers_brave", db, formula)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        return self._strict("has_model", db)

    # ------------------------------------------------------------------
    def __getattr__(self, attr: str):
        # Only reached for attributes not found normally; delegate to the
        # wrapped semantics (partition params, closure helpers, ...).
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return (
            f"ResilientSemantics({self.inner!r}, "
            f"budget={self.budget.render()!r})"
        )
