"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler while
still being able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this package."""


class ParseError(ReproError):
    """A database or formula string could not be parsed.

    Attributes:
        text: the offending input fragment.
        position: character offset of the error in the original input,
            or ``None`` when not applicable.
    """

    def __init__(self, message: str, text: str = "", position: "int | None" = None):
        super().__init__(message)
        self.text = text
        self.position = position


class NotStratifiedError(ReproError):
    """A stratification-requiring operation was applied to an
    unstratifiable database (e.g. ICWA on a database with a negative
    dependency cycle)."""


class NotPositiveError(ReproError):
    """An operation defined only for positive databases (no negation in
    rule bodies) was applied to a database containing negation."""


class InconsistentDatabaseError(ReproError):
    """An operation that requires at least one (classical) model was
    applied to an unsatisfiable database."""


class NoModelError(ReproError):
    """A semantics was asked to produce a model but admits none for the
    given database (e.g. DSM on a database without stable models)."""


class PartitionError(ReproError):
    """An invalid ``(P; Q; Z)`` partition of the vocabulary was supplied
    (overlapping blocks, atoms outside the vocabulary, or missing atoms)."""


class SolverError(ReproError):
    """Internal invariant violation inside a solver component."""


class BudgetExceededError(ReproError):
    """A solver exceeded an explicitly configured resource budget
    (conflicts, oracle calls, or enumerated models)."""


class GroundTruthCapError(ReproError):
    """A definitional (brute-force) procedure refused an instance above
    its safety bound — e.g. PWS split enumeration past ``MAX_SPLITS``.

    Distinct from validation errors: the instance is *legal*, only the
    ground-truth enumeration is too large.  Differential harnesses treat
    this as "ground truth unavailable" rather than an engine
    disagreement."""
