"""Grounding of function-free rules into propositional databases
(beyond-paper convenience; the paper works with already-grounded DBs)."""

from .grounder import Grounder, ground_program
from .rules import Rule, parse_rule, parse_rules
from .terms import PredicateAtom, is_constant, is_variable, parse_predicate_atom

__all__ = [
    "Grounder",
    "ground_program",
    "Rule",
    "parse_rule",
    "parse_rules",
    "PredicateAtom",
    "is_constant",
    "is_variable",
    "parse_predicate_atom",
]
