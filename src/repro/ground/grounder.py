"""Grounding: non-ground programs → propositional disjunctive databases.

The grounder instantiates safe rules over the *active domain* (constants
occurring in the program, optionally extended by the caller) using
relevance-guided backtracking over the positive body: a binding is only
extended with instantiations of the next positive literal that are
*possibly derivable* (their predicate can appear in a head with matching
constants, or they are facts), which keeps the ground program close to
what a semi-naive Datalog grounder would emit without implementing full
stratified evaluation.

Ground atoms become propositional atom names via
:meth:`~repro.ground.terms.PredicateAtom.ground_name` (``move(a,b)``),
which the propositional parser accepts back — grounding round-trips.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import ReproError
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from .rules import Rule, parse_rules
from .terms import PredicateAtom, is_variable


class Grounder:
    """Grounds a set of safe rules over a finite constant domain.

    Args:
        rules: the non-ground program.
        extra_constants: constants to add to the active domain (useful
            when the program mentions none, or for typed domains).
    """

    def __init__(
        self, rules: Iterable[Rule], extra_constants: Iterable[str] = ()
    ):
        self.rules: List[Rule] = list(rules)
        constants: Set[str] = set(extra_constants)
        for rule in self.rules:
            for atom in rule.head + rule.body_pos + rule.body_neg:
                constants.update(
                    t for t in atom.terms if not is_variable(t)
                )
        self.constants: Tuple[str, ...] = tuple(sorted(constants))
        # Head templates per predicate, for the possibly-derivable filter.
        self._head_templates: Dict[str, List[PredicateAtom]] = {}
        for rule in self.rules:
            for atom in rule.head:
                self._head_templates.setdefault(
                    atom.predicate, []
                ).append(atom)

    # ------------------------------------------------------------------
    def _may_be_derivable(self, atom: PredicateAtom) -> bool:
        """Whether a ground atom could ever be made true: some head
        template of its predicate matches it."""
        for template in self._head_templates.get(atom.predicate, ()):
            if len(template.terms) != len(atom.terms):
                continue
            binding: Dict[str, str] = {}
            ok = True
            for pattern, value in zip(template.terms, atom.terms):
                if is_variable(pattern):
                    bound = binding.setdefault(pattern, value)
                    if bound != value:
                        ok = False
                        break
                elif pattern != value:
                    ok = False
                    break
            if ok:
                return True
        return False

    def _instantiations(
        self, rule: Rule
    ) -> Iterator[Dict[str, str]]:
        """All bindings of the rule's variables, pruned by derivability
        of the positive body under the partial binding."""
        variables = sorted(rule.variables)
        if not variables:
            yield {}
            return

        positives = list(rule.body_pos)

        def extend(binding: Dict[str, str], remaining: List[str]
                   ) -> Iterator[Dict[str, str]]:
            if not remaining:
                yield dict(binding)
                return
            variable = remaining[0]
            for constant in self.constants:
                binding[variable] = constant
                # Prune: every fully-bound positive literal must be
                # possibly derivable.
                consistent = True
                for atom in positives:
                    grounded = atom.substitute(binding)
                    if grounded.is_ground and not self._may_be_derivable(
                        grounded
                    ):
                        consistent = False
                        break
                if consistent:
                    yield from extend(binding, remaining[1:])
            del binding[variable]

        yield from extend({}, variables)

    def ground(self) -> DisjunctiveDatabase:
        """The ground propositional database."""
        if any(r.variables for r in self.rules) and not self.constants:
            raise ReproError(
                "program has variables but the active domain is empty; "
                "pass extra_constants"
            )
        clauses: List[Clause] = []
        for rule in self.rules:
            for binding in self._instantiations(rule):
                head = frozenset(
                    a.substitute(binding).ground_name() for a in rule.head
                )
                body_pos = frozenset(
                    a.substitute(binding).ground_name()
                    for a in rule.body_pos
                )
                body_neg = frozenset(
                    a.substitute(binding).ground_name()
                    for a in rule.body_neg
                )
                clause = Clause(head, body_pos, body_neg)
                if clause.is_tautology():
                    continue
                clauses.append(clause)
        return DisjunctiveDatabase(clauses)


def ground_program(
    text: str, extra_constants: Iterable[str] = ()
) -> DisjunctiveDatabase:
    """Parse and ground a non-ground program in one call."""
    return Grounder(parse_rules(text), extra_constants).ground()
