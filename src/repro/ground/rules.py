"""Non-ground rules and their parser.

Surface syntax mirrors the propositional one, with uppercase variables::

    win(X) :- move(X, Y), not win(Y).
    move(a, b).  move(b, c).
    p(X) | q(X) :- node(X).
    :- p(X), q(X).

Rules must be *safe*: every variable of the head and of negative body
literals occurs in some positive body literal (the standard Datalog
safety condition guaranteeing finite, domain-independent grounding).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..errors import ParseError
from .terms import PredicateAtom, parse_predicate_atom

_COMMENT_RE = re.compile(r"[%#][^\n]*")


@dataclass(frozen=True)
class Rule:
    """A non-ground disjunctive rule."""

    head: Tuple[PredicateAtom, ...]
    body_pos: Tuple[PredicateAtom, ...] = ()
    body_neg: Tuple[PredicateAtom, ...] = ()

    @property
    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for atom in self.head + self.body_pos + self.body_neg:
            result |= atom.variables
        return result

    @property
    def is_fact(self) -> bool:
        return not self.body_pos and not self.body_neg

    def check_safety(self) -> None:
        """Raise :class:`~repro.errors.ParseError` for unsafe rules."""
        bound: FrozenSet[str] = frozenset()
        for atom in self.body_pos:
            bound |= atom.variables
        unsafe = (self.variables - bound)
        if unsafe:
            raise ParseError(
                f"unsafe rule (variables {sorted(unsafe)} not bound by a "
                f"positive body literal): {self}"
            )

    def __str__(self) -> str:
        head = " | ".join(str(a) for a in self.head)
        body = [str(a) for a in self.body_pos]
        body += ["not " + str(a) for a in self.body_neg]
        if not body:
            return f"{head}." if head else ":- ."
        prefix = f"{head} :- " if head else ":- "
        return prefix + ", ".join(body) + "."


def _split_commas_outside_parens(text: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def parse_rule(text: str) -> Rule:
    """Parse one non-ground rule (trailing ``.`` optional)."""
    original = text
    text = _COMMENT_RE.sub("", text).strip()
    if text.endswith("."):
        text = text[:-1].strip()
    if not text:
        raise ParseError("empty rule", original)
    if ":-" in text:
        head_text, _, body_text = text.partition(":-")
    else:
        head_text, body_text = text, ""

    head: List[PredicateAtom] = []
    head_text = head_text.strip()
    if head_text:
        for part in re.split(r"[|;]", head_text):
            head.append(parse_predicate_atom(part))

    body_pos: List[PredicateAtom] = []
    body_neg: List[PredicateAtom] = []
    body_text = body_text.strip()
    if body_text:
        for part in _split_commas_outside_parens(body_text):
            part = part.strip()
            if not part:
                raise ParseError("empty body literal", original)
            if part.startswith("not "):
                body_neg.append(parse_predicate_atom(part[4:]))
            elif part.startswith(("~", "¬")):
                body_neg.append(parse_predicate_atom(part[1:]))
            else:
                body_pos.append(parse_predicate_atom(part))

    if not head and not body_pos and not body_neg:
        raise ParseError("rule has neither head nor body", original)
    rule = Rule(tuple(head), tuple(body_pos), tuple(body_neg))
    rule.check_safety()
    return rule


def parse_rules(text: str) -> List[Rule]:
    """Parse a whole non-ground program."""
    cleaned = _COMMENT_RE.sub("", text)
    rules = []
    for statement in cleaned.split("."):
        statement = statement.strip()
        if statement:
            rules.append(parse_rule(statement + "."))
    return rules
