"""First-order (function-free) atoms for the grounder.

The paper restricts itself to propositional databases but frames them as
*grounded* deductive databases ("we limit our analysis to propositional
(i.e. grounded) databases").  This subpackage supplies the grounding
step: function-free rules with variables over a finite constant domain
are instantiated into the propositional :class:`~repro.logic.clause.Clause`
form the rest of the library works on.

Terms are constants (lowercase) or variables (uppercase), following
Datalog convention: ``move(X, Y)`` has variables ``X, Y``;
``move(a, b)`` is ground.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from ..errors import ParseError

_CONSTANT_RE = re.compile(r"[a-z0-9_][a-zA-Z0-9_]*")
_VARIABLE_RE = re.compile(r"[A-Z][a-zA-Z0-9_]*")
_PREDICATE_RE = re.compile(r"[a-z_][a-zA-Z0-9_]*")


def is_variable(term: str) -> bool:
    """Whether ``term`` is a variable (uppercase initial)."""
    return bool(term) and term[0].isupper()


def is_constant(term: str) -> bool:
    """Whether ``term`` is a constant (lowercase initial or digit)."""
    return bool(term) and not term[0].isupper()


@dataclass(frozen=True)
class PredicateAtom:
    """A predicate applied to terms: ``move(X, b)``.

    Attributes:
        predicate: the predicate symbol.
        terms: constants and variables, in order (may be empty for a
            propositional atom).
    """

    predicate: str
    terms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _PREDICATE_RE.fullmatch(self.predicate):
            raise ParseError(f"invalid predicate name {self.predicate!r}")
        for term in self.terms:
            if not (_CONSTANT_RE.fullmatch(term)
                    or _VARIABLE_RE.fullmatch(term)):
                raise ParseError(f"invalid term {term!r}")

    @property
    def variables(self) -> FrozenSet[str]:
        """The variables occurring in the atom."""
        return frozenset(t for t in self.terms if is_variable(t))

    @property
    def is_ground(self) -> bool:
        """Whether no variables occur."""
        return not self.variables

    def substitute(self, binding: Mapping[str, str]) -> "PredicateAtom":
        """Apply a variable binding (unbound variables stay)."""
        return PredicateAtom(
            self.predicate,
            tuple(binding.get(t, t) for t in self.terms),
        )

    def ground_name(self) -> str:
        """The propositional atom name of a ground instance."""
        if not self.is_ground:
            raise ParseError(f"atom {self} is not ground")
        if not self.terms:
            return self.predicate
        return f"{self.predicate}({','.join(self.terms)})"

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        return f"{self.predicate}({', '.join(self.terms)})"


def parse_predicate_atom(text: str) -> PredicateAtom:
    """Parse ``pred`` or ``pred(t1, ..., tn)``."""
    text = text.strip()
    match = re.fullmatch(
        r"([a-z_][a-zA-Z0-9_]*)\s*(?:\(([^()]*)\))?", text
    )
    if match is None:
        raise ParseError(f"invalid predicate atom {text!r}")
    predicate, args = match.group(1), match.group(2)
    if args is None:
        return PredicateAtom(predicate)
    terms = tuple(t.strip() for t in args.split(",")) if args.strip() else ()
    if any(not t for t in terms):
        raise ParseError(f"empty term in {text!r}")
    return PredicateAtom(predicate, terms)
