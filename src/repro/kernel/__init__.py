"""Bitset evaluation kernel.

Packs interpretations and clauses into Python ints over a per-database
atom index so the hot primitives of the brute enumerators and the
minimal-model machinery (clause satisfaction, subsumption, the
decomposition product law) run as mask arithmetic.  See
:mod:`repro.kernel.bitset` for the representation contract and the
``REPRO_KERNEL=pure`` escape hatch.
"""

from .bitset import (
    KERNEL_ENV_VAR,
    AtomTable,
    PackedDatabase,
    atom_table_for,
    clause_satisfied,
    force_kernel,
    is_proper_submask,
    kernel_enabled,
    packed_database_for,
    product_or_masks,
    subsets_in_table_order,
)

__all__ = [
    "KERNEL_ENV_VAR",
    "AtomTable",
    "PackedDatabase",
    "atom_table_for",
    "clause_satisfied",
    "force_kernel",
    "is_proper_submask",
    "kernel_enabled",
    "packed_database_for",
    "product_or_masks",
    "subsets_in_table_order",
]
