"""Bitset-packed interpretations and clauses.

The brute enumerators and the minimal-model machinery spend their time
in three primitive operations — clause satisfaction, subset/subsumption
tests, and the decomposition product law — and all of them collapse to
single-word integer arithmetic once interpretations are packed into
Python ints over a fixed per-database atom order.

:class:`AtomTable` fixes that order: bit ``i`` is the ``i``-th atom of
``sorted(vocabulary)``, which makes the numeric value of a packed
interpretation *identical* to the binary-counter rank used by
:func:`repro.logic.interpretation.all_interpretations` and by the serial
enumerator's ``_rank_order`` — mask order **is** enumeration order, so
the bitset and pure paths produce byte-identical output sequences.

:class:`PackedDatabase` packs every clause into an ``(head, body_pos,
body_neg)`` mask triple; classical satisfaction of a candidate mask
``m`` is then three ANDs per clause::

    body fires   iff  (body_pos & m) == body_pos and not (body_neg & m)
    clause holds iff  body does not fire, or (head & m) != 0

Both objects are pure functions of the database and are memoized in the
process-wide engine cache exactly like the CNF translation
(:func:`atom_table_for` / :func:`packed_database_for`).

The representation is switchable at runtime: ``REPRO_KERNEL=pure`` in
the environment (or the :func:`force_kernel` context manager, which
wins over the environment) forces the historical frozenset path.  The
switch affects the *internal representation only* — never planner
routing, oracle accounting or output order — so golden plans and
certifier envelopes are identical under either mode.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation

#: Environment variable of the escape hatch; any value other than
#: ``"pure"`` (case-insensitive) leaves the bitset kernel on.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Context-local override set by :func:`force_kernel`; ``None`` defers
#: to the environment.
_FORCED_MODE: "ContextVar[Optional[str]]" = ContextVar(
    "repro_kernel_mode", default=None
)

_MODES = ("bitset", "pure")


def kernel_enabled() -> bool:
    """Whether mask-based internals are active in this context.

    :func:`force_kernel` overrides take precedence; otherwise the
    ``REPRO_KERNEL`` environment variable decides (``pure`` disables,
    anything else — including unset — enables).  Read per call, so test
    monkeypatching of the environment takes effect immediately.
    """
    forced = _FORCED_MODE.get()
    if forced is not None:
        return forced != "pure"
    return os.environ.get(KERNEL_ENV_VAR, "bitset").lower() != "pure"


@contextmanager
def force_kernel(mode: str) -> Iterator[None]:
    """Force ``"bitset"`` or ``"pure"`` internals within a ``with`` block.

    Context-local (safe under threads and nested blocks); used by the
    differential kernel leg to run one engine on the *opposite*
    representation of the ambient mode, and by the equivalence tests.
    """
    if mode not in _MODES:
        raise ValueError(f"kernel mode must be one of {_MODES}, got {mode!r}")
    token = _FORCED_MODE.set(mode)
    try:
        yield
    finally:
        _FORCED_MODE.reset(token)


class AtomTable:
    """A fixed bijection between a vocabulary and bit positions.

    Bit ``i`` of a packed mask is the ``i``-th atom of the sorted
    vocabulary, so packed masks sort exactly like the binary-counter
    enumeration order of ``all_interpretations``.
    """

    __slots__ = ("atoms", "index", "full_mask")

    def __init__(self, vocabulary: Iterable[str]):
        self.atoms: Tuple[str, ...] = tuple(sorted(vocabulary))
        self.index: Dict[str, int] = {
            atom: i for i, atom in enumerate(self.atoms)
        }
        self.full_mask: int = (1 << len(self.atoms)) - 1

    def __len__(self) -> int:
        return len(self.atoms)

    def bit(self, atom: str) -> int:
        """The single-bit mask of one atom."""
        return 1 << self.index[atom]

    def pack(self, atoms: Iterable[str]) -> int:
        """The mask of a set of atoms (each must be in the table)."""
        index = self.index
        mask = 0
        for atom in atoms:
            mask |= 1 << index[atom]
        return mask

    def unpack(self, mask: int) -> Interpretation:
        """The :class:`Interpretation` a mask denotes."""
        atoms = self.atoms
        return Interpretation(
            atoms[i] for i in range(len(atoms)) if mask >> i & 1
        )

    def iter_atoms(self, mask: int) -> Iterator[str]:
        """The atoms of a mask in table (= sorted) order."""
        atoms = self.atoms
        for i in range(len(atoms)):
            if mask >> i & 1:
                yield atoms[i]


class PackedDatabase:
    """A database's clauses as ``(head, body_pos, body_neg)`` mask triples.

    Clause order is the database's canonical (sorted) order, matching
    :func:`repro.engine.cache.classical_clauses_for`.
    """

    __slots__ = ("table", "clauses")

    def __init__(
        self, db: DisjunctiveDatabase, table: Optional[AtomTable] = None
    ):
        self.table = table if table is not None else AtomTable(db.vocabulary)
        pack = self.table.pack
        self.clauses: Tuple[Tuple[int, int, int], ...] = tuple(
            (pack(c.head), pack(c.body_pos), pack(c.body_neg)) for c in db
        )

    def is_model(self, mask: int) -> bool:
        """Classical satisfaction of every clause by a candidate mask."""
        for head, body_pos, body_neg in self.clauses:
            if (
                (body_pos & mask) == body_pos
                and not (body_neg & mask)
                and not (head & mask)
            ):
                return False
        return True


def clause_satisfied(
    packed_clause: Tuple[int, int, int], mask: int
) -> bool:
    """Mask form of :meth:`repro.logic.clause.Clause.satisfied_by`."""
    head, body_pos, body_neg = packed_clause
    return (
        (body_pos & mask) != body_pos
        or bool(body_neg & mask)
        or bool(head & mask)
    )


def is_proper_submask(smaller: int, larger: int) -> bool:
    """Mask form of proper-subset comparison (``smaller < larger``)."""
    return smaller != larger and (smaller & larger) == smaller


def product_or_masks(parts: Sequence[Sequence[int]]) -> List[int]:
    """The decomposition product law on masks.

    Each part's masks live over a disjoint atom support, so the product
    of per-component model sets is the OR of one choice per part —
    ``MM(DB) = ⨂ MM(DBᵢ)`` becomes pure integer arithmetic.  Choices
    iterate in :func:`itertools.product` order, matching
    :func:`repro.sat.decompose.product_interpretations`.
    """
    import itertools

    out = []
    for choice in itertools.product(*parts):
        mask = 0
        for part_mask in choice:
            mask |= part_mask
        out.append(mask)
    return out


def subsets_in_table_order(
    table: AtomTable, atoms: Iterable[str]
) -> Iterator[Interpretation]:
    """All subsets of ``atoms`` in the shared table's enumeration order.

    The local binary counter runs over the atoms sorted by their table
    bit position; because bit positions are themselves sorted-atom
    order, this is simultaneously (a) the historical
    ``sorted(atoms)``-counter order of the pure path and (b) increasing
    packed-mask order — one deterministic order for both
    representations (the ``_iter_product`` free-atom contract).
    """
    ordered = sorted(atoms, key=table.index.__getitem__)
    for mask in range(1 << len(ordered)):
        yield Interpretation(
            ordered[i] for i in range(len(ordered)) if mask >> i & 1
        )


# ----------------------------------------------------------------------
# Memoized accessors (cached like the CNF translation; see
# repro.engine.cache for the store and its statistics).
# ----------------------------------------------------------------------
def atom_table_for(db: DisjunctiveDatabase) -> AtomTable:
    """The per-database :class:`AtomTable`, memoized."""
    from ..engine.cache import ENGINE_CACHE

    return ENGINE_CACHE.get_or_compute(
        "atom_table", db, lambda: AtomTable(db.vocabulary)
    )


def packed_database_for(db: DisjunctiveDatabase) -> PackedDatabase:
    """The per-database :class:`PackedDatabase`, memoized.

    Shares the memoized :func:`atom_table_for` table so every packed
    object over one database agrees on bit positions.
    """
    from ..engine.cache import ENGINE_CACHE

    return ENGINE_CACHE.get_or_compute(
        "packed_db", db, lambda: PackedDatabase(db, atom_table_for(db))
    )
