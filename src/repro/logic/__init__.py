"""Propositional logic core: atoms, clauses, databases, formulas, CNF.

This package is the substrate everything else builds on.  The central
types are :class:`~repro.logic.clause.Clause` (a disjunctive database
clause), :class:`~repro.logic.database.DisjunctiveDatabase`, the formula
AST in :mod:`repro.logic.formula`, and the 2-/3-valued interpretations in
:mod:`repro.logic.interpretation`.
"""

from .atoms import Literal, atoms_of, is_valid_atom
from .clause import Clause
from .cnf import (
    Cnf,
    CnfClause,
    clause_to_cnf,
    cnf_atoms,
    database_to_cnf,
    formula_to_cnf_naive,
    tseitin,
)
from .database import DisjunctiveDatabase, database
from .dimacs import from_dimacs, to_dimacs
from .formula import (
    BOTTOM,
    FALSE3,
    TOP,
    TRUE3,
    UNDEF3,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    lit,
    negation_normal_form,
)
from .interpretation import (
    Interpretation,
    ThreeValuedInterpretation,
    all_interpretations,
    all_three_valued,
    interp,
)
from .parser import parse_clause, parse_database, parse_formula
from .serialize import (
    clause_from_dict,
    clause_to_dict,
    database_from_dict,
    database_to_dict,
    formula_from_dict,
    formula_to_dict,
)
from .transform import (
    ValuedClause,
    gl_reduct,
    rename_atoms,
    shift_negation_to_head,
    split_count,
    split_programs,
    three_valued_reduct,
)

__all__ = [
    "Literal",
    "atoms_of",
    "is_valid_atom",
    "Clause",
    "Cnf",
    "CnfClause",
    "clause_to_cnf",
    "cnf_atoms",
    "database_to_cnf",
    "formula_to_cnf_naive",
    "tseitin",
    "DisjunctiveDatabase",
    "database",
    "from_dimacs",
    "to_dimacs",
    "BOTTOM",
    "FALSE3",
    "TOP",
    "TRUE3",
    "UNDEF3",
    "And",
    "Bottom",
    "Formula",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "Top",
    "Var",
    "conj",
    "disj",
    "lit",
    "negation_normal_form",
    "Interpretation",
    "ThreeValuedInterpretation",
    "all_interpretations",
    "all_three_valued",
    "interp",
    "clause_from_dict",
    "clause_to_dict",
    "database_from_dict",
    "database_to_dict",
    "formula_from_dict",
    "formula_to_dict",
    "parse_clause",
    "parse_database",
    "parse_formula",
    "ValuedClause",
    "gl_reduct",
    "rename_atoms",
    "shift_negation_to_head",
    "split_count",
    "split_programs",
    "three_valued_reduct",
]
