"""Atoms and literals.

Atoms are plain strings (``"a"``, ``"x1"``, ``"broken(valve)"`` after
grounding).  A :class:`Literal` pairs an atom with a sign.  Literals are
immutable, hashable, and totally ordered (negative before positive on the
same atom, atoms alphabetically) so that sets of literals print
deterministically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

#: Regular expression for syntactically valid atom names in the surface
#: syntax: an identifier optionally followed by a parenthesised argument
#: list (produced by the grounder).
ATOM_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*(\([a-zA-Z0-9_,\s]*\))?")


def is_valid_atom(name: str) -> bool:
    """Return whether ``name`` is usable as an atom in the surface syntax."""
    match = ATOM_RE.fullmatch(name)
    return match is not None


@dataclass(frozen=True, order=False)
class Literal:
    """A signed atom.

    Attributes:
        atom: the underlying propositional variable name.
        positive: ``True`` for the atom itself, ``False`` for its negation.
    """

    atom: str
    positive: bool = True

    def __neg__(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.atom, not self.positive)

    @property
    def negated(self) -> "Literal":
        """Alias for ``-self``."""
        return -self

    def __str__(self) -> str:
        return self.atom if self.positive else "not " + self.atom

    def __repr__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"Literal({sign}{self.atom})"

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (self.atom, self.positive) < (other.atom, other.positive)

    def __le__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (self.atom, self.positive) <= (other.atom, other.positive)

    @staticmethod
    def pos(atom: str) -> "Literal":
        """The positive literal on ``atom``."""
        return Literal(atom, True)

    @staticmethod
    def neg(atom: str) -> "Literal":
        """The negative literal on ``atom``."""
        return Literal(atom, False)

    @staticmethod
    def parse(text: str) -> "Literal":
        """Parse ``"a"``, ``"not a"``, ``"-a"`` or ``"~a"`` into a literal."""
        text = text.strip()
        if text.startswith("not "):
            return Literal(text[4:].strip(), False)
        if text.startswith(("-", "~", "¬")):
            return Literal(text[1:].strip(), False)
        return Literal(text, True)


def atoms_of(literals: Iterable[Literal]) -> "frozenset[str]":
    """The set of atoms mentioned by ``literals``."""
    return frozenset(lit.atom for lit in literals)
