"""Disjunctive database clauses.

A clause (paper, Section 2) has the shape::

    a1 | ... | an :- b1, ..., bk, not c1, ..., not cm.

with ``n, k, m >= 0``.  The ``a``s form the *head* (a disjunction), the
``b``s the *positive body*, and the ``c``s the *negative body*.  A clause
with an empty head (``n = 0``) is an *integrity clause*; a clause with an
empty body is a (disjunctive) *fact*.

Classically, the clause denotes the propositional clause
``a1 v ... v an v -b1 v ... v -bk v c1 v ... v cm`` — an interpretation
``M`` satisfies it iff whenever all ``b``s are true in ``M`` and all ``c``s
are false in ``M``, some ``a`` is true in ``M``.  The nonmonotonic
semantics differ in *which* classical models they select, not in this
satisfaction relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Iterable, Tuple

from .atoms import Literal


def _fset(items: Iterable[str]) -> "frozenset[str]":
    return frozenset(items)


@dataclass(frozen=True)
class Clause:
    """An immutable disjunctive clause ``head :- body_pos, not body_neg``.

    Attributes:
        head: atoms in the disjunctive head (may be empty: integrity clause).
        body_pos: atoms occurring positively in the body.
        body_neg: atoms occurring under ``not`` in the body.
    """

    head: "frozenset[str]" = field(default_factory=frozenset)
    body_pos: "frozenset[str]" = field(default_factory=frozenset)
    body_neg: "frozenset[str]" = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        # Normalize any iterable input into frozensets so equality/hash are
        # structural regardless of how the clause was constructed.
        object.__setattr__(self, "head", _fset(self.head))
        object.__setattr__(self, "body_pos", _fset(self.body_pos))
        object.__setattr__(self, "body_neg", _fset(self.body_neg))

    # ------------------------------------------------------------------
    # Syntactic classification
    # ------------------------------------------------------------------
    @property
    def is_integrity(self) -> bool:
        """Whether the clause has an empty head (a denial)."""
        return not self.head

    @property
    def is_positive(self) -> bool:
        """Whether the body contains no negation."""
        return not self.body_neg

    @property
    def is_fact(self) -> bool:
        """Whether the body is empty (a disjunctive fact)."""
        return not self.body_pos and not self.body_neg

    @property
    def is_horn(self) -> bool:
        """Whether the head has at most one atom and the body no negation."""
        return len(self.head) <= 1 and self.is_positive

    @property
    def is_definite(self) -> bool:
        """Whether the head has exactly one atom and the body no negation."""
        return len(self.head) == 1 and self.is_positive

    @property
    def is_disjunctive(self) -> bool:
        """Whether the head has two or more atoms."""
        return len(self.head) >= 2

    @property
    def atoms(self) -> "frozenset[str]":
        """All atoms occurring anywhere in the clause."""
        return self.head | self.body_pos | self.body_neg

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def body_true_in(self, interpretation: AbstractSet[str]) -> bool:
        """Whether the full body is true in ``interpretation``
        (a set of true atoms; everything else is false)."""
        return self.body_pos <= interpretation and not (
            self.body_neg & interpretation
        )

    def satisfied_by(self, interpretation: AbstractSet[str]) -> bool:
        """Classical satisfaction: body true implies some head atom true."""
        if not self.body_true_in(interpretation):
            return True
        return bool(self.head & interpretation)

    def to_classical_literals(self) -> "Tuple[Literal, ...]":
        """The clause as a classical disjunction of literals.

        Heads and negated body atoms occur positively; positive body atoms
        occur negatively.  Sorted for determinism.
        """
        literals = (
            [Literal.pos(a) for a in self.head]
            + [Literal.neg(b) for b in self.body_pos]
            + [Literal.pos(c) for c in self.body_neg]
        )
        return tuple(sorted(literals))

    def to_formula(self):
        """The clause as a :class:`~repro.logic.formula.Formula`
        (classical disjunction of its literals)."""
        from .formula import Not, Var, disj

        parts = [Var(a) for a in sorted(self.head)]
        parts += [Not(Var(b)) for b in sorted(self.body_pos)]
        parts += [Var(c) for c in sorted(self.body_neg)]
        return disj(parts)

    def is_tautology(self) -> bool:
        """Whether the clause is classically valid (e.g. ``a :- a`` or a
        clause whose head intersects its positive body, or whose head
        shares an atom with... the negative body making it vacuous)."""
        # head & body_pos: if the shared atom is true the head is true; if
        # it is false the body is false.  head & body_neg does NOT make a
        # tautology (e.g. ``a :- not a`` excludes models where a is false).
        return bool(self.head & self.body_pos)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def fact(*head: str) -> "Clause":
        """A disjunctive fact ``a1 | ... | an.``"""
        return Clause(head=frozenset(head))

    @staticmethod
    def rule(
        head: Iterable[str],
        body_pos: Iterable[str] = (),
        body_neg: Iterable[str] = (),
    ) -> "Clause":
        """General constructor accepting any iterables of atom names."""
        return Clause(frozenset(head), frozenset(body_pos), frozenset(body_neg))

    @staticmethod
    def integrity(body_pos: Iterable[str], body_neg: Iterable[str] = ()) -> "Clause":
        """An integrity clause ``:- b1, ..., bk, not c1, ..., not cm.``"""
        return Clause(frozenset(), frozenset(body_pos), frozenset(body_neg))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        head = " | ".join(sorted(self.head))
        body_parts = sorted(self.body_pos) + [
            "not " + c for c in sorted(self.body_neg)
        ]
        body = ", ".join(body_parts)
        if not body:
            return f"{head}." if head else ":- ."
        if not head:
            return f":- {body}."
        return f"{head} :- {body}."

    def __repr__(self) -> str:
        return f"Clause({self})"

    def __lt__(self, other: "Clause") -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return str(self) < str(other)
