"""Conversion to conjunctive normal form.

Two converters are provided:

* :func:`formula_to_cnf_naive` — textbook distribution.  Equivalent (not
  just equisatisfiable) but worst-case exponential; used as ground truth in
  tests and for small formulas.
* :func:`tseitin` — linear-size Tseitin transformation introducing fresh
  definition atoms.  Equisatisfiable, and models restricted to the original
  atoms are exactly the models of the input; used for all SAT queries.

A symbolic CNF is a list of clauses, each a frozenset of
:class:`~repro.logic.atoms.Literal`.  The SAT layer interns these into
integer form.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Tuple

from .atoms import Literal
from .clause import Clause
from .database import DisjunctiveDatabase
from .formula import (
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    negation_normal_form,
)

CnfClause = FrozenSet[Literal]
Cnf = List[CnfClause]

#: Prefix of Tseitin definition atoms; chosen to be un-parseable on purpose
#: would break round-trips, so we keep it a legal identifier and simply
#: reserve the prefix.
TSEITIN_PREFIX = "__ts"


def database_to_cnf(db: DisjunctiveDatabase) -> Cnf:
    """The classical clause form of a database (no fresh atoms needed —
    database clauses already *are* clauses).

    The translation is memoized process-wide (it is a pure function of
    the immutable database); the returned list is a fresh copy, so
    callers may extend it freely.
    """
    from ..engine.cache import database_cnf_for

    return list(database_cnf_for(db))


def clause_to_cnf(clause: Clause) -> CnfClause:
    """The classical clause form of one database clause."""
    return frozenset(clause.to_classical_literals())


def _is_tautological(clause: "frozenset[Literal]") -> bool:
    atoms_pos = {l.atom for l in clause if l.positive}
    atoms_neg = {l.atom for l in clause if not l.positive}
    return bool(atoms_pos & atoms_neg)


def formula_to_cnf_naive(formula: Formula) -> Cnf:
    """Distribute an NNF formula into CNF (equivalent; may blow up).

    Tautological clauses are dropped; an empty list means the formula is
    valid, a list containing the empty clause means it is unsatisfiable.
    """
    nnf = negation_normal_form(formula)
    clauses = _distribute(nnf)
    return [c for c in clauses if not _is_tautological(c)]


def _distribute(formula: Formula) -> Cnf:
    if isinstance(formula, Top):
        return []
    if isinstance(formula, Bottom):
        return [frozenset()]
    if isinstance(formula, Var):
        return [frozenset((Literal.pos(formula.name),))]
    if isinstance(formula, Not):
        operand = formula.operand
        if isinstance(operand, Var):
            return [frozenset((Literal.neg(operand.name),))]
        raise ValueError("input to _distribute must be in NNF")
    if isinstance(formula, And):
        result: Cnf = []
        for op in formula.operands:
            result.extend(_distribute(op))
        return result
    if isinstance(formula, Or):
        operand_cnfs = [_distribute(op) for op in formula.operands]
        # A disjunct that is valid (empty CNF) makes the whole Or valid.
        if any(not cnf for cnf in operand_cnfs):
            return []
        result = []
        for combo in itertools.product(*operand_cnfs):
            merged: FrozenSet[Literal] = frozenset().union(*combo)
            result.append(merged)
        return result
    raise ValueError(f"formula not in NNF: {formula!r}")


class _FreshAtoms:
    """Generates fresh Tseitin atoms avoiding a given vocabulary."""

    def __init__(self, avoid: Iterable[str], prefix: str = TSEITIN_PREFIX):
        self._avoid = set(avoid)
        self._prefix = prefix
        self._counter = 0

    def fresh(self) -> str:
        while True:
            name = f"{self._prefix}{self._counter}"
            self._counter += 1
            if name not in self._avoid:
                self._avoid.add(name)
                return name


def tseitin(
    formula: Formula, avoid: Iterable[str] = ()
) -> Tuple[Cnf, Literal, "frozenset[str]"]:
    """Tseitin-encode ``formula``.

    Returns ``(clauses, root, aux_atoms)`` where ``clauses ∧ root`` is
    equisatisfiable with the formula, ``root`` is the literal naming the
    formula, and ``aux_atoms`` are the introduced definition atoms.  The
    caller typically asserts ``root`` as a unit clause; to assert the
    *negation* of the formula assert ``-root`` instead — the definitional
    clauses are emitted in both polarities so either direction is sound.

    Args:
        formula: the formula to encode.
        avoid: extra atom names the fresh atoms must not collide with
            (e.g. the database vocabulary).
    """
    fresh = _FreshAtoms(set(formula.atoms()) | set(avoid))
    clauses: Cnf = []
    aux: set = set()

    def encode(node: Formula) -> Literal:
        if isinstance(node, Var):
            return Literal.pos(node.name)
        if isinstance(node, Top):
            atom = fresh.fresh()
            aux.add(atom)
            clauses.append(frozenset((Literal.pos(atom),)))
            return Literal.pos(atom)
        if isinstance(node, Bottom):
            atom = fresh.fresh()
            aux.add(atom)
            clauses.append(frozenset((Literal.neg(atom),)))
            return Literal.pos(atom)
        if isinstance(node, Not):
            return -encode(node.operand)
        if isinstance(node, And):
            parts = [encode(op) for op in node.operands]
            out = Literal.pos(fresh.fresh())
            aux.add(out.atom)
            # out -> each part ; all parts -> out
            for part in parts:
                clauses.append(frozenset((-out, part)))
            clauses.append(frozenset([out] + [-p for p in parts]))
            return out
        if isinstance(node, Or):
            parts = [encode(op) for op in node.operands]
            out = Literal.pos(fresh.fresh())
            aux.add(out.atom)
            # each part -> out ; out -> some part
            for part in parts:
                clauses.append(frozenset((out, -part)))
            clauses.append(frozenset([-out] + list(parts)))
            return out
        if isinstance(node, Implies):
            return encode(Or(Not(node.antecedent), node.consequent))
        if isinstance(node, Iff):
            a = encode(node.left)
            b = encode(node.right)
            out = Literal.pos(fresh.fresh())
            aux.add(out.atom)
            clauses.append(frozenset((-out, -a, b)))
            clauses.append(frozenset((-out, a, -b)))
            clauses.append(frozenset((out, a, b)))
            clauses.append(frozenset((out, -a, -b)))
            return out
        raise TypeError(f"unknown formula node: {node!r}")

    root = encode(formula)
    return clauses, root, frozenset(aux)


def cnf_atoms(cnf: Cnf) -> "frozenset[str]":
    """All atoms occurring in a symbolic CNF."""
    return frozenset(l.atom for clause in cnf for l in clause)
