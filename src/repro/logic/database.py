"""Disjunctive databases.

A :class:`DisjunctiveDatabase` is a finite set of clauses over a finite
vocabulary of propositional variables, following the paper's Section 2 and
the classification of Fernandez & Minker [9]:

* **DDDB** (disjunctive deductive database): no negation in bodies,
  i.e. ``DB ⊆ C+``.  The paper's Table 1 additionally excludes integrity
  clauses ("positive" databases).
* **DSDB** (disjunctive stratified database): negation only across strata
  (see :mod:`repro.semantics.stratification`).
* **DNDB** (disjunctive normal database): arbitrary clauses.

The vocabulary may strictly contain the atoms occurring in clauses (the
paper's ``V``); interpretations range over the vocabulary.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..errors import PartitionError
from .clause import Clause


class DisjunctiveDatabase:
    """An immutable propositional disjunctive database.

    Args:
        clauses: the clauses of the database (duplicates collapse).
        vocabulary: the variable universe ``V``.  Defaults to the atoms
            occurring in the clauses; if given, it must contain them.

    The database behaves as a sized, iterable, hashable collection of
    clauses.  Equality is structural on ``(clauses, vocabulary)``.
    """

    __slots__ = ("_clauses", "_vocabulary", "_hash")

    def __init__(
        self,
        clauses: Iterable[Clause] = (),
        vocabulary: Optional[Iterable[str]] = None,
    ):
        clause_set = frozenset(clauses)
        occurring = frozenset(a for c in clause_set for a in c.atoms)
        if vocabulary is None:
            vocab = occurring
        else:
            vocab = frozenset(vocabulary)
            missing = occurring - vocab
            if missing:
                raise PartitionError(
                    "vocabulary does not cover clause atoms: "
                    + ", ".join(sorted(missing))
                )
        self._clauses: FrozenSet[Clause] = clause_set
        self._vocabulary: FrozenSet[str] = vocab
        self._hash = hash((self._clauses, self._vocabulary))

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> FrozenSet[Clause]:
        """The clause set."""
        return self._clauses

    @property
    def vocabulary(self) -> FrozenSet[str]:
        """The variable universe ``V``."""
        return self._vocabulary

    def __iter__(self) -> Iterator[Clause]:
        return iter(sorted(self._clauses))

    def __len__(self) -> int:
        return len(self._clauses)

    def __contains__(self, clause: object) -> bool:
        return clause in self._clauses

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DisjunctiveDatabase):
            return NotImplemented
        return (
            self._clauses == other._clauses
            and self._vocabulary == other._vocabulary
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self)

    def __repr__(self) -> str:
        return (
            f"DisjunctiveDatabase({len(self._clauses)} clauses, "
            f"|V|={len(self._vocabulary)})"
        )

    # ------------------------------------------------------------------
    # Syntactic classification (paper Section 2 / [9])
    # ------------------------------------------------------------------
    @property
    def has_negation(self) -> bool:
        """Whether any clause body uses ``not``."""
        return any(c.body_neg for c in self._clauses)

    @property
    def has_integrity_clauses(self) -> bool:
        """Whether any clause has an empty head."""
        return any(c.is_integrity for c in self._clauses)

    @property
    def is_positive(self) -> bool:
        """Table 1 regime: no integrity clauses and no negation."""
        return not self.has_negation and not self.has_integrity_clauses

    @property
    def is_deductive(self) -> bool:
        """DDDB: no negation in bodies (integrity clauses allowed)."""
        return not self.has_negation

    @property
    def is_normal_nondisjunctive(self) -> bool:
        """Whether every head has at most one atom (an NLP / NDDB)."""
        return all(len(c.head) <= 1 for c in self._clauses)

    @property
    def is_horn(self) -> bool:
        """Whether every clause is Horn (<=1 head atom, positive body)."""
        return all(c.is_horn for c in self._clauses)

    @property
    def integrity_clauses(self) -> FrozenSet[Clause]:
        """The integrity (empty-head) clauses."""
        return frozenset(c for c in self._clauses if c.is_integrity)

    @property
    def proper_clauses(self) -> FrozenSet[Clause]:
        """The clauses with a nonempty head."""
        return frozenset(c for c in self._clauses if not c.is_integrity)

    # ------------------------------------------------------------------
    # Basic semantics helpers
    # ------------------------------------------------------------------
    def is_model(self, interpretation: AbstractSet[str]) -> bool:
        """Classical satisfaction of every clause by ``interpretation``
        (given as the set of true atoms)."""
        return all(c.satisfied_by(interpretation) for c in self._clauses)

    def to_formula(self):
        """The database as one conjunctive
        :class:`~repro.logic.formula.Formula` (classical reading)."""
        from .formula import conj

        return conj([c.to_formula() for c in self])

    # ------------------------------------------------------------------
    # Functional updates (databases are immutable)
    # ------------------------------------------------------------------
    def with_clauses(self, extra: Iterable[Clause]) -> "DisjunctiveDatabase":
        """A new database with ``extra`` clauses added (same vocabulary,
        widened if the new clauses mention new atoms)."""
        extra = list(extra)
        new_atoms = frozenset(a for c in extra for a in c.atoms)
        return DisjunctiveDatabase(
            self._clauses | frozenset(extra), self._vocabulary | new_atoms
        )

    def with_vocabulary(self, extra_atoms: Iterable[str]) -> "DisjunctiveDatabase":
        """A new database whose vocabulary additionally contains
        ``extra_atoms``."""
        return DisjunctiveDatabase(
            self._clauses, self._vocabulary | frozenset(extra_atoms)
        )

    def restricted_to_occurring_atoms(self) -> "DisjunctiveDatabase":
        """A copy whose vocabulary is exactly the occurring atoms."""
        return DisjunctiveDatabase(self._clauses)

    # ------------------------------------------------------------------
    # Partitions for CCWA / ECWA / ICWA
    # ------------------------------------------------------------------
    def check_partition(
        self,
        p: Iterable[str],
        q: Iterable[str],
        z: Iterable[str],
    ) -> Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]:
        """Validate that ``(P; Q; Z)`` partitions the vocabulary.

        Returns the three blocks as frozensets.  Raises
        :class:`~repro.errors.PartitionError` otherwise.
        """
        p, q, z = frozenset(p), frozenset(q), frozenset(z)
        if p & q or p & z or q & z:
            raise PartitionError("partition blocks overlap")
        union = p | q | z
        if union != self._vocabulary:
            extra = union - self._vocabulary
            missing = self._vocabulary - union
            detail = []
            if extra:
                detail.append("atoms outside vocabulary: " + ", ".join(sorted(extra)))
            if missing:
                detail.append("uncovered atoms: " + ", ".join(sorted(missing)))
            raise PartitionError("; ".join(detail) or "invalid partition")
        return p, q, z

    # ------------------------------------------------------------------
    # Statistics (for workload reporting)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Simple structural statistics used by the benchmark reports."""
        clauses = self._clauses
        return {
            "clauses": len(clauses),
            "atoms": len(self._vocabulary),
            "facts": sum(1 for c in clauses if c.is_fact),
            "integrity": sum(1 for c in clauses if c.is_integrity),
            "disjunctive": sum(1 for c in clauses if c.is_disjunctive),
            "with_negation": sum(1 for c in clauses if c.body_neg),
            "max_head": max((len(c.head) for c in clauses), default=0),
            "max_body": max(
                (len(c.body_pos) + len(c.body_neg) for c in clauses), default=0
            ),
        }


def database(
    *clauses: Clause, vocabulary: Optional[Iterable[str]] = None
) -> DisjunctiveDatabase:
    """Convenience variadic constructor: ``database(c1, c2, ...)``."""
    return DisjunctiveDatabase(clauses, vocabulary)
