"""DIMACS CNF import/export for interoperability with external tools.

The writer records the atom <-> variable-number mapping in ``c map``
comment lines so that a round-trip preserves atom names.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ParseError
from .atoms import Literal
from .cnf import Cnf


def to_dimacs(cnf: Cnf) -> str:
    """Serialize a symbolic CNF to DIMACS, including the name map."""
    atoms = sorted({l.atom for clause in cnf for l in clause})
    index: Dict[str, int] = {atom: i + 1 for i, atom in enumerate(atoms)}
    lines = [f"c map {number} {atom}" for atom, number in index.items()]
    lines.append(f"p cnf {len(atoms)} {len(cnf)}")
    for clause in cnf:
        numbers = sorted(
            (index[l.atom] if l.positive else -index[l.atom]) for l in clause
        )
        lines.append(" ".join(str(n) for n in numbers) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> Tuple[Cnf, Dict[int, str]]:
    """Parse DIMACS text into a symbolic CNF.

    Variables named in ``c map`` comments get their recorded names; all
    others are named ``v<number>``.  Returns ``(cnf, name_map)``.
    """
    names: Dict[int, str] = {}
    clauses: Cnf = []
    declared: "Tuple[int, int] | None" = None
    current: List[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("c"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "map":
                try:
                    names[int(parts[2])] = parts[3]
                except ValueError as exc:
                    raise ParseError(f"bad map comment: {line!r}") from exc
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ParseError(f"bad problem line: {line!r}")
            declared = (int(parts[2]), int(parts[3]))
            continue
        for token in line.split():
            try:
                number = int(token)
            except ValueError as exc:
                raise ParseError(f"bad literal token {token!r}") from exc
            if number == 0:
                clauses.append(
                    frozenset(
                        Literal(names.get(abs(n), f"v{abs(n)}"), n > 0)
                        for n in current
                    )
                )
                current = []
            else:
                current.append(number)
    if current:
        raise ParseError("last clause not 0-terminated")
    if declared is not None and declared[1] != len(clauses):
        raise ParseError(
            f"problem line declares {declared[1]} clauses, found {len(clauses)}"
        )
    return clauses, names
