"""Propositional formulas.

The inference problems of the paper ask whether a *formula* ``F`` is true
in every model selected by a semantics.  This module provides an immutable
formula AST with classical (2-valued) and Kleene (3-valued, for PDSM)
evaluation, structural helpers, and operator overloading for readable
construction::

    f = (Var("a") & ~Var("b")) >> Var("c")

The fragment is full propositional logic: constants, variables, negation,
conjunction, disjunction, implication, and equivalence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import AbstractSet, FrozenSet, Iterable, Mapping, Tuple

#: Three-valued truth degrees (PDSM, paper Section 5.2): false, undefined,
#: true.  Fractions avoid float comparisons.
FALSE3 = Fraction(0)
UNDEF3 = Fraction(1, 2)
TRUE3 = Fraction(1)


class Formula(ABC):
    """Base class of all formula nodes.  Instances are immutable."""

    __slots__ = ()

    # -- evaluation ----------------------------------------------------
    @abstractmethod
    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        """Classical truth under the set of true atoms."""

    @abstractmethod
    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        """Kleene 3-valued truth degree under an atom valuation into
        ``{0, 1/2, 1}``."""

    # -- structure -----------------------------------------------------
    @abstractmethod
    def atoms(self) -> FrozenSet[str]:
        """All variables occurring in the formula."""

    @abstractmethod
    def __str__(self) -> str: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"

    # -- operators -----------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)

    def iff(self, other: "Formula") -> "Formula":
        """Biconditional ``self <-> other``."""
        return Iff(self, other)

    # -- equality ------------------------------------------------------
    @abstractmethod
    def _key(self) -> tuple: ...

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())


class Top(Formula):
    """The constant true formula."""

    __slots__ = ()

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return True

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return TRUE3

    def atoms(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"

    def _key(self) -> tuple:
        return ("top",)


class Bottom(Formula):
    """The constant false formula."""

    __slots__ = ()

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return False

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return FALSE3

    def atoms(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"

    def _key(self) -> tuple:
        return ("bottom",)


TOP = Top()
BOTTOM = Bottom()


class Var(Formula):
    """A propositional variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *args) -> None:  # pragma: no cover - guard
        raise AttributeError("Var is immutable")

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return self.name in interpretation

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return valuation.get(self.name, FALSE3)

    def atoms(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name

    def _key(self) -> tuple:
        return ("var", self.name)


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, *args) -> None:  # pragma: no cover - guard
        raise AttributeError("Not is immutable")

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return not self.operand.evaluate(interpretation)

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return TRUE3 - self.operand.evaluate3(valuation)

    def atoms(self) -> FrozenSet[str]:
        return self.operand.atoms()

    def __str__(self) -> str:
        return f"~{_wrap(self.operand)}"

    def _key(self) -> tuple:
        return ("not", self.operand._key())


class _Nary(Formula):
    """Shared machinery for conjunction and disjunction (flattened)."""

    __slots__ = ("operands",)
    _symbol = "?"
    _tag = "?"

    def __init__(self, *operands: Formula):
        flat: list = []
        for op in operands:
            if isinstance(op, type(self)):
                flat.extend(op.operands)
            else:
                flat.append(op)
        object.__setattr__(self, "operands", tuple(flat))

    def __setattr__(self, *args) -> None:  # pragma: no cover - guard
        raise AttributeError("formula nodes are immutable")

    def atoms(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for op in self.operands:
            result |= op.atoms()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "true" if isinstance(self, And) else "false"
        return f" {self._symbol} ".join(_wrap(op) for op in self.operands)

    def _key(self) -> tuple:
        return (self._tag, tuple(op._key() for op in self.operands))


class And(_Nary):
    """Conjunction (n-ary; empty conjunction is true)."""

    __slots__ = ()
    _symbol = "&"
    _tag = "and"

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return all(op.evaluate(interpretation) for op in self.operands)

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return min(
            (op.evaluate3(valuation) for op in self.operands), default=TRUE3
        )


class Or(_Nary):
    """Disjunction (n-ary; empty disjunction is false)."""

    __slots__ = ()
    _symbol = "|"
    _tag = "or"

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return any(op.evaluate(interpretation) for op in self.operands)

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        return max(
            (op.evaluate3(valuation) for op in self.operands), default=FALSE3
        )


class Implies(Formula):
    """Material implication."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        object.__setattr__(self, "antecedent", antecedent)
        object.__setattr__(self, "consequent", consequent)

    def __setattr__(self, *args) -> None:  # pragma: no cover - guard
        raise AttributeError("Implies is immutable")

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return (not self.antecedent.evaluate(interpretation)) or (
            self.consequent.evaluate(interpretation)
        )

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        # Kleene implication: max(1 - a, b).
        return max(
            TRUE3 - self.antecedent.evaluate3(valuation),
            self.consequent.evaluate3(valuation),
        )

    def atoms(self) -> FrozenSet[str]:
        return self.antecedent.atoms() | self.consequent.atoms()

    def __str__(self) -> str:
        return f"{_wrap(self.antecedent)} -> {_wrap(self.consequent)}"

    def _key(self) -> tuple:
        return ("implies", self.antecedent._key(), self.consequent._key())


class Iff(Formula):
    """Biconditional."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *args) -> None:  # pragma: no cover - guard
        raise AttributeError("Iff is immutable")

    def evaluate(self, interpretation: AbstractSet[str]) -> bool:
        return self.left.evaluate(interpretation) == self.right.evaluate(
            interpretation
        )

    def evaluate3(self, valuation: Mapping[str, Fraction]) -> Fraction:
        # a <-> b  ==  (a -> b) & (b -> a) under Kleene.
        a = self.left.evaluate3(valuation)
        b = self.right.evaluate3(valuation)
        return min(max(TRUE3 - a, b), max(TRUE3 - b, a))

    def atoms(self) -> FrozenSet[str]:
        return self.left.atoms() | self.right.atoms()

    def __str__(self) -> str:
        return f"{_wrap(self.left)} <-> {_wrap(self.right)}"

    def _key(self) -> tuple:
        return ("iff", self.left._key(), self.right._key())


def _wrap(formula: Formula) -> str:
    """Parenthesise non-atomic subformulas when rendering."""
    if isinstance(formula, (Var, Top, Bottom, Not)):
        return str(formula)
    return f"({formula})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def conj(formulas: Iterable[Formula]) -> Formula:
    """N-ary conjunction; empty input yields ``true``."""
    items: Tuple[Formula, ...] = tuple(formulas)
    if not items:
        return TOP
    if len(items) == 1:
        return items[0]
    return And(*items)


def disj(formulas: Iterable[Formula]) -> Formula:
    """N-ary disjunction; empty input yields ``false``."""
    items: Tuple[Formula, ...] = tuple(formulas)
    if not items:
        return BOTTOM
    if len(items) == 1:
        return items[0]
    return Or(*items)


def lit(atom: str, positive: bool = True) -> Formula:
    """A literal as a formula."""
    var = Var(atom)
    return var if positive else Not(var)


def negation_normal_form(formula: Formula) -> Formula:
    """Push negations down to variables and eliminate ``->`` / ``<->``."""
    return _nnf(formula, False)


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, Top):
        return BOTTOM if negated else TOP
    if isinstance(formula, Bottom):
        return TOP if negated else BOTTOM
    if isinstance(formula, Var):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated)
    if isinstance(formula, And):
        parts = [_nnf(op, negated) for op in formula.operands]
        return disj(parts) if negated else conj(parts)
    if isinstance(formula, Or):
        parts = [_nnf(op, negated) for op in formula.operands]
        return conj(parts) if negated else disj(parts)
    if isinstance(formula, Implies):
        if negated:  # ~(a -> b) == a & ~b
            return conj(
                [_nnf(formula.antecedent, False), _nnf(formula.consequent, True)]
            )
        return disj(
            [_nnf(formula.antecedent, True), _nnf(formula.consequent, False)]
        )
    if isinstance(formula, Iff):
        # a <-> b == (a & b) | (~a & ~b);  ~(a <-> b) == (a & ~b) | (~a & b)
        a, b = formula.left, formula.right
        if negated:
            return disj(
                [
                    conj([_nnf(a, False), _nnf(b, True)]),
                    conj([_nnf(a, True), _nnf(b, False)]),
                ]
            )
        return disj(
            [
                conj([_nnf(a, False), _nnf(b, False)]),
                conj([_nnf(a, True), _nnf(b, True)]),
            ]
        )
    raise TypeError(f"unknown formula node: {formula!r}")
