"""Two-valued and three-valued interpretations.

A (2-valued) interpretation over a vocabulary ``V`` is identified with the
set of atoms it makes true — the paper writes models as such sets, e.g.
``M = {a, c}``.  :class:`Interpretation` is a frozenset specialisation with
convenience constructors and deterministic printing.

A 3-valued (partial) interpretation, used by PDSM, maps each atom to
``0``, ``1/2``, or ``1``.  :class:`ThreeValuedInterpretation` represents it
by the pair ``(true, possible)`` with ``true ⊆ possible``: atoms in
``true`` have value 1, atoms in ``possible - true`` value 1/2, and all
others value 0.  Total interpretations are exactly those with
``true == possible``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, Mapping

from ..errors import ReproError
from .formula import FALSE3, TRUE3, UNDEF3, Formula


class Interpretation(frozenset):
    """A 2-valued interpretation as the frozenset of its true atoms."""

    __slots__ = ()

    def __new__(cls, atoms: Iterable[str] = ()) -> "Interpretation":
        return super().__new__(cls, atoms)

    def satisfies(self, formula: Formula) -> bool:
        """Classical truth of ``formula`` under this interpretation."""
        return formula.evaluate(self)

    def __str__(self) -> str:
        return "{" + ", ".join(sorted(self)) + "}"

    def __repr__(self) -> str:
        return f"Interpretation({str(self)})"


def interp(*atoms: str) -> Interpretation:
    """Variadic convenience constructor: ``interp("a", "c")``."""
    return Interpretation(atoms)


class ThreeValuedInterpretation:
    """A 3-valued interpretation as the pair ``(true, possible)``.

    Args:
        true: atoms with truth value 1.
        possible: atoms with truth value >= 1/2 (must contain ``true``).
    """

    __slots__ = ("_true", "_possible", "_hash")

    def __init__(self, true: Iterable[str], possible: Iterable[str]):
        true_set = frozenset(true)
        possible_set = frozenset(possible)
        if not true_set <= possible_set:
            raise ReproError(
                "3-valued interpretation requires true ⊆ possible; offending "
                "atoms: " + ", ".join(sorted(true_set - possible_set))
            )
        self._true = true_set
        self._possible = possible_set
        self._hash = hash((true_set, possible_set))

    @property
    def true(self) -> FrozenSet[str]:
        """Atoms with value 1."""
        return self._true

    @property
    def possible(self) -> FrozenSet[str]:
        """Atoms with value >= 1/2."""
        return self._possible

    @property
    def undefined(self) -> FrozenSet[str]:
        """Atoms with value exactly 1/2."""
        return self._possible - self._true

    @property
    def is_total(self) -> bool:
        """Whether no atom is undefined."""
        return self._true == self._possible

    def value(self, atom: str) -> Fraction:
        """Truth degree of ``atom``: 0, 1/2 or 1."""
        if atom in self._true:
            return TRUE3
        if atom in self._possible:
            return UNDEF3
        return FALSE3

    def valuation(self) -> Dict[str, Fraction]:
        """The explicit atom -> degree mapping (atoms absent map to 0)."""
        mapping = {a: TRUE3 for a in self._true}
        mapping.update({a: UNDEF3 for a in self.undefined})
        return mapping

    def satisfies(self, formula: Formula) -> bool:
        """Whether the formula has degree 1 under this interpretation."""
        return formula.evaluate3(self.valuation()) == TRUE3

    def degree(self, formula: Formula) -> Fraction:
        """The Kleene truth degree of ``formula``."""
        return formula.evaluate3(self.valuation())

    def to_total(self) -> Interpretation:
        """The corresponding 2-valued interpretation, requiring totality."""
        if not self.is_total:
            raise ReproError(
                "interpretation is not total; undefined atoms: "
                + ", ".join(sorted(self.undefined))
            )
        return Interpretation(self._true)

    @staticmethod
    def total(atoms: Iterable[str]) -> "ThreeValuedInterpretation":
        """Embed a 2-valued interpretation (its true atoms) as 3-valued."""
        atom_set = frozenset(atoms)
        return ThreeValuedInterpretation(atom_set, atom_set)

    # ------------------------------------------------------------------
    # Truth ordering (pointwise on degrees): I <= J iff for every atom
    # value_I(x) <= value_J(x), i.e. true_I ⊆ true_J and poss_I ⊆ poss_J.
    # PDSM minimizes w.r.t. this ordering.
    # ------------------------------------------------------------------
    def leq(self, other: "ThreeValuedInterpretation") -> bool:
        """Pointwise truth ordering ``self <= other``."""
        return self._true <= other._true and self._possible <= other._possible

    def lt(self, other: "ThreeValuedInterpretation") -> bool:
        """Strict pointwise truth ordering."""
        return self.leq(other) and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreeValuedInterpretation):
            return NotImplemented
        return self._true == other._true and self._possible == other._possible

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        parts = [f"{a}=1" for a in sorted(self._true)]
        parts += [f"{a}=1/2" for a in sorted(self.undefined)]
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return f"ThreeValuedInterpretation({self})"


def all_interpretations(vocabulary: Iterable[str]) -> Iterator[Interpretation]:
    """Enumerate all 2^|V| interpretations over ``vocabulary`` in a
    deterministic (binary-counter) order."""
    atoms = sorted(vocabulary)
    for mask in range(1 << len(atoms)):
        yield Interpretation(
            atoms[i] for i in range(len(atoms)) if mask >> i & 1
        )


def all_three_valued(
    vocabulary: Iterable[str],
) -> Iterator[ThreeValuedInterpretation]:
    """Enumerate all 3^|V| three-valued interpretations (small ``V`` only)."""
    atoms = sorted(vocabulary)
    count = len(atoms)

    def build(index: int, true: list, possible: list):
        if index == count:
            yield ThreeValuedInterpretation(true, possible)
            return
        atom = atoms[index]
        # value 0
        yield from build(index + 1, true, possible)
        # value 1/2
        possible.append(atom)
        yield from build(index + 1, true, possible)
        # value 1
        true.append(atom)
        yield from build(index + 1, true, possible)
        true.pop()
        possible.pop()

    yield from build(0, [], [])
