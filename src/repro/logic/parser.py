"""Parsers for the surface syntax of databases and formulas.

Database syntax (one clause per ``.``-terminated statement)::

    a | b :- c, not d.      % disjunctive rule
    a.                      % fact
    a | b.                  % disjunctive fact
    :- a, b.                % integrity clause (denial)
    winner(x) :- plays(x).  % grounded atoms with arguments are fine

``;`` may be used instead of ``|`` in heads, ``<-`` instead of ``:-``, and
``%`` or ``#`` start a comment running to end of line.

Formula syntax (precedence low to high: ``<->``, ``->``, ``|``, ``&``,
``~``/``not``)::

    (a & ~b) -> c | d
    a <-> not b
    true, false
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from .atoms import ATOM_RE
from .clause import Clause
from .database import DisjunctiveDatabase
from .formula import (
    BOTTOM,
    TOP,
    And,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
)

# ----------------------------------------------------------------------
# Database parsing
# ----------------------------------------------------------------------
_COMMENT_RE = re.compile(r"[%#][^\n]*")


def _strip_comments(text: str) -> str:
    return _COMMENT_RE.sub("", text)


def parse_clause(text: str) -> Clause:
    """Parse a single clause (trailing ``.`` optional)."""
    original = text
    text = _strip_comments(text).strip()
    if text.endswith("."):
        text = text[:-1].strip()
    if not text:
        raise ParseError("empty clause", original)

    if ":-" in text:
        head_text, _, body_text = text.partition(":-")
    elif "<-" in text:
        head_text, _, body_text = text.partition("<-")
    else:
        head_text, body_text = text, ""

    head = _parse_head(head_text, original)
    body_pos, body_neg = _parse_body(body_text, original)
    if not head and not body_pos and not body_neg:
        raise ParseError(
            "clause has neither head nor body (the empty clause must be "
            "built programmatically if really intended)",
            original,
        )
    return Clause(head, body_pos, body_neg)


def _parse_head(text: str, original: str) -> "frozenset[str]":
    text = text.strip()
    if not text:
        return frozenset()
    parts = re.split(r"[|;]", text)
    atoms = []
    for part in parts:
        atom = part.strip()
        if not ATOM_RE.fullmatch(atom):
            raise ParseError(f"invalid head atom {atom!r}", original)
        atoms.append(atom)
    return frozenset(atoms)


def _split_body(text: str) -> List[str]:
    """Split a body on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def _parse_body(
    text: str, original: str
) -> "Tuple[frozenset[str], frozenset[str]]":
    text = text.strip()
    if not text:
        return frozenset(), frozenset()
    pos: List[str] = []
    neg: List[str] = []
    for part in _split_body(text):
        part = part.strip()
        if not part:
            raise ParseError("empty body literal", original)
        negative = False
        if part.startswith("not "):
            negative = True
            part = part[4:].strip()
        elif part.startswith(("~", "-", "¬")):
            negative = True
            part = part[1:].strip()
        if part == "not":
            raise ParseError("dangling 'not' in body", original)
        if not ATOM_RE.fullmatch(part):
            raise ParseError(f"invalid body atom {part!r}", original)
        (neg if negative else pos).append(part)
    return frozenset(pos), frozenset(neg)


def parse_database(
    text: str, vocabulary: "Optional[list[str]]" = None
) -> DisjunctiveDatabase:
    """Parse a whole database from ``.``-terminated statements."""
    cleaned = _strip_comments(text)
    clauses = []
    for statement in cleaned.split("."):
        statement = statement.strip()
        if statement:
            clauses.append(parse_clause(statement + "."))
    return DisjunctiveDatabase(clauses, vocabulary)


# ----------------------------------------------------------------------
# Formula parsing (recursive descent)
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<iff><->)|(?P<implies>->)|(?P<or>\|)|(?P<and>&)"
    r"|(?P<not>~|¬|\bnot\b)|(?P<lpar>\()|(?P<rpar>\))"
    r"|(?P<true>\btrue\b)|(?P<false>\bfalse\b)"
    r"|(?P<atom>[a-zA-Z_][a-zA-Z0-9_]*(\([a-zA-Z0-9_,\s]*\))?))"
)


class _FormulaParser:
    """Recursive-descent parser for the formula grammar."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = self._tokenize(text)
        self.index = 0

    @staticmethod
    def _tokenize(text: str) -> List[Tuple[str, str]]:
        tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise ParseError(
                    f"unexpected character {remainder[0]!r}", text, position
                )
            kind = match.lastgroup
            # lastgroup may name an inner group of the atom pattern; pick
            # the first named group that actually matched.
            for name in (
                "iff", "implies", "or", "and", "not",
                "lpar", "rpar", "true", "false", "atom",
            ):
                if match.group(name) is not None:
                    kind = name
                    break
            tokens.append((kind, match.group(0).strip()))
            position = match.end()
        return tokens

    def _peek(self) -> "Optional[str]":
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def _advance(self) -> Tuple[str, str]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str) -> Tuple[str, str]:
        if self._peek() != kind:
            found = self._peek() or "end of input"
            raise ParseError(f"expected {kind}, found {found}", self.text)
        return self._advance()

    # grammar: iff := implies ('<->' implies)*
    def parse(self) -> Formula:
        formula = self._parse_iff()
        if self._peek() is not None:
            raise ParseError(
                f"trailing tokens from {self.tokens[self.index][1]!r}", self.text
            )
        return formula

    def _parse_iff(self) -> Formula:
        left = self._parse_implies()
        while self._peek() == "iff":
            self._advance()
            right = self._parse_implies()
            left = Iff(left, right)
        return left

    def _parse_implies(self) -> Formula:
        left = self._parse_or()
        if self._peek() == "implies":
            self._advance()
            right = self._parse_implies()  # right-associative
            return Implies(left, right)
        return left

    def _parse_or(self) -> Formula:
        parts = [self._parse_and()]
        while self._peek() == "or":
            self._advance()
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _parse_and(self) -> Formula:
        parts = [self._parse_unary()]
        while self._peek() == "and":
            self._advance()
            parts.append(self._parse_unary())
        return parts[0] if len(parts) == 1 else And(*parts)

    def _parse_unary(self) -> Formula:
        kind = self._peek()
        if kind == "not":
            self._advance()
            return Not(self._parse_unary())
        if kind == "lpar":
            self._advance()
            inner = self._parse_iff()
            self._expect("rpar")
            return inner
        if kind == "true":
            self._advance()
            return TOP
        if kind == "false":
            self._advance()
            return BOTTOM
        if kind == "atom":
            _, text = self._advance()
            return Var(text)
        found = kind or "end of input"
        raise ParseError(f"expected a formula, found {found}", self.text)


def parse_formula(text: str) -> Formula:
    """Parse a propositional formula from its surface syntax."""
    if not text.strip():
        raise ParseError("empty formula", text)
    return _FormulaParser(text).parse()
