"""JSON-friendly (de)serialization of databases and formulas.

Plain-dict representations for tooling (caching instances, shipping
workloads to other processes, storing regression fixtures).  Round-trips
exactly: ``database_from_dict(database_to_dict(db)) == db``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import ParseError
from .clause import Clause
from .database import DisjunctiveDatabase
from .formula import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)


def clause_to_dict(clause: Clause) -> Dict[str, List[str]]:
    """A clause as ``{"head": [...], "pos": [...], "neg": [...]}``."""
    return {
        "head": sorted(clause.head),
        "pos": sorted(clause.body_pos),
        "neg": sorted(clause.body_neg),
    }


def clause_from_dict(data: Dict[str, Any]) -> Clause:
    """Inverse of :func:`clause_to_dict` (missing keys = empty)."""
    return Clause(
        frozenset(data.get("head", ())),
        frozenset(data.get("pos", ())),
        frozenset(data.get("neg", ())),
    )


def database_to_dict(db: DisjunctiveDatabase) -> Dict[str, Any]:
    """A database as ``{"vocabulary": [...], "clauses": [...]}``."""
    return {
        "vocabulary": sorted(db.vocabulary),
        "clauses": [clause_to_dict(c) for c in db],
    }


def database_from_dict(data: Dict[str, Any]) -> DisjunctiveDatabase:
    """Inverse of :func:`database_to_dict`."""
    return DisjunctiveDatabase(
        [clause_from_dict(c) for c in data.get("clauses", ())],
        data.get("vocabulary"),
    )


_FORMULA_TAGS = {
    "var", "not", "and", "or", "implies", "iff", "true", "false",
}


def formula_to_dict(formula: Formula) -> Dict[str, Any]:
    """A formula AST as nested tagged dicts."""
    if isinstance(formula, Top):
        return {"op": "true"}
    if isinstance(formula, Bottom):
        return {"op": "false"}
    if isinstance(formula, Var):
        return {"op": "var", "name": formula.name}
    if isinstance(formula, Not):
        return {"op": "not", "arg": formula_to_dict(formula.operand)}
    if isinstance(formula, And):
        return {
            "op": "and",
            "args": [formula_to_dict(f) for f in formula.operands],
        }
    if isinstance(formula, Or):
        return {
            "op": "or",
            "args": [formula_to_dict(f) for f in formula.operands],
        }
    if isinstance(formula, Implies):
        return {
            "op": "implies",
            "args": [
                formula_to_dict(formula.antecedent),
                formula_to_dict(formula.consequent),
            ],
        }
    if isinstance(formula, Iff):
        return {
            "op": "iff",
            "args": [
                formula_to_dict(formula.left),
                formula_to_dict(formula.right),
            ],
        }
    raise TypeError(f"unknown formula node: {formula!r}")


def formula_from_dict(data: Dict[str, Any]) -> Formula:
    """Inverse of :func:`formula_to_dict` (validates tags)."""
    tag = data.get("op")
    if tag not in _FORMULA_TAGS:
        raise ParseError(f"unknown formula tag {tag!r}")
    if tag == "true":
        return TOP
    if tag == "false":
        return BOTTOM
    if tag == "var":
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise ParseError("var node needs a nonempty 'name'")
        return Var(name)
    if tag == "not":
        return Not(formula_from_dict(data["arg"]))
    args = [formula_from_dict(a) for a in data.get("args", ())]
    if tag == "and":
        return And(*args)
    if tag == "or":
        return Or(*args)
    if len(args) != 2:
        raise ParseError(f"{tag} node needs exactly two args")
    if tag == "implies":
        return Implies(args[0], args[1])
    return Iff(args[0], args[1])
