"""Program transformations used by the semantics.

* :func:`gl_reduct` — the Gelfond–Lifschitz reduct ``DB^M`` (Section 5.2
  of the paper): delete every clause whose negative body intersects ``M``,
  then drop the remaining negative body literals.  Used by DSM.
* :func:`three_valued_reduct` — the 3-valued reduct ``DB^I`` for PDSM:
  each ``not c`` is replaced by the truth *constant* ``1 - I(c)``.
* :func:`shift_negation_to_head` — move negative body literals into the
  head (used by the paper for ICWA: "moving each ``¬x`` in the body to the
  head" turns a DSDB into a positive DDB with the same classical models).
* :func:`split_programs` — Sakama's split programs for the possible models
  semantics: independently replace each clause head by a nonempty subset.
* :func:`rename_atoms` — uniform atom renaming.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import AbstractSet, Callable, Dict, FrozenSet, Iterable, Iterator, List, Tuple

from .clause import Clause
from .database import DisjunctiveDatabase
from .formula import FALSE3, TRUE3, UNDEF3
from .interpretation import ThreeValuedInterpretation


def gl_reduct(
    db: DisjunctiveDatabase, interpretation: AbstractSet[str]
) -> DisjunctiveDatabase:
    """The Gelfond–Lifschitz reduct ``DB^M`` w.r.t. a 2-valued
    interpretation ``M`` (the set of true atoms).

    The result is a positive database over the same vocabulary.
    """
    reduced: List[Clause] = []
    for clause in db.clauses:
        if clause.body_neg & interpretation:
            continue  # some `not c` is false in M: clause disappears
        reduced.append(Clause(clause.head, clause.body_pos, frozenset()))
    return DisjunctiveDatabase(reduced, db.vocabulary)


@dataclass(frozen=True)
class ValuedClause:
    """A clause of a 3-valued reduct: ``head :- body_pos`` with an extra
    constant conjunct ``bound`` in ``{0, 1/2, 1}`` coming from the replaced
    negative literals (``1`` when there were none).

    A 3-valued interpretation ``J`` satisfies it iff
    ``val_J(head) >= min(min_b J(b), bound)`` where the empty head has
    value 0 and the empty positive body value 1.
    """

    head: FrozenSet[str]
    body_pos: FrozenSet[str]
    bound: Fraction

    def body_value(self, interpretation: ThreeValuedInterpretation) -> Fraction:
        value = self.bound
        for atom in self.body_pos:
            value = min(value, interpretation.value(atom))
            if value == FALSE3:
                break
        return value

    def head_value(self, interpretation: ThreeValuedInterpretation) -> Fraction:
        value = FALSE3
        for atom in self.head:
            value = max(value, interpretation.value(atom))
            if value == TRUE3:
                break
        return value

    def satisfied_by(self, interpretation: ThreeValuedInterpretation) -> bool:
        return self.head_value(interpretation) >= self.body_value(interpretation)

    def __str__(self) -> str:
        head = " | ".join(sorted(self.head)) or "(false)"
        body = ", ".join(sorted(self.body_pos))
        if self.bound != TRUE3:
            constant = "0" if self.bound == FALSE3 else "1/2"
            body = f"{body}, {constant}" if body else constant
        return f"{head} :- {body}." if body else f"{head}."


def three_valued_reduct(
    db: DisjunctiveDatabase, interpretation: ThreeValuedInterpretation
) -> List[ValuedClause]:
    """The PDSM reduct ``DB^I``: each ``not c`` becomes the constant
    ``1 - I(c)``; the constants in one body collapse to their minimum."""
    reduct: List[ValuedClause] = []
    for clause in db.clauses:
        bound = TRUE3
        for atom in clause.body_neg:
            bound = min(bound, TRUE3 - interpretation.value(atom))
        reduct.append(ValuedClause(clause.head, clause.body_pos, bound))
    return reduct


def shift_negation_to_head(db: DisjunctiveDatabase) -> DisjunctiveDatabase:
    """Move each negative body literal to the head.

    ``a1|...|an :- b's, not c1, ..., not cm`` becomes
    ``a1|...|an|c1|...|cm :- b's``.  The classical models are unchanged
    (both denote the same propositional clause); the result is a deductive
    (negation-free) database.
    """
    shifted = [
        Clause(c.head | c.body_neg, c.body_pos, frozenset()) for c in db.clauses
    ]
    return DisjunctiveDatabase(shifted, db.vocabulary)


def split_programs(db: DisjunctiveDatabase) -> Iterator[DisjunctiveDatabase]:
    """Enumerate Sakama's split programs of ``db``.

    For every clause with a nonempty head, a nonempty subset of the head is
    chosen and the clause is replaced by one single-head rule per chosen
    atom; integrity clauses are kept as they are.  The number of splits is
    the product of ``2^|head| - 1`` over disjunctive clauses — callers must
    bound it (see :func:`split_count`).
    """
    ordered = sorted(db.clauses)
    choice_lists: List[List[FrozenSet[str]]] = []
    for clause in ordered:
        if clause.is_integrity:
            choice_lists.append([frozenset()])
        else:
            head = sorted(clause.head)
            subsets = [
                frozenset(combo)
                for size in range(1, len(head) + 1)
                for combo in itertools.combinations(head, size)
            ]
            choice_lists.append(subsets)
    for selection in itertools.product(*choice_lists):
        clauses: List[Clause] = []
        for clause, chosen in zip(ordered, selection):
            if clause.is_integrity:
                clauses.append(clause)
            else:
                for atom in chosen:
                    clauses.append(
                        Clause(frozenset((atom,)), clause.body_pos, clause.body_neg)
                    )
        yield DisjunctiveDatabase(clauses, db.vocabulary)


def split_count(db: DisjunctiveDatabase) -> int:
    """The number of split programs :func:`split_programs` would yield."""
    count = 1
    for clause in db.clauses:
        if not clause.is_integrity:
            count *= (1 << len(clause.head)) - 1
    return count


def rename_atoms(
    db: DisjunctiveDatabase, renaming: "Dict[str, str] | Callable[[str], str]"
) -> DisjunctiveDatabase:
    """Apply an injective atom renaming to every clause and the vocabulary."""
    if callable(renaming):
        rename = renaming
    else:
        mapping = dict(renaming)
        rename = lambda atom: mapping.get(atom, atom)  # noqa: E731
    clauses = [
        Clause(
            frozenset(rename(a) for a in c.head),
            frozenset(rename(a) for a in c.body_pos),
            frozenset(rename(a) for a in c.body_neg),
        )
        for c in db.clauses
    ]
    vocabulary = frozenset(rename(a) for a in db.vocabulary)
    if len(vocabulary) != len(db.vocabulary):
        raise ValueError("renaming is not injective on the vocabulary")
    return DisjunctiveDatabase(clauses, vocabulary)
