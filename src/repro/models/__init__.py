"""Brute-force model theory (ground truth for the oracle engines)."""

from .enumeration import (
    all_models,
    lex_preferred,
    minimal_models_brute,
    models_entail_brute,
    pz_minimal_models_brute,
    pz_preferred,
    prioritized_minimal_models_brute,
)

__all__ = [
    "all_models",
    "lex_preferred",
    "minimal_models_brute",
    "models_entail_brute",
    "pz_minimal_models_brute",
    "pz_preferred",
    "prioritized_minimal_models_brute",
]
