"""Brute-force model theory.

Explicit-enumeration implementations of every model-selection notion used
by the paper.  They are exponential in ``|V|`` by construction and serve
as *ground truth* for the oracle-backed engines in the test suite, and as
the reference semantics for small worked examples.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation, all_interpretations
from ..runtime.budget import note_nodes


def all_models(db: DisjunctiveDatabase) -> List[Interpretation]:
    """``M(DB)`` — every classical model, by explicit enumeration.

    Every candidate interpretation counts as one node against an active
    :class:`~repro.runtime.budget.BudgetScope`, so the ``2^|V|`` sweep is
    cut off by node ceilings and deadlines.
    """
    out = []
    for m in all_interpretations(db.vocabulary):
        note_nodes(1)
        if db.is_model(m):
            out.append(m)
    return out


def models_in_block(
    db: DisjunctiveDatabase,
    fixed_true: Iterable[str] = (),
    fixed_false: Iterable[str] = (),
) -> List[Interpretation]:
    """The classical models extending a partial assignment.

    Enumerates the ``2^|free|`` interpretations that make ``fixed_true``
    true and ``fixed_false`` false (the remaining vocabulary atoms are
    free), in binary-counter order over the free atoms.  This is the
    per-worker unit of the block-parallel enumerator in
    :mod:`repro.engine.parallel`; fixing nothing recovers
    :func:`all_models`.
    """
    base = frozenset(fixed_true)
    fixed = base | frozenset(fixed_false)
    free = sorted(frozenset(db.vocabulary) - fixed)
    out = []
    for mask in range(1 << len(free)):
        note_nodes(1)
        candidate = Interpretation(
            itertools.chain(
                base,
                (free[i] for i in range(len(free)) if mask >> i & 1),
            )
        )
        if db.is_model(candidate):
            out.append(candidate)
    return out


def _rank_order(
    db: DisjunctiveDatabase, models: Iterable[Interpretation]
) -> List[Interpretation]:
    """Models in the binary-counter order of the serial enumerator."""
    atoms = sorted(db.vocabulary)
    rank = {a: i for i, a in enumerate(atoms)}
    return sorted(models, key=lambda m: sum(1 << rank[a] for a in m))


def minimal_models_brute(
    db: DisjunctiveDatabase, decompose: bool = True
) -> List[Interpretation]:
    """``MM(DB)`` — subset-minimal models, by pairwise comparison.

    With ``decompose=True`` (default) the clause graph is split into
    connected components first and ``MM(DB) = ⨂ MM(DBᵢ)`` is assembled as
    a product: the node count drops from ``2^|V|`` to ``Σᵢ 2^|Vᵢ|`` plus
    the (output-sized) product.  ``decompose=False`` is the pristine
    single-sweep reference the decomposed path is tested against.

    The quadratic comparison pass also ticks budget nodes (one per
    candidate), since it can dominate the enumeration itself.
    """
    if decompose:
        from ..sat.decompose import decompose as _split
        from ..sat.decompose import product_interpretations

        parts = _split(db)
        if parts is not None:
            per_part = [
                minimal_models_brute(part, decompose=False)
                for part in parts
            ]
            return _rank_order(db, product_interpretations(per_part))
    models = all_models(db)
    out = []
    for m in models:
        note_nodes(1)
        if not any(other < m for other in models):
            out.append(m)
    return out


def pz_preferred(
    n: Interpretation,
    m: Interpretation,
    p: FrozenSet[str],
    q: FrozenSet[str],
) -> bool:
    """``N <_{P;Z} M``: same ``Q`` part, strictly smaller ``P`` part."""
    if (n & q) != (m & q):
        return False
    return (n & p) < (m & p)


def pz_minimal_models_brute(
    db: DisjunctiveDatabase,
    p: Iterable[str],
    z: Iterable[str],
    decompose: bool = True,
) -> List[Interpretation]:
    """``MM(DB; P; Z)`` by explicit enumeration.

    The ``(P; Z)``-preference order compares components pointwise, so it
    factors over connected components exactly like plain minimality:
    ``decompose=True`` assembles the answer as a product of per-component
    sweeps (with the partition restricted to each component).
    """
    p = frozenset(p)
    z = frozenset(z)
    q = frozenset(db.vocabulary) - p - z
    db.check_partition(p, q, z)
    if decompose:
        from ..sat.decompose import decompose as _split
        from ..sat.decompose import product_interpretations

        parts = _split(db)
        if parts is not None:
            per_part = [
                pz_minimal_models_brute(
                    part,
                    p & part.vocabulary,
                    z & part.vocabulary,
                    decompose=False,
                )
                for part in parts
            ]
            return _rank_order(db, product_interpretations(per_part))
    models = all_models(db)
    out = []
    for m in models:
        note_nodes(1)
        if not any(pz_preferred(n, m, p, q) for n in models):
            out.append(m)
    return out


def lex_preferred(
    n: Interpretation,
    m: Interpretation,
    levels: Sequence[FrozenSet[str]],
    q: FrozenSet[str],
) -> bool:
    """``N <_{P1>...>Pr;Z} M`` (lexicographic by priority level)."""
    if (n & q) != (m & q):
        return False
    for level in levels:
        n_part, m_part = n & level, m & level
        if n_part == m_part:
            continue
        return n_part < m_part
    return False


def prioritized_minimal_models_brute(
    db: DisjunctiveDatabase,
    levels: Sequence[Iterable[str]],
    z: Iterable[str] = (),
) -> List[Interpretation]:
    """Lexicographically minimal models by explicit enumeration."""
    level_sets = [frozenset(level) for level in levels]
    z = frozenset(z)
    q = (
        frozenset(db.vocabulary)
        - frozenset(itertools.chain.from_iterable(level_sets))
        - z
    )
    models = all_models(db)
    out = []
    for m in models:
        note_nodes(1)
        if not any(lex_preferred(n, m, level_sets, q) for n in models):
            out.append(m)
    return out


def models_entail_brute(models: Iterable[Interpretation], formula) -> bool:
    """Whether a formula holds in every model of an explicit model set.

    By the convention standard for these semantics (and required for the
    closure readings to coincide with the model-theoretic ones), an empty
    model set entails everything.
    """
    return all(m.satisfies(formula) for m in models)
