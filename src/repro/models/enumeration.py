"""Brute-force model theory.

Explicit-enumeration implementations of every model-selection notion used
by the paper.  They are exponential in ``|V|`` by construction and serve
as *ground truth* for the oracle-backed engines in the test suite, and as
the reference semantics for small worked examples.

Internally each sweep runs in one of two representations: the historical
frozenset path, or the bitset kernel (:mod:`repro.kernel`) which packs
candidates into Python ints over the database's :class:`~repro.kernel.
AtomTable` and converts to :class:`~repro.logic.interpretation.
Interpretation` only at the API boundary.  The two paths tick identical
budget nodes and produce identical output *sequences* (mask order is the
binary-counter enumeration order); ``REPRO_KERNEL=pure`` or
:func:`repro.kernel.force_kernel` selects between them at runtime.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..kernel import (
    atom_table_for,
    is_proper_submask,
    kernel_enabled,
    packed_database_for,
    product_or_masks,
)
from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation, all_interpretations
from ..runtime.budget import note_nodes


def all_models(db: DisjunctiveDatabase) -> List[Interpretation]:
    """``M(DB)`` — every classical model, by explicit enumeration.

    Every candidate interpretation counts as one node against an active
    :class:`~repro.runtime.budget.BudgetScope`, so the ``2^|V|`` sweep is
    cut off by node ceilings and deadlines.
    """
    if kernel_enabled():
        packed = packed_database_for(db)
        table = packed.table
        out = []
        for mask in range(1 << len(table)):
            note_nodes(1)
            if packed.is_model(mask):
                out.append(table.unpack(mask))
        return out
    out = []
    for m in all_interpretations(db.vocabulary):
        note_nodes(1)
        if db.is_model(m):
            out.append(m)
    return out


def models_in_block(
    db: DisjunctiveDatabase,
    fixed_true: Iterable[str] = (),
    fixed_false: Iterable[str] = (),
) -> List[Interpretation]:
    """The classical models extending a partial assignment.

    Enumerates the ``2^|free|`` interpretations that make ``fixed_true``
    true and ``fixed_false`` false (the remaining vocabulary atoms are
    free), in binary-counter order over the free atoms.  This is the
    per-worker unit of the block-parallel enumerator in
    :mod:`repro.engine.parallel`; fixing nothing recovers
    :func:`all_models`.
    """
    base = frozenset(fixed_true)
    fixed = base | frozenset(fixed_false)
    free = sorted(frozenset(db.vocabulary) - fixed)
    if kernel_enabled():
        packed = packed_database_for(db)
        table = packed.table
        base_mask = table.pack(base)
        free_bits = [table.bit(a) for a in free]
        out = []
        for counter in range(1 << len(free)):
            note_nodes(1)
            candidate = base_mask
            for i, bit in enumerate(free_bits):
                if counter >> i & 1:
                    candidate |= bit
            if packed.is_model(candidate):
                out.append(table.unpack(candidate))
        return out
    out = []
    for counter in range(1 << len(free)):
        note_nodes(1)
        candidate = Interpretation(
            itertools.chain(
                base,
                (free[i] for i in range(len(free)) if counter >> i & 1),
            )
        )
        if db.is_model(candidate):
            out.append(candidate)
    return out


def _rank_order(
    db: DisjunctiveDatabase, models: Iterable[Interpretation]
) -> List[Interpretation]:
    """Models in the binary-counter order of the serial enumerator.

    The sort key is exactly the packed-mask value over the database's
    atom table, so kernel and pure paths agree on the output order.
    """
    if kernel_enabled():
        pack = atom_table_for(db).pack
        return sorted(models, key=pack)
    atoms = sorted(db.vocabulary)
    rank = {a: i for i, a in enumerate(atoms)}
    return sorted(models, key=lambda m: sum(1 << rank[a] for a in m))


def minimal_models_brute(
    db: DisjunctiveDatabase, decompose: bool = True
) -> List[Interpretation]:
    """``MM(DB)`` — subset-minimal models, by pairwise comparison.

    With ``decompose=True`` (default) the clause graph is split into
    connected components first and ``MM(DB) = ⨂ MM(DBᵢ)`` is assembled as
    a product: the node count drops from ``2^|V|`` to ``Σᵢ 2^|Vᵢ|`` plus
    the (output-sized) product.  ``decompose=False`` is the pristine
    single-sweep reference the decomposed path is tested against.

    The quadratic comparison pass also ticks budget nodes (one per
    candidate), since it can dominate the enumeration itself.
    """
    if decompose:
        from ..sat.decompose import decompose as _split
        from ..sat.decompose import product_interpretations

        parts = _split(db)
        if parts is not None:
            per_part = [
                minimal_models_brute(part, decompose=False)
                for part in parts
            ]
            if kernel_enabled():
                table = atom_table_for(db)
                part_masks = [
                    [table.pack(m) for m in models] for models in per_part
                ]
                return [
                    table.unpack(mask)
                    for mask in sorted(product_or_masks(part_masks))
                ]
            return _rank_order(db, product_interpretations(per_part))
    models = all_models(db)
    if kernel_enabled():
        table = atom_table_for(db)
        masks = [table.pack(m) for m in models]
        out = []
        for m, mask in zip(models, masks):
            note_nodes(1)
            if not any(is_proper_submask(o, mask) for o in masks):
                out.append(m)
        return out
    out = []
    for m in models:
        note_nodes(1)
        if not any(other < m for other in models):
            out.append(m)
    return out


def pz_preferred(
    n: Interpretation,
    m: Interpretation,
    p: FrozenSet[str],
    q: FrozenSet[str],
) -> bool:
    """``N <_{P;Z} M``: same ``Q`` part, strictly smaller ``P`` part."""
    if (n & q) != (m & q):
        return False
    return (n & p) < (m & p)


def _pz_preferred_mask(n: int, m: int, p: int, q: int) -> bool:
    """Mask form of :func:`pz_preferred`."""
    if (n & q) != (m & q):
        return False
    return is_proper_submask(n & p, m & p)


def pz_minimal_models_brute(
    db: DisjunctiveDatabase,
    p: Iterable[str],
    z: Iterable[str],
    decompose: bool = True,
) -> List[Interpretation]:
    """``MM(DB; P; Z)`` by explicit enumeration.

    The ``(P; Z)``-preference order compares components pointwise, so it
    factors over connected components exactly like plain minimality:
    ``decompose=True`` assembles the answer as a product of per-component
    sweeps (with the partition restricted to each component).
    """
    p = frozenset(p)
    z = frozenset(z)
    q = frozenset(db.vocabulary) - p - z
    db.check_partition(p, q, z)
    if decompose:
        from ..sat.decompose import decompose as _split
        from ..sat.decompose import product_interpretations

        parts = _split(db)
        if parts is not None:
            per_part = [
                pz_minimal_models_brute(
                    part,
                    p & part.vocabulary,
                    z & part.vocabulary,
                    decompose=False,
                )
                for part in parts
            ]
            if kernel_enabled():
                table = atom_table_for(db)
                part_masks = [
                    [table.pack(m) for m in models] for models in per_part
                ]
                return [
                    table.unpack(mask)
                    for mask in sorted(product_or_masks(part_masks))
                ]
            return _rank_order(db, product_interpretations(per_part))
    models = all_models(db)
    if kernel_enabled():
        table = atom_table_for(db)
        p_mask, q_mask = table.pack(p), table.pack(q)
        masks = [table.pack(m) for m in models]
        out = []
        for m, mask in zip(models, masks):
            note_nodes(1)
            if not any(
                _pz_preferred_mask(n, mask, p_mask, q_mask) for n in masks
            ):
                out.append(m)
        return out
    out = []
    for m in models:
        note_nodes(1)
        if not any(pz_preferred(n, m, p, q) for n in models):
            out.append(m)
    return out


def lex_preferred(
    n: Interpretation,
    m: Interpretation,
    levels: Sequence[FrozenSet[str]],
    q: FrozenSet[str],
) -> bool:
    """``N <_{P1>...>Pr;Z} M`` (lexicographic by priority level)."""
    if (n & q) != (m & q):
        return False
    for level in levels:
        n_part, m_part = n & level, m & level
        if n_part == m_part:
            continue
        return n_part < m_part
    return False


def _lex_preferred_mask(
    n: int, m: int, levels: Sequence[int], q: int
) -> bool:
    """Mask form of :func:`lex_preferred`."""
    if (n & q) != (m & q):
        return False
    for level in levels:
        n_part, m_part = n & level, m & level
        if n_part == m_part:
            continue
        return is_proper_submask(n_part, m_part)
    return False


def prioritized_minimal_models_brute(
    db: DisjunctiveDatabase,
    levels: Sequence[Iterable[str]],
    z: Iterable[str] = (),
) -> List[Interpretation]:
    """Lexicographically minimal models by explicit enumeration."""
    level_sets = [frozenset(level) for level in levels]
    z = frozenset(z)
    q = (
        frozenset(db.vocabulary)
        - frozenset(itertools.chain.from_iterable(level_sets))
        - z
    )
    models = all_models(db)
    if kernel_enabled():
        table = atom_table_for(db)
        vocabulary = frozenset(table.atoms)
        level_masks = [table.pack(level & vocabulary) for level in level_sets]
        q_mask = table.pack(q)
        masks = [table.pack(m) for m in models]
        out = []
        for m, mask in zip(models, masks):
            note_nodes(1)
            if not any(
                _lex_preferred_mask(n, mask, level_masks, q_mask)
                for n in masks
            ):
                out.append(m)
        return out
    out = []
    for m in models:
        note_nodes(1)
        if not any(lex_preferred(n, m, level_sets, q) for n in models):
            out.append(m)
    return out


def models_entail_brute(models: Iterable[Interpretation], formula) -> bool:
    """Whether a formula holds in every model of an explicit model set.

    By the convention standard for these semantics (and required for the
    closure readings to coincide with the model-theoretic ones), an empty
    model set entails everything.
    """
    return all(m.satisfies(formula) for m in models)
