"""Observability: tracing, metrics and complexity certification.

Three pure-stdlib layers plus a certifier on top:

* :mod:`repro.obs.metrics` — the process-wide :data:`METRICS` registry
  (counters/gauges/histograms, Prometheus text exposition);
* :mod:`repro.obs.accounting` — NP-call / Σ₂ᵖ-dispatch / node counters
  with :func:`observe` windows and dispatch-depth tracking;
* :mod:`repro.obs.trace` — hierarchical spans with a zero-allocation
  no-op default (:func:`active_tracer`, :func:`use_tracer`);
* :mod:`repro.obs.certify` — per-query Table 1/Table 2 envelope checks.

``certify`` is re-exported **lazily** (PEP 562): it imports
:mod:`repro.complexity`, whose package ``__init__`` eagerly imports the
oracle machines, which import the SAT layer, which imports
:mod:`repro.runtime` — and the runtime imports :mod:`repro.obs.metrics`.
Importing ``certify`` eagerly here would close that loop mid-import;
deferring it keeps ``repro.runtime → repro.obs`` cycle-free.
"""

from repro.obs.accounting import (
    OracleObservation,
    counts_as_sigma2_dispatch,
    current_dispatch_depth,
    note_nodes,
    note_np_call,
    note_sigma2_dispatch,
    observe,
    sigma2_dispatch,
    totals,
)
from repro.obs.metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NoopSpan,
    NoopTracer,
    Span,
    Tracer,
    active_tracer,
    set_tracer,
    use_tracer,
)

_CERTIFY_NAMES = frozenset(
    {
        "Bound",
        "CellEnvelope",
        "Certifier",
        "CertificateViolation",
        "CertificationError",
        "ComplexityCertificate",
        "DEFAULT_CERTIFIER",
        "TASK_FOR_METHOD",
        "canonical_name",
    }
)

__all__ = [
    # metrics
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    # accounting
    "OracleObservation",
    "observe",
    "totals",
    "note_np_call",
    "note_nodes",
    "note_sigma2_dispatch",
    "sigma2_dispatch",
    "counts_as_sigma2_dispatch",
    "current_dispatch_depth",
    # trace
    "Tracer",
    "NoopTracer",
    "Span",
    "NoopSpan",
    "active_tracer",
    "set_tracer",
    "use_tracer",
] + sorted(_CERTIFY_NAMES)


def __getattr__(name):
    if name in _CERTIFY_NAMES:
        from repro.obs import certify

        return getattr(certify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
