"""Oracle accounting: who asked how many NP questions, and how deeply.

The paper's upper bounds are statements about *counted* oracle access:
a coNP decision procedure makes O(1) NP-oracle dispatches, a Π₂ᵖ
procedure may make polynomially many Σ₂ᵖ dispatches but never nests
them more than one level, Θ₃ᵖ procedures are Σ₂ᵖ-dispatch-bounded.
This module is the single place where those dispatches are ticked:

* :func:`note_np_call` — one NP-oracle invocation (a SAT ``solve``);
  called from :func:`repro.runtime.observe_sat_call`, i.e. it sees the
  exact same stream of events as the budget governor.
* :func:`sigma2_dispatch` / :func:`counts_as_sigma2_dispatch` — one
  Σ₂ᵖ-oracle invocation.  Only the *primitive realizations* are marked
  (the three ``find_minimal_satisfying`` methods and the union-query
  machine) — wrappers like :class:`repro.complexity.oracles.Sigma2Oracle`
  delegate 1:1 and must not be marked, or the bookkeeping would fake a
  nesting depth of two for a flat procedure.
* :func:`note_nodes` — brute-force search nodes, fed from
  :func:`repro.runtime.budget.note_nodes`.

Dispatch *depth* is tracked in a :class:`~contextvars.ContextVar`, so
re-entrant Σ₂ᵖ dispatches (which the certifier must flag for Π₂ᵖ
claims) are visible even across generator suspensions in the same
context.

:func:`observe` captures a window of this global stream: it snapshots
the monotone counters at entry and fills an :class:`OracleObservation`
with the deltas (plus the max dispatch depth seen *inside the window*)
at exit.  Observations nest; each sees only its own window.

:func:`record_plan_outcome` closes the planner's feedback loop: every
planned session query compares the cost model's prediction against the
observed window — per-procedure query counters and a predicted-vs-actual
NP-call ratio histogram whose bucket boundaries are exactly the
calibration band the test suite asserts (0.25x–4x).
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.obs.metrics import METRICS

NP_CALLS = METRICS.counter(
    "repro_oracle_np_calls_total",
    "NP-oracle invocations (SAT solver solve() calls)",
)
SIGMA2_DISPATCHES = METRICS.counter(
    "repro_oracle_sigma2_dispatches_total",
    "Sigma2p-oracle invocations (minimal-model primitive dispatches)",
)
SEARCH_NODES = METRICS.counter(
    "repro_search_nodes_total",
    "Brute-force enumeration nodes visited",
)
MAX_DISPATCH_DEPTH = METRICS.gauge(
    "repro_oracle_max_sigma2_depth",
    "Deepest Sigma2p dispatch nesting observed process-wide",
)
PLANNER_QUERIES = METRICS.counter(
    "repro_planner_queries_total",
    "Session queries answered through the planned engine, by procedure",
    labelnames=("procedure",),
)
PLANNER_NP_RATIO = METRICS.histogram(
    "repro_planner_np_ratio",
    "Predicted-vs-actual NP-call ratio, (actual+1)/(predicted+1); the "
    "0.25/4.0 boundary buckets are the documented calibration band",
    buckets=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
)

#: Current Σ₂ᵖ dispatch nesting depth in this context (0 = outside any).
_DISPATCH_DEPTH: ContextVar[int] = ContextVar("repro_sigma2_depth", default=0)

#: Stack of live observation windows in this context.
_ACTIVE: ContextVar[Tuple["_Window", ...]] = ContextVar(
    "repro_obs_windows", default=()
)


@dataclass
class OracleObservation:
    """Oracle work observed inside one :func:`observe` window."""

    np_calls: int = 0
    sigma2_dispatches: int = 0
    nodes: int = 0
    max_sigma2_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "np_calls": self.np_calls,
            "sigma2_dispatches": self.sigma2_dispatches,
            "nodes": self.nodes,
            "max_sigma2_depth": self.max_sigma2_depth,
        }

    def render(self) -> str:
        """One-line human rendering (diagnosis reports, CLI summaries)."""
        return (
            f"np_calls={self.np_calls} "
            f"sigma2_dispatches={self.sigma2_dispatches} "
            f"nodes={self.nodes} "
            f"max_sigma2_depth={self.max_sigma2_depth}"
        )


class _Window:
    __slots__ = ("start_np", "start_sigma2", "start_nodes", "max_depth")

    def __init__(self) -> None:
        self.start_np = NP_CALLS.value
        self.start_sigma2 = SIGMA2_DISPATCHES.value
        self.start_nodes = SEARCH_NODES.value
        self.max_depth = 0


def note_np_call() -> None:
    """Tick one NP-oracle invocation."""
    NP_CALLS.inc()


def note_nodes(count: int = 1) -> None:
    """Tick ``count`` brute-force search nodes."""
    SEARCH_NODES.inc(count)


def current_dispatch_depth() -> int:
    """The Σ₂ᵖ dispatch nesting depth of the calling context."""
    return _DISPATCH_DEPTH.get()


def _record_depth(depth: int) -> None:
    if depth > MAX_DISPATCH_DEPTH.value:
        MAX_DISPATCH_DEPTH.set(depth)
    for window in _ACTIVE.get():
        if depth > window.max_depth:
            window.max_depth = depth


@contextmanager
def sigma2_dispatch() -> Iterator[None]:
    """One Σ₂ᵖ-oracle dispatch; nested dispatches raise the depth."""
    SIGMA2_DISPATCHES.inc()
    depth = _DISPATCH_DEPTH.get() + 1
    token = _DISPATCH_DEPTH.set(depth)
    _record_depth(depth)
    try:
        yield
    finally:
        _DISPATCH_DEPTH.reset(token)


def note_sigma2_dispatch() -> None:
    """A degenerate (no inner work) Σ₂ᵖ dispatch, e.g. the machine's
    ``k* = 0`` branch that answers with a single plain SAT call."""
    SIGMA2_DISPATCHES.inc()
    _record_depth(_DISPATCH_DEPTH.get() + 1)


def counts_as_sigma2_dispatch(fn):
    """Mark a method as a Σ₂ᵖ-oracle primitive realization."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with sigma2_dispatch():
            return fn(*args, **kwargs)

    wrapper._counts_as_sigma2_dispatch = True
    return wrapper


@contextmanager
def observe() -> Iterator[OracleObservation]:
    """Capture the oracle work of a code window.

    The yielded :class:`OracleObservation` is filled when the block
    exits (including on error — a budget trip mid-query still leaves a
    meaningful partial observation behind).
    """
    observation = OracleObservation()
    window = _Window()
    token = _ACTIVE.set(_ACTIVE.get() + (window,))
    try:
        yield observation
    finally:
        _ACTIVE.reset(token)
        observation.np_calls = NP_CALLS.value - window.start_np
        observation.sigma2_dispatches = (
            SIGMA2_DISPATCHES.value - window.start_sigma2
        )
        observation.nodes = SEARCH_NODES.value - window.start_nodes
        observation.max_sigma2_depth = window.max_depth


def record_plan_outcome(plan, observation: OracleObservation) -> None:
    """Feed one planned query's predicted-vs-actual into the metrics.

    ``plan`` is a :class:`~repro.analysis.planner.QueryPlan` (duck-typed
    to keep this module free of analysis imports).  The ratio uses
    ``(actual + 1) / (predicted + 1)`` so zero-call fast paths land in
    the 1.0 bucket instead of dividing by zero.
    """
    PLANNER_QUERIES.labels(procedure=plan.procedure).inc()
    ratio = (observation.np_calls + 1.0) / (plan.predicted_np_calls + 1.0)
    PLANNER_NP_RATIO.observe(ratio)


def totals() -> OracleObservation:
    """Process-lifetime totals (monotone; never reset by queries)."""
    return OracleObservation(
        np_calls=NP_CALLS.value,
        sigma2_dispatches=SIGMA2_DISPATCHES.value,
        nodes=SEARCH_NODES.value,
        max_sigma2_depth=MAX_DISPATCH_DEPTH.value,
    )
