"""Complexity certification: observed oracle work vs. Table 1/Table 2.

The paper's upper bounds are promises about the *shape* of a decision
procedure: a coNP cell may consult an NP oracle O(1) times and must
never dispatch a Σ₂ᵖ oracle; a Π₂ᵖ cell may make polynomially many Σ₂ᵖ
dispatches but never nest them (depth ≤ 1); a Θ₃ᵖ = P^Σ₂ᵖ[O(log n)]
cell is realized here by the linear witness-counting machine, so its
dispatch count is linear in the vocabulary (the O(log n) binary-search
machine of :func:`repro.complexity.machines.theta_inference` is
exercised separately).  The :class:`Certifier` turns each table cell
into a :class:`CellEnvelope` of :class:`Bound`\\ s over the counters of
:mod:`repro.obs.accounting` and checks every query's
:class:`~repro.obs.accounting.OracleObservation` against it.

A failed check is **not** an exception by default: production mode
records a :class:`CertificateViolation` (span event + metric) and keeps
serving; ``strict=True`` (the test suite) raises
:class:`CertificationError` instead.

Engine scope:

* ``oracle`` / ``fresh`` / ``cached`` — certified against the oracle
  envelopes (np-calls, Σ₂ᵖ dispatches, dispatch depth);
* ``brute`` — certified against the exponential *node* envelope (brute
  enumeration is the ground truth, not a bounded-oracle machine, so its
  oracle counters are not constrained);
* ``resilient`` — not certified: retries re-run the procedure and
  legitimately multiply every counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.complexity.classes import CC, Claim, Regime, Task, table
from repro.obs.accounting import OracleObservation
from repro.obs.metrics import METRICS

VIOLATIONS = METRICS.counter(
    "repro_certificate_violations_total",
    "Per-query complexity-certificate violations",
    labelnames=("semantics", "task"),
)
CERTIFICATES = METRICS.counter(
    "repro_certificates_checked_total",
    "Per-query complexity certificates checked",
)

#: Engines certified against the oracle envelopes.  ``planned`` is
#: included: when the planner falls back to the default procedure it
#: must meet the regular table-cell envelope, and when it chooses a
#: fragment fast path the envelope is *tightened* (see
#: :data:`FRAGMENT_ENVELOPES`).
ORACLE_ENGINES = ("oracle", "fresh", "cached", "planned")

#: Registry aliases the certifier resolves without importing the
#: semantics registry (kept tiny on purpose; ``canonical_name`` falls
#: back to the live registry when available).
_ALIASES = {"circ": "ecwa", "wgcwa": "ddr", "pms": "pws"}

#: Map from session entry point to the paper's decision problem.
TASK_FOR_METHOD = {
    "ask": Task.FORMULA,
    "infers": Task.FORMULA,
    "ask_literal": Task.LITERAL,
    "infers_literal": Task.LITERAL,
    "has_model": Task.EXISTS_MODEL,
}


def canonical_name(semantics: str) -> str:
    """Resolve a semantics name/alias to its table row name."""
    name = semantics.lower()
    try:  # prefer the live registry (knows every alias)
        from repro.semantics.base import resolve_name

        name = resolve_name(name)
    except Exception:
        pass
    # The registry keeps ``circ`` as its own row; the tables fold it
    # into ``ecwa`` (same semantics, same bounds).
    return _ALIASES.get(name, name)


class CertificationError(AssertionError):
    """Raised in strict mode when an observation leaves its envelope."""

    def __init__(self, certificate: "ComplexityCertificate"):
        self.certificate = certificate
        detail = "; ".join(v.render() for v in certificate.violations)
        super().__init__(
            f"complexity certificate violated for "
            f"{certificate.semantics}/{certificate.task.name} "
            f"({certificate.claim.render()}): {detail}"
        )


@dataclass(frozen=True)
class Bound:
    """``const + per_atom·n + exp_coef·exp_base^n`` as a function of the
    vocabulary size ``n``; ``None``-like unboundedness via ``inf``."""

    const: float = 0.0
    per_atom: float = 0.0
    exp_coef: float = 0.0
    exp_base: float = 2.0

    def limit(self, n: int) -> float:
        value = self.const + self.per_atom * n
        if self.exp_coef:
            value += self.exp_coef * (self.exp_base ** n)
        return value

    def render(self) -> str:
        if math.isinf(self.const):
            return "unbounded"
        parts = []
        if self.const:
            parts.append(f"{self.const:g}")
        if self.per_atom:
            parts.append(f"{self.per_atom:g}n")
        if self.exp_coef:
            parts.append(f"{self.exp_coef:g}*{self.exp_base:g}^n")
        return " + ".join(parts) if parts else "0"


#: No constraint.
UNBOUNDED = Bound(const=math.inf)


@dataclass(frozen=True)
class CellEnvelope:
    """Per-cell resource envelope the certifier enforces."""

    np_calls: Bound = UNBOUNDED
    sigma2_dispatches: Bound = UNBOUNDED
    nodes: Bound = UNBOUNDED
    max_sigma2_depth: int = 1

    def render(self) -> str:
        return (
            f"np<={self.np_calls.render()} "
            f"sigma2<={self.sigma2_dispatches.render()} "
            f"nodes<={self.nodes.render()} "
            f"depth<={self.max_sigma2_depth}"
        )


@dataclass(frozen=True)
class CertificateViolation:
    """One observed counter outside its certified bound."""

    metric: str
    observed: float
    limit: float

    def render(self) -> str:
        return f"{self.metric}: observed {self.observed:g} > {self.limit:g}"


@dataclass
class ComplexityCertificate:
    """The outcome of checking one query against its table cell."""

    semantics: str
    task: Task
    regime: Regime
    engine: str
    claim: Claim
    envelope: Optional[CellEnvelope]
    observation: OracleObservation
    atoms: int
    violations: List[CertificateViolation] = field(default_factory=list)
    certified: bool = True  # False => engine out of certification scope
    #: The planner's :class:`~repro.analysis.planner.QueryPlan` when the
    #: query ran on the ``planned`` engine (``None`` otherwise).
    plan: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "semantics": self.semantics,
            "task": self.task.name,
            "regime": self.regime.name,
            "engine": self.engine,
            "claim": self.claim.render(),
            "envelope": self.envelope.render() if self.envelope else None,
            "certified": self.certified,
            "ok": self.ok,
            "observation": self.observation.as_dict(),
            "violations": [v.render() for v in self.violations],
            "plan": (
                self.plan.as_dict()
                if self.plan is not None and hasattr(self.plan, "as_dict")
                else None
            ),
        }

    def render(self) -> str:
        if not self.certified:
            return (
                f"{self.semantics}/{self.task.name}: "
                f"uncertified (engine={self.engine})"
            )
        status = "ok" if self.ok else "VIOLATED"
        text = (
            f"{self.semantics}/{self.task.name} "
            f"[{self.claim.render()}] {status}"
        )
        if self.violations:
            text += ": " + "; ".join(v.render() for v in self.violations)
        return text


# ----------------------------------------------------------------------
# Envelopes
# ----------------------------------------------------------------------
# Oracle-engine defaults per claimed class.  The realized machines are:
#  * coNP cells — O(1) plain SAT calls (the paper's headline invariant:
#    GCWA-family inference resolves in a constant number of NP-oracle
#    dispatches), no minimal-model (Σ₂ᵖ) primitive may be touched;
#  * O(1)/P/NP cells — at most linearly many plain SAT calls (e.g. the
#    Table 2 icwa EXISTS_MODEL machine verifies consistency by
#    *computing* the perfect model, one call per stratum/atom), still
#    no Σ₂ᵖ primitive;
#  * Σ₂ᵖ/Π₂ᵖ cells — linearly many Σ₂ᵖ dispatches (one per candidate
#    literal / blocking round), never nested; the plain SAT calls made
#    *inside* a dispatch (the CEGAR descent) are accounted to the
#    dispatch, not bounded separately;
#  * Θ₃ᵖ cells — the linear witness-count machine: one Σ₂ᵖ dispatch per
#    vocabulary atom plus bookkeeping.
# The constants are deliberately generous envelopes over the realized
# procedures (asserted tight-enough by the corpus tests); what they must
# never allow is growth of the *wrong shape* — e.g. a coNP cell making
# vocabulary-many oracle calls, or any cell nesting Σ₂ᵖ dispatches.
_ORACLE_DEFAULTS: Dict[CC, CellEnvelope] = {
    CC.CONSTANT: CellEnvelope(
        np_calls=Bound(const=8, per_atom=8),
        sigma2_dispatches=Bound(const=0),
        max_sigma2_depth=0,
    ),
    CC.P: CellEnvelope(
        np_calls=Bound(const=8, per_atom=4),
        sigma2_dispatches=Bound(const=0),
        max_sigma2_depth=0,
    ),
    CC.NP: CellEnvelope(
        np_calls=Bound(const=8, per_atom=8),
        sigma2_dispatches=Bound(const=0),
        max_sigma2_depth=0,
    ),
    CC.CONP: CellEnvelope(
        np_calls=Bound(const=8),
        sigma2_dispatches=Bound(const=0),
        max_sigma2_depth=0,
    ),
    CC.SIGMA2P: CellEnvelope(
        sigma2_dispatches=Bound(const=4, per_atom=4),
        max_sigma2_depth=1,
    ),
    CC.PI2P: CellEnvelope(
        sigma2_dispatches=Bound(const=4, per_atom=4),
        max_sigma2_depth=1,
    ),
    CC.THETA3P: CellEnvelope(
        sigma2_dispatches=Bound(const=4, per_atom=4),
        max_sigma2_depth=1,
    ),
}

#: Brute enumeration sweeps the 2^n interpretation lattice up to O(2^n)
#: times per query (a minimality check per candidate, repeated per
#: sub-query of a formula), hence the 4^n = (2^n)² shape with a measured
#: leading constant well under 256.
_BRUTE_ENVELOPE = CellEnvelope(
    nodes=Bound(const=64, exp_coef=256, exp_base=4.0),
    max_sigma2_depth=1,
)

#: Per-cell overrides, keyed ``(semantics, task, regime)``; looked up
#: before the class defaults.  Kept data-driven so measured deviations
#: of a realized machine from the class default are explicit and
#: reviewable here rather than hidden in looser global constants.
ENVELOPE_OVERRIDES: Dict[Tuple[str, Task, Regime], CellEnvelope] = {}

#: Tightened envelopes for the ``planned`` engine's fragment fast
#: paths, keyed by :attr:`repro.analysis.planner.QueryPlan.envelope_key`.
#: These *replace* the (looser) table-cell envelope when the planner
#: reports a fast path, turning the fragment claim into an enforced
#: contract:
#:
#: * ``horn`` — the unit-propagation path is pure P: **zero** NP calls,
#:   zero Σ₂ᵖ dispatches, zero enumeration nodes.  A Horn-planned query
#:   that issues even one SAT call is a certificate violation.
#: * ``stratified-normal`` — the iterated per-stratum least-model path
#:   is pure P exactly like the Horn one: all-zero counters enforced.
#: * ``hcf`` — the foundedness machine is NP-level: plain SAT calls
#:   (bounded linearly with a generous constant for the candidate
#:   loop), but **zero** Σ₂ᵖ dispatches ever.
#: * ``kernel`` — the bitset-kernel procedure is mask-packed brute
#:   enumeration behind the memo cache: **zero** NP calls and zero Σ₂ᵖ
#:   dispatches ever (a kernel-planned query that touches the SAT
#:   oracle is a violation); enumeration nodes get the brute engine's
#:   generous exponential bound.
FRAGMENT_ENVELOPES: Dict[str, CellEnvelope] = {
    "horn": CellEnvelope(
        np_calls=Bound(const=0),
        sigma2_dispatches=Bound(const=0),
        nodes=Bound(const=0),
        max_sigma2_depth=0,
    ),
    "stratified-normal": CellEnvelope(
        np_calls=Bound(const=0),
        sigma2_dispatches=Bound(const=0),
        nodes=Bound(const=0),
        max_sigma2_depth=0,
    ),
    "hcf": CellEnvelope(
        np_calls=Bound(const=32, per_atom=32),
        sigma2_dispatches=Bound(const=0),
        max_sigma2_depth=0,
    ),
    "kernel": CellEnvelope(
        np_calls=Bound(const=0),
        sigma2_dispatches=Bound(const=0),
        nodes=Bound(const=1024, exp_coef=256, exp_base=4.0),
        max_sigma2_depth=0,
    ),
}


class Certifier:
    """Checks per-query observations against the paper's tables.

    ``strict=True`` raises :class:`CertificationError` on violation;
    the default records the violation (metric + optional span event)
    and returns the certificate.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.checked = 0
        self.violated: List[ComplexityCertificate] = []

    # -- classification ------------------------------------------------
    @staticmethod
    def classify(db) -> Regime:
        """Which table a database is scored against."""
        return Regime.POSITIVE if db.is_positive else Regime.WITH_ICS

    @staticmethod
    def claim_for(semantics: str, task: Task, regime: Regime) -> Claim:
        """The table cell for a (semantics, problem, regime) triple."""
        name = canonical_name(semantics)
        try:
            return table(regime)[(name, task)]
        except KeyError:
            raise KeyError(
                f"no Table {'1' if regime is Regime.POSITIVE else '2'} "
                f"cell for ({name}, {task.name})"
            ) from None

    @staticmethod
    def envelope_for(
        semantics: str,
        task: Task,
        regime: Regime,
        engine: str,
        plan=None,
    ) -> Optional[CellEnvelope]:
        """The enforced envelope, or ``None`` if out of scope.

        A ``planned``-engine query with a fragment fast path gets the
        *tightened* :data:`FRAGMENT_ENVELOPES` entry instead of its
        table cell's — the fragment's class, enforced."""
        if engine == "brute":
            return _BRUTE_ENVELOPE
        if engine not in ORACLE_ENGINES:
            return None
        if engine == "planned" and plan is not None:
            key = getattr(plan, "envelope_key", None)
            if key is not None:
                return FRAGMENT_ENVELOPES[key]
        name = canonical_name(semantics)
        override = ENVELOPE_OVERRIDES.get((name, task, regime))
        if override is not None:
            return override
        claim = Certifier.claim_for(name, task, regime)
        return _ORACLE_DEFAULTS[claim.upper]

    # -- checking ------------------------------------------------------
    def check(
        self,
        semantics: str,
        task: Task,
        db,
        observation: OracleObservation,
        engine: str,
        span=None,
        plan=None,
    ) -> ComplexityCertificate:
        """Score one query's observation against its table cell (or,
        for a planned fast path, the tightened fragment envelope)."""
        regime = self.classify(db)
        name = canonical_name(semantics)
        claim = self.claim_for(name, task, regime)
        envelope = self.envelope_for(name, task, regime, engine, plan=plan)
        atoms = len(db.vocabulary)
        certificate = ComplexityCertificate(
            semantics=name,
            task=task,
            regime=regime,
            engine=engine,
            claim=claim,
            envelope=envelope,
            observation=observation,
            atoms=atoms,
            certified=envelope is not None,
            plan=plan,
        )
        if envelope is None:
            return certificate
        checks = (
            ("np_calls", observation.np_calls, envelope.np_calls),
            (
                "sigma2_dispatches",
                observation.sigma2_dispatches,
                envelope.sigma2_dispatches,
            ),
            ("nodes", observation.nodes, envelope.nodes),
        )
        for metric, observed, bound in checks:
            limit = bound.limit(atoms)
            if observed > limit:
                certificate.violations.append(
                    CertificateViolation(metric, observed, limit)
                )
        if observation.max_sigma2_depth > envelope.max_sigma2_depth:
            certificate.violations.append(
                CertificateViolation(
                    "max_sigma2_depth",
                    observation.max_sigma2_depth,
                    envelope.max_sigma2_depth,
                )
            )
        self.checked += 1
        CERTIFICATES.inc()
        if certificate.violations:
            self.violated.append(certificate)
            VIOLATIONS.labels(semantics=name, task=task.name).inc()
            if span is not None:
                for violation in certificate.violations:
                    span.add_event(
                        "CertificateViolation",
                        metric=violation.metric,
                        observed=violation.observed,
                        limit=violation.limit,
                        claim=claim.render(),
                    )
            if self.strict:
                raise CertificationError(certificate)
        return certificate


#: The default (non-strict, production-mode) certifier.
DEFAULT_CERTIFIER = Certifier(strict=False)
