"""Process-wide metrics: counters, gauges, histograms, text exposition.

One :class:`MetricsRegistry` (the module-level :data:`METRICS`) replaces
the ad-hoc counter plumbing that grew across
:mod:`repro.engine.cache`, :mod:`repro.sat.incremental` and
:mod:`repro.runtime.budget`:

* **instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram`, registered once by name and safe to pre-bind at
  import time (an instrument increment is a lock + an integer add, cheap
  enough for per-SAT-call paths);
* **labels** — an instrument registered with ``labelnames`` becomes a
  family; ``family.labels(kind="model_set")`` returns (and memoizes) the
  child instrument for that label set;
* **collectors** — subsystems that already keep their own counters (the
  engine cache, the solver pool) register a callback returning
  ``name -> value`` pairs; collectors are polled at exposition/snapshot
  time, so the hot paths of those subsystems pay nothing extra;
* **exposition** — :meth:`MetricsRegistry.expose` renders the
  Prometheus text format (``# HELP`` / ``# TYPE`` / sample lines),
  :meth:`MetricsRegistry.snapshot` the same data as a flat dict.

This module is intentionally at the very bottom of the layer graph: it
imports nothing from :mod:`repro`, so every subsystem (including
:mod:`repro.runtime`) can use it without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds (milliseconds-flavoured).
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


def _validate_name(name: str) -> str:
    if not name or not all(
        ch.isalnum() or ch in "_:" for ch in name
    ) or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotone counter (``set`` exists for reset/migration paths)."""

    kind = "counter"

    __slots__ = ("name", "help", "labels_kv", "_value", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels_kv: Tuple[Tuple[str, str], ...] = (),
    ):
        self.name = name
        self.help = help
        self.labels_kv = labels_kv
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Overwrite the value (counter-backed attribute migration and
        test resets; Prometheus-style use should only ``inc``)."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0)

    def samples(self) -> List[Tuple[str, str, float]]:
        """``(name, rendered-labels, value)`` sample rows."""
        return [(self.name, _render_labels(self.labels_kv), self.value)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, value={self.value})"


class Gauge(Counter):
    """A value that can go up and down."""

    kind = "gauge"

    __slots__ = ()

    def dec(self, amount: int = 1) -> None:
        self.inc(-amount)


class Histogram:
    """A fixed-bucket histogram (cumulative buckets, sum and count)."""

    kind = "histogram"

    __slots__ = (
        "name", "help", "labels_kv", "buckets", "_counts", "_sum",
        "_count", "_lock",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels_kv: Tuple[Tuple[str, str], ...] = (),
    ):
        self.name = name
        self.help = help
        self.labels_kv = labels_kv
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * len(self.buckets)
            self._sum = 0.0
            self._count = 0

    def samples(self) -> List[Tuple[str, str, float]]:
        with self._lock:
            counts = list(self._counts)
            total, amount = self._count, self._sum
        rows: List[Tuple[str, str, float]] = []
        for bound, count in zip(self.buckets, counts):
            labels = self.labels_kv + (("le", f"{bound:g}"),)
            rows.append(
                (f"{self.name}_bucket", _render_labels(labels), count)
            )
        inf_labels = self.labels_kv + (("le", "+Inf"),)
        rows.append((f"{self.name}_bucket", _render_labels(inf_labels), total))
        base = _render_labels(self.labels_kv)
        rows.append((f"{self.name}_sum", base, amount))
        rows.append((f"{self.name}_count", base, total))
        return rows

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class _Family:
    """A labelled instrument family; children are memoized per label set."""

    __slots__ = ("name", "help", "labelnames", "_factory", "_children",
                 "_lock", "kind")

    def __init__(self, name, help, labelnames, factory, kind):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        self.kind = kind

    def labels(self, **kv: str):
        if set(kv) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(kv))}"
            )
        key = tuple(str(kv[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                labels_kv = tuple(zip(self.labelnames, key))
                child = self._factory(self.name, self.help, labels_kv)
                self._children[key] = child
            return child

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()

    def samples(self) -> List[Tuple[str, str, float]]:
        with self._lock:
            children = [
                self._children[key] for key in sorted(self._children)
            ]
        rows: List[Tuple[str, str, float]] = []
        for child in children:
            rows.extend(child.samples())
        return rows


class MetricsRegistry:
    """The process-wide instrument store.

    Registration is idempotent: requesting an existing name returns the
    existing instrument (a kind or label mismatch raises instead, so two
    subsystems cannot silently fight over one name).
    """

    def __init__(self) -> None:
        self._instruments: "Dict[str, Any]" = {}
        self._collectors: Dict[str, Callable[[], Dict[str, float]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _register(self, name, help, labelnames, factory, kind):
        _validate_name(name)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {kind}"
                    )
                if labelnames:
                    if (
                        not isinstance(existing, _Family)
                        or existing.labelnames != tuple(labelnames)
                    ):
                        raise ValueError(
                            f"metric {name!r} label mismatch"
                        )
                elif isinstance(existing, _Family):
                    raise ValueError(f"metric {name!r} label mismatch")
                return existing
            if labelnames:
                instrument = _Family(name, help, labelnames, factory, kind)
            else:
                instrument = factory(name, help, ())
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "",
        labelnames: Iterable[str] = (),
    ):
        """Register (or fetch) a counter / counter family."""
        return self._register(
            name, help, tuple(labelnames),
            lambda n, h, kv: Counter(n, h, labels_kv=kv), "counter",
        )

    def gauge(
        self, name: str, help: str = "",
        labelnames: Iterable[str] = (),
    ):
        """Register (or fetch) a gauge / gauge family."""
        return self._register(
            name, help, tuple(labelnames),
            lambda n, h, kv: Gauge(n, h, labels_kv=kv), "gauge",
        )

    def histogram(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labelnames: Iterable[str] = (),
    ):
        """Register (or fetch) a histogram / histogram family."""
        bounds = tuple(buckets)
        return self._register(
            name, help, tuple(labelnames),
            lambda n, h, kv: Histogram(n, h, buckets=bounds, labels_kv=kv),
            "histogram",
        )

    def get(self, name: str) -> Optional[Any]:
        """The registered instrument, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    # ------------------------------------------------------------------
    def register_collector(
        self, name: str, collect: Callable[[], Dict[str, float]]
    ) -> None:
        """Register a pull-style source: ``collect()`` returns
        ``metric-name -> value`` gauges polled at exposition time.
        Re-registering a name replaces the callback (module reloads)."""
        with self._lock:
            self._collectors[name] = collect

    def _collected(self) -> List[Tuple[str, str, float]]:
        with self._lock:
            collectors = list(self._collectors.items())
        rows: List[Tuple[str, str, float]] = []
        for _, collect in sorted(collectors):
            try:
                values = collect()
            except Exception:  # a dying subsystem must not kill exposition
                continue
            for name, value in sorted(values.items()):
                rows.append((name, "", float(value)))
        return rows

    # ------------------------------------------------------------------
    def expose(self) -> str:
        """The Prometheus text exposition of every instrument and
        collector (``# HELP`` / ``# TYPE`` headers + sample lines)."""
        with self._lock:
            instruments = [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]
        lines: List[str] = []
        for instrument in instruments:
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for name, labels, value in instrument.samples():
                lines.append(f"{name}{labels} {value:g}")
        for name, labels, value in self._collected():
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{labels} {value:g}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, float]:
        """Every sample as a flat ``name{labels} -> value`` dict."""
        with self._lock:
            instruments = [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]
        flat: Dict[str, float] = {}
        for instrument in instruments:
            for name, labels, value in instrument.samples():
                flat[f"{name}{labels}"] = value
        for name, labels, value in self._collected():
            flat[f"{name}{labels}"] = value
        return flat

    def reset(self) -> None:
        """Zero every registered instrument (test isolation; collectors
        are pull-style and are not touched)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


#: The process-wide registry.
METRICS = MetricsRegistry()
