"""Hierarchical spans: query → semantics → engine → oracle → SAT scope.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest
via a :class:`~contextvars.ContextVar`, so a span opened inside another
becomes its child without any explicit parent plumbing.  Finished root
spans are kept in a bounded buffer and can be exported two ways:

* :meth:`Tracer.export_jsonl` — one JSON object per root span, children
  inlined (machine-readable; the ``repro-ddb trace --jsonl`` output);
* :meth:`Tracer.render_tree` — a human-readable indented tree with
  durations and attributes (the default ``repro-ddb trace`` output).

Tracing is **off by default**: the module-level active tracer starts as
a :class:`NoopTracer`, whose :meth:`~NoopTracer.span` returns one
pre-built singleton — the disabled hot path allocates nothing.  Both
no-op classes keep class-level construction counters precisely so the
test suite can *prove* that (``tests/test_obs.py`` guards the zero with
a counter, not a timing).  Instrumentation sites additionally check
``tracer.is_noop`` and skip attribute preparation entirely.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Deque, Dict, List, Optional


class Span:
    """One timed, attributed node of a trace tree."""

    __slots__ = (
        "name", "attributes", "events", "children", "start", "end",
        "_tracer", "_token",
    )

    #: Class-level construction counter (allocation accounting in tests).
    created = 0

    is_noop = False

    def __init__(self, name: str, tracer: "Tracer", **attributes: Any):
        Span.created += 1
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes)
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self._tracer = tracer
        self._token = None

    # -- recording -----------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(
            {
                "name": name,
                "at_ms": (time.perf_counter() - self.start) * 1000.0,
                **attributes,
            }
        )

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "Span":
        self._token = self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.add_event("error", type=exc_type.__name__, message=str(exc))
        self._tracer._pop(self, self._token)
        self._token = None

    # -- export --------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        stop = self.end if self.end is not None else time.perf_counter()
        return (stop - self.start) * 1000.0

    def as_dict(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.events:
            node["events"] = [dict(event) for event in self.events]
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(self.attributes.items())
        )
        line = f"{pad}{self.name}  [{self.duration_ms:.2f} ms]"
        if attrs:
            line += f"  {attrs}"
        lines = [line]
        for event in self.events:
            extras = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.items())
                if key not in ("name", "at_ms")
            )
            event_line = (
                f"{pad}  ! {event['name']} @{event['at_ms']:.2f}ms"
            )
            if extras:
                event_line += f" {extras}"
            lines.append(event_line)
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, children={len(self.children)})"


class NoopSpan:
    """The do-nothing span; every method is inert, and the tracer hands
    out one shared instance so the disabled path never allocates."""

    __slots__ = ()

    #: Class-level construction counter — must stay at 1 (the singleton).
    instances = 0

    is_noop = True

    def __new__(cls) -> "NoopSpan":
        cls.instances += 1
        return super().__new__(cls)

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = NoopSpan()


class NoopTracer:
    """The disabled tracer: ``span()`` returns the singleton, nothing is
    recorded, nothing is retained."""

    __slots__ = ()

    is_noop = True

    def span(self, name: str, **attributes: Any) -> NoopSpan:
        return _NOOP_SPAN

    def current(self) -> NoopSpan:
        return _NOOP_SPAN

    def finished_roots(self) -> List[Span]:
        return []

    def export_jsonl(self) -> str:
        return ""

    def render_tree(self) -> str:
        return ""


class Tracer:
    """The recording tracer.

    Spans opened while another span of the *same context* is live become
    its children; spans opened at top level become roots and, once
    closed, land in a bounded ``finished_roots`` buffer.
    """

    is_noop = False

    def __init__(self, max_finished: int = 256):
        self._current: ContextVar[Optional[Span]] = ContextVar(
            f"repro_trace_{id(self):x}", default=None
        )
        self._finished: Deque[Span] = deque(maxlen=max_finished)
        self._lock = threading.Lock()

    # -- span plumbing (driven by Span.__enter__/__exit__) -------------
    def span(self, name: str, **attributes: Any) -> Span:
        return Span(name, self, **attributes)

    def current(self) -> Optional[Span]:
        return self._current.get()

    def _push(self, span: Span):
        parent = self._current.get()
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        return self._current.set(span)

    def _pop(self, span: Span, token) -> None:
        if token is not None:
            self._current.reset(token)
        if self._current.get() is None:
            with self._lock:
                self._finished.append(span)

    # -- export --------------------------------------------------------
    def finished_roots(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def export_jsonl(self) -> str:
        """One newline-terminated JSON object per finished root span."""
        return "".join(
            json.dumps(root.as_dict(), sort_keys=True) + "\n"
            for root in self.finished_roots()
        )

    def render_tree(self) -> str:
        """All finished roots as an indented human-readable tree."""
        return "\n".join(root.render() for root in self.finished_roots())


#: The module-level active tracer.  Deliberately *not* a ContextVar:
#: instrumentation sites in worker threads must see an enablement flip
#: made by the main thread.
_active: "NoopTracer | Tracer" = NoopTracer()


def active_tracer() -> "NoopTracer | Tracer":
    """The tracer instrumentation sites should consult."""
    return _active


def set_tracer(tracer: "NoopTracer | Tracer") -> "NoopTracer | Tracer":
    """Install ``tracer`` as the active one; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


def use_tracer(tracer: "NoopTracer | Tracer"):
    """Context manager: install ``tracer`` for the duration of a block."""
    return _UseTracer(tracer)


class _UseTracer:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc, tb):
        set_tracer(self._previous)
