"""2QBF: the package's Σ₂ᵖ oracle substrate.

``∃X∀Y φ`` validity is the canonical Σ₂ᵖ-complete problem; the paper's
hardness reductions start from it.  :func:`~repro.qbf.solver.solve_qbf2_cegar`
decides it by counterexample-guided abstraction refinement over the SAT
oracle; :func:`~repro.qbf.solver.solve_qbf2_brute` is the reference.
"""

from .formula import (
    QBF2,
    dnf_formula,
    exists_forall,
    forall_exists,
    substitute,
)
from .solver import (
    Qbf2Result,
    is_valid,
    solve_exists_forall_cegar,
    solve_qbf2_brute,
    solve_qbf2_cegar,
)

__all__ = [
    "QBF2",
    "dnf_formula",
    "exists_forall",
    "forall_exists",
    "substitute",
    "Qbf2Result",
    "is_valid",
    "solve_exists_forall_cegar",
    "solve_qbf2_brute",
    "solve_qbf2_cegar",
]
