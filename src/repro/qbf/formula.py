"""2QBF formulas (one quantifier alternation).

The paper's hardness results reduce from validity of quantified Boolean
formulas with one alternation:

* ``∃X ∀Y φ`` — the canonical Σ₂ᵖ-complete problem (``QBF2,∃``),
* ``∀X ∃Y φ`` — the canonical Π₂ᵖ-complete problem.

A :class:`QBF2` holds the two variable blocks and a propositional matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from ..errors import ReproError
from ..logic.formula import (
    BOTTOM,
    TOP,
    And,
    Bottom,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
)


def substitute(formula: Formula, mapping: Dict[str, bool]) -> Formula:
    """Replace atoms by truth constants and simplify on the fly."""
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Var):
        if formula.name in mapping:
            return TOP if mapping[formula.name] else BOTTOM
        return formula
    if isinstance(formula, Not):
        inner = substitute(formula.operand, mapping)
        if isinstance(inner, Top):
            return BOTTOM
        if isinstance(inner, Bottom):
            return TOP
        return Not(inner)
    if isinstance(formula, And):
        parts = []
        for op in formula.operands:
            sub = substitute(op, mapping)
            if isinstance(sub, Bottom):
                return BOTTOM
            if not isinstance(sub, Top):
                parts.append(sub)
        return conj(parts)
    if isinstance(formula, Or):
        parts = []
        for op in formula.operands:
            sub = substitute(op, mapping)
            if isinstance(sub, Top):
                return TOP
            if not isinstance(sub, Bottom):
                parts.append(sub)
        return disj(parts)
    if isinstance(formula, Implies):
        return substitute(
            Or(Not(formula.antecedent), formula.consequent), mapping
        )
    if isinstance(formula, Iff):
        left = substitute(formula.left, mapping)
        right = substitute(formula.right, mapping)
        if isinstance(left, Top):
            return right
        if isinstance(left, Bottom):
            return substitute(Not(right), {})
        if isinstance(right, Top):
            return left
        if isinstance(right, Bottom):
            return substitute(Not(left), {})
        return Iff(left, right)
    raise TypeError(f"unknown formula node: {formula!r}")


@dataclass(frozen=True)
class QBF2:
    """A 2QBF sentence ``Q1 X Q2 Y . matrix`` with ``Q1 ≠ Q2``.

    Attributes:
        exists_first: ``True`` for ``∃X ∀Y``, ``False`` for ``∀X ∃Y``.
        x: the outer block.
        y: the inner block.
        matrix: the propositional matrix; its atoms must lie in ``x ∪ y``.
    """

    exists_first: bool
    x: FrozenSet[str]
    y: FrozenSet[str]
    matrix: Formula

    def __post_init__(self) -> None:
        x = frozenset(self.x)
        y = frozenset(self.y)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        if x & y:
            raise ReproError(
                "quantifier blocks overlap: " + ", ".join(sorted(x & y))
            )
        stray = self.matrix.atoms() - x - y
        if stray:
            raise ReproError(
                "matrix atoms outside both blocks: " + ", ".join(sorted(stray))
            )

    def negated(self) -> "QBF2":
        """``¬(Q1 X Q2 Y φ) = Q1' X Q2' Y ¬φ`` with flipped quantifiers."""
        return QBF2(not self.exists_first, self.x, self.y, Not(self.matrix))

    def __str__(self) -> str:
        q1, q2 = ("exists", "forall") if self.exists_first else (
            "forall",
            "exists",
        )
        xs = ",".join(sorted(self.x)) or "-"
        ys = ",".join(sorted(self.y)) or "-"
        return f"{q1} {xs} {q2} {ys} . {self.matrix}"


def exists_forall(
    x: Iterable[str], y: Iterable[str], matrix: Formula
) -> QBF2:
    """``∃X ∀Y . matrix`` (validity is Σ₂ᵖ-complete)."""
    return QBF2(True, frozenset(x), frozenset(y), matrix)


def forall_exists(
    x: Iterable[str], y: Iterable[str], matrix: Formula
) -> QBF2:
    """``∀X ∃Y . matrix`` (validity is Π₂ᵖ-complete)."""
    return QBF2(False, frozenset(x), frozenset(y), matrix)


def dnf_formula(terms: Iterable[Tuple[Iterable[str], Iterable[str]]]) -> Formula:
    """Build a DNF formula from ``(positive_atoms, negative_atoms)`` terms.

    The classical Σ₂ᵖ-complete problem uses matrices in 3DNF; the
    generators and reductions construct them through this helper.
    """
    disjuncts = []
    for positive, negative in terms:
        literals = [Var(a) for a in positive]
        literals += [Not(Var(a)) for a in negative]
        disjuncts.append(conj(literals))
    return disj(disjuncts)
