"""Deciding 2QBF validity.

Two engines:

* :func:`solve_qbf2_brute` — enumerate the outer block, one SAT call per
  assignment for the inner block.  Ground truth for tests.
* :func:`solve_qbf2_cegar` — counterexample-guided abstraction refinement
  (the standard 2QBF algorithm): a SAT solver proposes outer assignments,
  a second SAT solver refutes them, and every refutation strengthens the
  abstraction.  This is the package's Σ₂ᵖ oracle engine.

Both return a :class:`Qbf2Result` carrying the verdict, a witness for the
outer block when one exists, and the number of SAT (NP-oracle) calls made.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..logic.formula import Formula, Not
from ..runtime.budget import check_deadline
from ..sat.solver import SatSolver
from .formula import QBF2, substitute


@dataclass
class Qbf2Result:
    """Outcome of a 2QBF validity check.

    Attributes:
        valid: the verdict.
        witness: for a valid ``∃X∀Y`` (or an invalid ``∀X∃Y``), an outer
            assignment proving it, as ``{atom: bool}``; otherwise ``None``.
        sat_calls: NP-oracle calls spent.
    """

    valid: bool
    witness: Optional[Dict[str, bool]]
    sat_calls: int


def _counterexample(
    matrix: Formula, outer: Dict[str, bool], inner_atoms
) -> "tuple[Optional[Dict[str, bool]], int]":
    """An inner assignment falsifying ``matrix`` under ``outer``, if any.

    Returns ``(assignment_or_None, sat_calls)``.
    """
    reduced = substitute(matrix, outer)
    # Bare-formula one-shot over a substituted matrix: there is no
    # database context to pool on, and the reduced formula differs every
    # call, so a throwaway solver is the right shape here.
    solver = SatSolver()  # lint: ok RPR001 -- bare CNF, no db context
    for atom in sorted(inner_atoms):
        solver.variables.intern(atom)
    solver.add_formula(Not(reduced))
    if not solver.solve():
        return None, 1
    model = solver.model(restrict_to=inner_atoms)
    return {atom: atom in model for atom in inner_atoms}, 1


def solve_exists_forall_cegar(qbf: QBF2) -> Qbf2Result:
    """CEGAR decision for ``∃X ∀Y φ``."""
    assert qbf.exists_first
    x_atoms = sorted(qbf.x)
    y_atoms = sorted(qbf.y)
    # The abstraction accumulates refinements *permanently* across the
    # CEGAR loop — a bare monotone solver, with no database to key a
    # pool entry on.
    abstraction = SatSolver()  # lint: ok RPR001 -- bare CNF, no db context
    for atom in x_atoms:
        abstraction.variables.intern(atom)
    sat_calls = 0
    while True:
        check_deadline()
        sat_calls += 1
        if not abstraction.solve():
            return Qbf2Result(False, None, sat_calls)
        model = abstraction.model(restrict_to=x_atoms)
        outer = {atom: atom in model for atom in x_atoms}
        counterexample, calls = _counterexample(qbf.matrix, outer, y_atoms)
        sat_calls += calls
        if counterexample is None:
            return Qbf2Result(True, outer, sat_calls)
        # Refine: under this Y-counterexample the matrix must still hold,
        # i.e. add φ[Y := ŷ] as a constraint over X.
        refinement = substitute(qbf.matrix, counterexample)
        abstraction.add_formula(refinement)


def solve_qbf2_cegar(qbf: QBF2) -> Qbf2Result:
    """CEGAR decision for either quantifier order."""
    if qbf.exists_first:
        return solve_exists_forall_cegar(qbf)
    # ∀X∃Y φ is valid iff ∃X∀Y ¬φ is invalid.
    dual = QBF2(True, qbf.x, qbf.y, Not(qbf.matrix))
    result = solve_exists_forall_cegar(dual)
    witness = result.witness if result.valid else None
    return Qbf2Result(not result.valid, witness, result.sat_calls)


def solve_qbf2_brute(qbf: QBF2) -> Qbf2Result:
    """Brute-force decision: enumerate the outer block explicitly.

    For ``∃X∀Y`` the inner check is validity of the reduced matrix; for
    ``∀X∃Y`` it is satisfiability.
    """
    x_atoms = sorted(qbf.x)
    y_atoms = sorted(qbf.y)
    sat_calls = 0
    for bits in itertools.product((False, True), repeat=len(x_atoms)):
        outer = dict(zip(x_atoms, bits))
        if qbf.exists_first:
            counterexample, calls = _counterexample(
                qbf.matrix, outer, y_atoms
            )
            sat_calls += calls
            if counterexample is None:  # ∀Y holds under this outer guess
                return Qbf2Result(True, outer, sat_calls)
        else:
            reduced = substitute(qbf.matrix, outer)
            inner_solver = SatSolver()  # lint: ok RPR001 -- bare CNF, no db context
            for atom in y_atoms:
                inner_solver.variables.intern(atom)
            inner_solver.add_formula(reduced)
            sat_calls += 1
            if not inner_solver.solve():  # no ∃Y for this outer choice
                return Qbf2Result(False, outer, sat_calls)
    if qbf.exists_first:
        return Qbf2Result(False, None, sat_calls)
    return Qbf2Result(True, None, sat_calls)


def is_valid(qbf: QBF2, engine: str = "cegar") -> bool:
    """Validity of a 2QBF sentence."""
    if engine == "cegar":
        return solve_qbf2_cegar(qbf).valid
    if engine == "brute":
        return solve_qbf2_brute(qbf).valid
    raise ValueError(f"unknown QBF engine {engine!r}")
