"""Interactive session: ``repro-ddb repl``.

A small read-eval loop over a :class:`~repro.session.DatabaseSession`.
Input lines are either *commands* (starting with ``:``) or *queries*
(formulas, answered under the current semantics and mode):

    :load FILE          replace the database from a file
    :add CLAUSE.        add a clause to the database
    :db                 show the current database
    :semantics NAME     switch semantics (gcwa, egcwa, dsm, ...)
    :mode cautious|brave
    :models             print the selected model set
    :exists             model existence under the current semantics
    :closure            the GCWA/WGCWA closure literals
    :explain QUERY      counter-model / derivation evidence for a query
    :stratify           show the stratification
    :stats              session accounting
    :help               this text
    :quit               leave

Everything else is parsed as a formula and answered, with a
counter-model when the (cautious) answer is negative.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, TextIO

from .errors import ReproError
from .logic.database import DisjunctiveDatabase
from .logic.parser import parse_clause, parse_database
from .semantics import resolve_name
from .session import DatabaseSession

_HELP = __doc__.split("Input lines", 1)[1]


class Repl:
    """The REPL engine (I/O injected for testability)."""

    def __init__(
        self,
        db: Optional[DisjunctiveDatabase] = None,
        semantics: str = "egcwa",
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
    ):
        self.db = db if db is not None else DisjunctiveDatabase()
        self.semantics = resolve_name(semantics)
        self.mode = "cautious"
        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self._session: Optional[DatabaseSession] = None

    # ------------------------------------------------------------------
    def _print(self, *parts) -> None:
        print(*parts, file=self.stdout)

    @property
    def session(self) -> DatabaseSession:
        if self._session is None:
            self._session = DatabaseSession(
                self.db, default_semantics=self.semantics
            )
        return self._session

    def _invalidate(self) -> None:
        self._session = None

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def _cmd_load(self, argument: str) -> None:
        with open(argument) as handle:
            self.db = parse_database(handle.read())
        self._invalidate()
        self._print(f"loaded {len(self.db)} clauses, "
                    f"{len(self.db.vocabulary)} atoms")

    def _cmd_add(self, argument: str) -> None:
        clause = parse_clause(argument)
        self.db = self.db.with_clauses([clause])
        self._invalidate()
        self._print(f"added: {clause}")

    def _cmd_db(self, _argument: str) -> None:
        self._print(str(self.db) if len(self.db) else "(empty database)")

    def _cmd_semantics(self, argument: str) -> None:
        if not argument:
            self._print(f"current semantics: {self.semantics}")
            return
        self.semantics = resolve_name(argument)
        self._invalidate()
        self._print(f"semantics: {self.semantics}")

    def _cmd_mode(self, argument: str) -> None:
        if argument not in ("cautious", "brave"):
            self._print("mode must be 'cautious' or 'brave'")
            return
        self.mode = argument
        self._print(f"mode: {self.mode}")

    def _cmd_models(self, _argument: str) -> None:
        models = sorted(self.session.models(self.semantics), key=str)
        self._print(f"{self.semantics.upper()} selects "
                    f"{len(models)} model(s):")
        for model in models:
            self._print("  ", model)

    def _cmd_exists(self, _argument: str) -> None:
        self._print(self.session.has_model(self.semantics))

    def _cmd_closure(self, _argument: str) -> None:
        from .semantics.state import (
            gcwa_closure_literals,
            wgcwa_closure_literals,
        )

        if self.db.has_negation:
            self._print("closures need a deductive database")
            return
        self._print(
            "WGCWA:",
            ", ".join(sorted(wgcwa_closure_literals(self.db)))
            or "(nothing)",
        )
        self._print(
            "GCWA: ",
            ", ".join(sorted(gcwa_closure_literals(self.db)))
            or "(nothing)",
        )

    def _cmd_explain(self, argument: str) -> None:
        from .semantics.explain import (
            derivation_of,
            explain_non_inference,
        )
        from .logic.parser import parse_formula

        if not argument:
            self._print("usage: :explain QUERY")
            return
        formula = parse_formula(argument)
        certificate = explain_non_inference(
            self.db, formula, self.semantics
        )
        if certificate is None:
            self._print(
                f"{self.semantics.upper()} infers {formula} — no "
                "counter-model exists"
            )
        else:
            self._print(certificate.render())
        # For single positive atoms on deductive DBs, show a derivation.
        atoms = formula.atoms()
        if len(atoms) == 1 and not self.db.has_negation:
            (atom,) = atoms
            derivation = derivation_of(self.db, atom)
            if derivation is not None:
                self._print(derivation.render())
            else:
                self._print(f"{atom} is not possibly true (no derivation)")

    def _cmd_stratify(self, _argument: str) -> None:
        from .engine.cache import stratification_for

        stratification = stratification_for(self.db)
        if stratification is None:
            self._print("not stratified")
            return
        for index, stratum in enumerate(stratification.strata, 1):
            self._print(f"S{index}: {{{', '.join(sorted(stratum))}}}")

    def _cmd_stats(self, _argument: str) -> None:
        for key, value in self.session.stats().items():
            self._print(f"{key}: {value}")

    def _cmd_help(self, _argument: str) -> None:
        self._print("Input lines" + _HELP)

    # ------------------------------------------------------------------
    def handle(self, line: str) -> bool:
        """Process one input line; returns ``False`` to stop the loop."""
        line = line.strip()
        if not line:
            return True
        if line in (":quit", ":q", ":exit"):
            return False
        if line.startswith(":"):
            command, _, argument = line[1:].partition(" ")
            handlers: Dict[str, Callable[[str], None]] = {
                "load": self._cmd_load,
                "add": self._cmd_add,
                "db": self._cmd_db,
                "semantics": self._cmd_semantics,
                "mode": self._cmd_mode,
                "models": self._cmd_models,
                "exists": self._cmd_exists,
                "closure": self._cmd_closure,
                "explain": self._cmd_explain,
                "stratify": self._cmd_stratify,
                "stats": self._cmd_stats,
                "help": self._cmd_help,
            }
            handler = handlers.get(command)
            if handler is None:
                self._print(f"unknown command :{command} (try :help)")
                return True
            try:
                handler(argument.strip())
            except (ReproError, OSError) as error:
                self._print(f"error: {error}")
            return True
        # A query.
        try:
            answer = self.session.ask(
                line, semantics=self.semantics, mode=self.mode
            )
        except ReproError as error:
            self._print(f"error: {error}")
            return True
        self._print(answer.render())
        return True

    def run(self) -> None:
        """The blocking loop (EOF or :quit ends it)."""
        self._print(
            "repro-ddb repl — :help for commands, :quit to leave"
        )
        for line in self.stdin:
            if not self.handle(line):
                break


def run_repl(db: Optional[DisjunctiveDatabase] = None,
             semantics: str = "egcwa") -> int:
    """Entry point used by the CLI."""
    Repl(db=db, semantics=semantics).run()
    return 0
