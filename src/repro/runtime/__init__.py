"""Resource governance: budgets, deadlines, and deterministic faults.

This subsystem makes evaluation *bounded* and *testably failure-tolerant*.
It sits below :mod:`repro.engine` (whose ``resilient`` engine builds on
it) and is imported by the SAT, enumeration and oracle layers for their
cooperative tick hooks:

* :mod:`repro.runtime.budget` — :class:`Budget` limits (wall-clock ms,
  SAT-call ceiling, enumeration-node ceiling), the active
  :class:`BudgetScope`, the typed :class:`BudgetExceeded`, and the
  process-wide :data:`RUNTIME_STATS` counters;
* :mod:`repro.runtime.faults` — seeded, deterministic :class:`FaultPlan`
  injection of latency, transient SAT faults and worker crashes;
* :mod:`repro.runtime.outcome` — the structured :class:`Outcome` /
  :class:`Status` the resilient engine returns instead of hanging.

See ``docs/robustness_guide.md`` for the budget model and the
degradation ladder.
"""

from .budget import (
    NODE_CHECK_INTERVAL,
    RUNTIME_STATS,
    Budget,
    BudgetExceeded,
    BudgetScope,
    ResourceUsage,
    RuntimeStats,
    budget_scope,
    check_deadline,
    current_scope,
    note_nodes,
    note_sat_call,
)
from ..obs.accounting import note_np_call
from .faults import (
    FaultInjected,
    FaultPlan,
    WorkerCrash,
    current_fault_plan,
    fault_plan,
    maybe_crash_worker,
    maybe_fault_sat_call,
)
from .outcome import Outcome, Status


def observe_sat_call() -> None:
    """The SAT layer's single per-``solve`` hook: record the NP-oracle
    invocation in the observability accounting (never raises — it must
    run even for the call that trips a budget), tick the active budget
    scope (may raise :class:`BudgetExceeded`), then apply the active
    fault plan (may sleep or raise :class:`FaultInjected`)."""
    note_np_call()
    note_sat_call()
    maybe_fault_sat_call()


def runtime_stats() -> dict:
    """Snapshot of the process-wide runtime counters."""
    return RUNTIME_STATS.snapshot()


__all__ = [
    "NODE_CHECK_INTERVAL",
    "RUNTIME_STATS",
    "Budget",
    "BudgetExceeded",
    "BudgetScope",
    "FaultInjected",
    "FaultPlan",
    "Outcome",
    "ResourceUsage",
    "RuntimeStats",
    "Status",
    "WorkerCrash",
    "budget_scope",
    "check_deadline",
    "current_fault_plan",
    "current_scope",
    "fault_plan",
    "maybe_crash_worker",
    "maybe_fault_sat_call",
    "note_nodes",
    "note_sat_call",
    "observe_sat_call",
    "runtime_stats",
]
