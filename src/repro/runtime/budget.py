"""Cooperative resource budgets (wall clock, SAT calls, search nodes).

The paper's upper bounds are oracle algorithms whose worst cases jump to
Σ₂ᵖ/Π₂ᵖ, so a single hard instance can occupy a SAT solve or a ``2^|V|``
enumeration indefinitely.  This module makes every such loop *bounded*:

* :class:`Budget` — an immutable limit triple: wall-clock milliseconds,
  NP-oracle (SAT ``solve``) calls, and enumeration/search nodes;
* :class:`BudgetScope` — the live accounting object a computation runs
  under, installed with :func:`budget_scope`;
* :class:`BudgetExceeded` — the typed exception a tripped scope raises,
  carrying the :class:`ResourceUsage` consumed up to the trip.

Enforcement is *cooperative*: the solver, enumeration and oracle layers
call the module-level hooks (:func:`note_sat_call`, :func:`note_nodes`,
:func:`check_deadline`) at their natural work units.  When no scope is
active the hooks are a single ``ContextVar`` read, so unbudgeted callers
pay nothing.  Scopes nest: an inner scope forwards its consumption to the
enclosing one, and whichever limit trips first raises.

The counters that tripped budgets, faults and degradations accumulate in
the process-wide :data:`RUNTIME_STATS`, surfaced by ``repro-ddb query`` /
``repro-ddb faults`` and :meth:`repro.session.DatabaseSession.stats`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, Optional

from ..errors import BudgetExceededError
from ..obs.accounting import note_nodes as _account_nodes
from ..obs.metrics import METRICS

#: How many nodes are ticked between wall-clock checks inside node loops
#: (a node is far cheaper than a SAT call, so the clock is read less often).
NODE_CHECK_INTERVAL = 64


@dataclass(frozen=True)
class Budget:
    """An immutable resource-limit triple.

    Attributes:
        wall_ms: wall-clock ceiling in milliseconds (``None`` = unbounded).
        max_sat_calls: NP-oracle (SAT ``solve``) call ceiling.
        max_nodes: enumeration/DPLL-search node ceiling.

    A limit of ``None`` leaves that resource unbounded; the all-``None``
    budget is legal and never trips (useful as a neutral default).
    """

    wall_ms: Optional[float] = None
    max_sat_calls: Optional[int] = None
    max_nodes: Optional[int] = None

    def __post_init__(self):
        for name in ("wall_ms", "max_sat_calls", "max_nodes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def unbounded(self) -> bool:
        """Whether no limit is set at all."""
        return (
            self.wall_ms is None
            and self.max_sat_calls is None
            and self.max_nodes is None
        )

    def scaled(self, factor: float) -> "Budget":
        """A budget with every set limit multiplied by ``factor`` (used by
        the resilient engine to reserve headroom for fallbacks)."""
        return replace(
            self,
            wall_ms=None if self.wall_ms is None else self.wall_ms * factor,
            max_sat_calls=(
                None
                if self.max_sat_calls is None
                else int(self.max_sat_calls * factor)
            ),
            max_nodes=(
                None if self.max_nodes is None else int(self.max_nodes * factor)
            ),
        )

    def render(self) -> str:
        """Human-readable one-line form (``-`` marks unbounded limits)."""
        wall = "-" if self.wall_ms is None else f"{self.wall_ms:g}ms"
        sat = "-" if self.max_sat_calls is None else str(self.max_sat_calls)
        nodes = "-" if self.max_nodes is None else str(self.max_nodes)
        return f"wall {wall}, sat-calls {sat}, nodes {nodes}"


@dataclass
class ResourceUsage:
    """Resources consumed by (part of) a computation.

    The counters *include* the attempt that tripped the budget: a scope
    with ``max_sat_calls=5`` raises on the sixth call with
    ``sat_calls == 6``, so the usage is an exact account of work started.
    """

    elapsed_ms: float = 0.0
    sat_calls: int = 0
    nodes: int = 0

    def render(self) -> str:
        """Human-readable one-line form."""
        return (
            f"{self.elapsed_ms:.1f}ms elapsed, "
            f"{self.sat_calls} SAT call(s), {self.nodes} node(s)"
        )


class BudgetExceeded(BudgetExceededError):
    """A budget limit was exceeded.

    Attributes:
        resource: which limit tripped — ``"wall_ms"``, ``"sat_calls"`` or
            ``"nodes"``.
        budget: the :class:`Budget` that was in force.
        usage: the :class:`ResourceUsage` consumed up to (and including)
            the tripping attempt.
    """

    def __init__(self, resource: str, budget: Budget, usage: ResourceUsage):
        self.resource = resource
        self.budget = budget
        self.usage = usage
        super().__init__(
            f"budget exceeded on {resource} "
            f"(budget: {budget.render()}; used: {usage.render()})"
        )


#: The runtime counter names, in ``snapshot()`` order.  Each is backed
#: by a ``repro_runtime_<name>_total`` counter in the metrics registry.
_RUNTIME_FIELDS = (
    "scopes_entered",
    "budgets_exceeded",
    "sat_faults_injected",
    "latency_injections",
    "worker_crashes_injected",
    "worker_crashes_recovered",
    "retries",
    "fallbacks",
    "timeouts",
)


class RuntimeStats:
    """Process-wide counters for the resource-governance layer.

    Each counter lives in the :data:`~repro.obs.metrics.METRICS`
    registry as ``repro_runtime_<name>_total`` (so it shows up in the
    Prometheus exposition alongside the oracle-accounting counters),
    while attribute access keeps the historical mutable-dataclass API:
    ``RUNTIME_STATS.retries += 1`` still works at every call site.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        counters = {
            name: METRICS.counter(
                f"repro_runtime_{name}_total",
                f"Runtime governance counter: {name.replace('_', ' ')}",
            )
            for name in _RUNTIME_FIELDS
        }
        object.__setattr__(self, "_counters", counters)

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        try:
            return counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: int) -> None:
        counters = object.__getattribute__(self, "_counters")
        try:
            counters[name].set(value)
        except KeyError:
            raise AttributeError(name) from None

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically add to one counter.

        ``RUNTIME_STATS.retries += 1`` expands to a locked read followed
        by a locked write — two threads can interleave between them and
        lose an update.  Concurrent call sites (everything reachable from
        the serve layer's worker threads) must use this single-lock path
        instead.
        """
        counters = object.__getattribute__(self, "_counters")
        try:
            counters[name].inc(amount)
        except KeyError:
            raise AttributeError(name) from None

    def snapshot(self) -> Dict[str, int]:
        """The counters as a flat dict (``SatSolver.stats()`` style)."""
        counters = object.__getattribute__(self, "_counters")
        return {name: counters[name].value for name in _RUNTIME_FIELDS}

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        counters = object.__getattribute__(self, "_counters")
        for counter in counters.values():
            counter.reset()


#: The process-wide runtime counters.
RUNTIME_STATS = RuntimeStats()


class BudgetScope:
    """Live accounting for one budgeted computation.

    Created by :func:`budget_scope`; the solver/enumeration hooks tick the
    innermost active scope, which cascades the consumption to enclosing
    scopes so nested budgets all stay accurate.

    Args:
        budget: the limits to enforce.
        clock: monotonic-seconds source (injectable for tests).
    """

    __slots__ = (
        "budget", "sat_calls", "nodes", "parent", "exceeded",
        "_clock", "_start", "_node_check",
    )

    def __init__(
        self,
        budget: Budget,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self.sat_calls = 0
        self.nodes = 0
        self.parent: Optional["BudgetScope"] = None
        self.exceeded: Optional[BudgetExceeded] = None
        self._clock = clock
        self._start = clock()
        self._node_check = 0

    # ------------------------------------------------------------------
    def elapsed_ms(self) -> float:
        """Milliseconds since the scope started."""
        return (self._clock() - self._start) * 1000.0

    def usage(self) -> ResourceUsage:
        """The resources consumed under this scope so far."""
        return ResourceUsage(
            elapsed_ms=self.elapsed_ms(),
            sat_calls=self.sat_calls,
            nodes=self.nodes,
        )

    def remaining_ms(self) -> Optional[float]:
        """Wall-clock milliseconds left, or ``None`` when unbounded."""
        if self.budget.wall_ms is None:
            return None
        return max(0.0, self.budget.wall_ms - self.elapsed_ms())

    # ------------------------------------------------------------------
    def _trip(self, resource: str) -> None:
        error = BudgetExceeded(resource, self.budget, self.usage())
        self.exceeded = error
        RUNTIME_STATS.inc("budgets_exceeded")
        raise error

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the wall clock has run out
        (on this scope or any enclosing one)."""
        scope: Optional[BudgetScope] = self
        while scope is not None:
            wall = scope.budget.wall_ms
            if wall is not None and scope.elapsed_ms() > wall:
                scope._trip("wall_ms")
            scope = scope.parent

    def note_sat_call(self) -> None:
        """Record one SAT call; trips the call ceiling or the deadline.

        The whole scope chain is incremented *before* any limit is
        checked, so when an inner scope trips, the enclosing scopes have
        still accounted the tripping attempt.
        """
        scope: Optional[BudgetScope] = self
        while scope is not None:
            scope.sat_calls += 1
            scope = scope.parent
        scope = self
        while scope is not None:
            ceiling = scope.budget.max_sat_calls
            if ceiling is not None and scope.sat_calls > ceiling:
                scope._trip("sat_calls")
            wall = scope.budget.wall_ms
            if wall is not None and scope.elapsed_ms() > wall:
                scope._trip("wall_ms")
            scope = scope.parent

    def note_nodes(self, count: int = 1) -> None:
        """Record ``count`` enumeration/search nodes; trips the node
        ceiling immediately and the deadline every
        :data:`NODE_CHECK_INTERVAL` nodes.  As with :meth:`note_sat_call`,
        the whole chain records the nodes before any scope trips.
        """
        scope: Optional[BudgetScope] = self
        while scope is not None:
            scope.nodes += count
            scope._node_check += count
            scope = scope.parent
        scope = self
        while scope is not None:
            ceiling = scope.budget.max_nodes
            if ceiling is not None and scope.nodes > ceiling:
                scope._trip("nodes")
            if (
                scope.budget.wall_ms is not None
                and scope._node_check >= NODE_CHECK_INTERVAL
            ):
                scope._node_check = 0
                if scope.elapsed_ms() > scope.budget.wall_ms:
                    scope._trip("wall_ms")
            scope = scope.parent


#: The innermost active scope of the current context (thread/task-local).
_ACTIVE: "ContextVar[Optional[BudgetScope]]" = ContextVar(
    "repro_budget_scope", default=None
)


@contextmanager
def budget_scope(budget: Budget) -> Iterator[BudgetScope]:
    """Install a :class:`BudgetScope` for the duration of the block::

        with budget_scope(Budget(wall_ms=500, max_sat_calls=100)) as scope:
            semantics.infers(db, formula)   # may raise BudgetExceeded
        scope.usage()                       # resources actually consumed

    Scopes nest: consumption inside the block also counts against any
    enclosing scope, and the tightest limit trips first.
    """
    scope = BudgetScope(budget)
    scope.parent = _ACTIVE.get()
    token = _ACTIVE.set(scope)
    RUNTIME_STATS.inc("scopes_entered")
    try:
        yield scope
    finally:
        _ACTIVE.reset(token)


def current_scope() -> Optional[BudgetScope]:
    """The innermost active scope, or ``None``."""
    return _ACTIVE.get()


# ----------------------------------------------------------------------
# Module-level hooks: near-free when no scope is active.
# ----------------------------------------------------------------------
def note_sat_call() -> None:
    """Tick one SAT call against the active scope (no-op when none)."""
    scope = _ACTIVE.get()
    if scope is not None:
        scope.note_sat_call()


def note_nodes(count: int = 1) -> None:
    """Tick enumeration/search nodes: always recorded in the oracle
    accounting (the certifier's node envelope needs them even when no
    budget is in force), then charged to the active scope, if any."""
    _account_nodes(count)
    scope = _ACTIVE.get()
    if scope is not None:
        scope.note_nodes(count)


def check_deadline() -> None:
    """Raise if the active scope's wall clock has run out (no-op when no
    scope is active).  Long-running loops without natural SAT/node ticks
    call this at their iteration heads."""
    scope = _ACTIVE.get()
    if scope is not None:
        scope.check()
