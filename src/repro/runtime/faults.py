"""Deterministic fault injection.

A :class:`FaultPlan` turns the failure modes a production deployment
actually sees — slow oracle calls, transient solver errors, crashed pool
workers — into *reproducible, in-process* events, so every degradation
path of the resilient engine is testable without real flakiness:

* **latency** — a seeded fraction of SAT calls sleeps ``latency_ms``
  before running (burns wall-clock budget, exercising deadlines);
* **transient SAT faults** — a seeded fraction of SAT calls raises
  :class:`FaultInjected` instead of solving (exercising retry/backoff);
* **worker crashes** — a seeded fraction of parallel-enumeration block
  dispatches raises :class:`WorkerCrash`; the pool layer recovers the
  block serially in the parent (exercising the degraded-parallelism
  path).

Every decision is drawn from an *independent* seeded stream per channel
(``random.Random(f"{seed}:sat")`` etc., the :mod:`repro.workloads.
random_db` convention), so the sat-fault sequence does not depend on how
many worker dispatches interleave with it: a plan's behaviour is a pure
function of its seed and each channel's call ordinal.

Plans install with :func:`fault_plan` (a context manager) and are
consulted by the same hooks that tick budgets; with no plan active the
hooks cost one ``ContextVar`` read.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional

from ..errors import ReproError
from .budget import RUNTIME_STATS


class FaultInjected(ReproError):
    """A *transient* injected fault (a SAT call that 'failed').  The
    resilient engine treats it as retryable."""


class WorkerCrash(ReproError):
    """An injected parallel-worker crash for one enumeration block or
    map item; the pool layer recovers the lost work serially."""


class FaultPlan:
    """A seeded, deterministic fault-injection schedule.

    Args:
        seed: master seed; every decision stream derives from it.
        sat_fault_rate: probability a SAT call raises
            :class:`FaultInjected`.
        latency_ms: sleep injected into selected SAT calls.
        latency_rate: probability a SAT call receives the latency
            (defaults to 1.0 when ``latency_ms`` is set, else 0).
        worker_crash_rate: probability one parallel block/item dispatch
            raises :class:`WorkerCrash`.
        max_sat_faults: cap on injected SAT faults (``None`` = unlimited);
            with ``sat_fault_rate=1.0`` this makes "fails exactly N times
            then succeeds" schedules for retry tests.
        sleeper: the sleep function latency uses (injectable for tests).
    """

    def __init__(
        self,
        seed: int = 0,
        sat_fault_rate: float = 0.0,
        latency_ms: float = 0.0,
        latency_rate: Optional[float] = None,
        worker_crash_rate: float = 0.0,
        max_sat_faults: Optional[int] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        for name, rate in (
            ("sat_fault_rate", sat_fault_rate),
            ("worker_crash_rate", worker_crash_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if latency_rate is None:
            latency_rate = 1.0 if latency_ms > 0 else 0.0
        self.seed = seed
        self.sat_fault_rate = sat_fault_rate
        self.latency_ms = latency_ms
        self.latency_rate = latency_rate
        self.worker_crash_rate = worker_crash_rate
        self.max_sat_faults = max_sat_faults
        self._sleeper = sleeper
        # Independent streams: each channel's decisions depend only on
        # the seed and that channel's own call ordinal.
        self._sat_rng = random.Random(f"{seed}:sat")
        self._latency_rng = random.Random(f"{seed}:latency")
        self._worker_rng = random.Random(f"{seed}:worker")
        self.sat_calls_seen = 0
        self.sat_faults = 0
        self.latency_injections = 0
        self.worker_crashes = 0

    # ------------------------------------------------------------------
    def on_sat_call(self) -> None:
        """Consulted once per SAT ``solve``; may sleep and/or raise
        :class:`FaultInjected`."""
        self.sat_calls_seen += 1
        if (
            self.latency_rate > 0
            and self._latency_rng.random() < self.latency_rate
        ):
            self.latency_injections += 1
            RUNTIME_STATS.inc("latency_injections")
            if self.latency_ms > 0:
                self._sleeper(self.latency_ms / 1000.0)
        if (
            self.sat_fault_rate > 0
            and self._sat_rng.random() < self.sat_fault_rate
            and (
                self.max_sat_faults is None
                or self.sat_faults < self.max_sat_faults
            )
        ):
            self.sat_faults += 1
            RUNTIME_STATS.inc("sat_faults_injected")
            raise FaultInjected(
                f"injected transient SAT fault #{self.sat_faults} "
                f"(seed {self.seed}, call {self.sat_calls_seen})"
            )

    def crash_worker(self) -> bool:
        """Whether the next parallel block/item dispatch should crash
        (one seeded draw per dispatch, counted when it crashes)."""
        if self.worker_crash_rate <= 0:
            return False
        if self._worker_rng.random() < self.worker_crash_rate:
            self.worker_crashes += 1
            RUNTIME_STATS.inc("worker_crashes_injected")
            return True
        return False

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Per-plan injection counters as a flat dict."""
        return {
            "sat_calls_seen": self.sat_calls_seen,
            "sat_faults": self.sat_faults,
            "latency_injections": self.latency_injections,
            "worker_crashes": self.worker_crashes,
        }

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, sat_fault_rate={self.sat_fault_rate}, "
            f"latency_ms={self.latency_ms}, "
            f"worker_crash_rate={self.worker_crash_rate})"
        )


#: The active plan of the current context (thread/task-local).
_ACTIVE_PLAN: "ContextVar[Optional[FaultPlan]]" = ContextVar(
    "repro_fault_plan", default=None
)


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block::

        with fault_plan(FaultPlan(seed=7, sat_fault_rate=0.3)):
            resilient.infers(db, formula)
    """
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)


def current_fault_plan() -> Optional[FaultPlan]:
    """The active plan, or ``None``."""
    return _ACTIVE_PLAN.get()


def maybe_fault_sat_call() -> None:
    """Hook for the SAT layer: apply the active plan's per-call faults
    (no-op when no plan is installed)."""
    plan = _ACTIVE_PLAN.get()
    if plan is not None:
        plan.on_sat_call()


def maybe_crash_worker() -> bool:
    """Hook for the pool layer: whether the active plan crashes the next
    dispatch (``False`` when no plan is installed)."""
    plan = _ACTIVE_PLAN.get()
    return plan is not None and plan.crash_worker()
