"""Structured results for budgeted, fault-tolerant evaluation.

An :class:`Outcome` is what the resilient engine's non-raising API
returns: instead of hanging on a hard instance or propagating a transient
fault, every query ends in a definite status —

* ``OK`` — the primary engine answered;
* ``DEGRADED`` — the primary kept faulting, but the fallback engine
  answered (the *value* is still exact);
* ``TIMEOUT`` — the budget tripped before any engine could answer; the
  outcome carries the resources consumed so far as ``partial``;
* ``FAILED`` — faults exhausted every retry and no fallback was
  configured.

``OK``/``DEGRADED`` outcomes always carry a value; ``TIMEOUT``/``FAILED``
outcomes always carry the underlying exception.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from .budget import ResourceUsage


class Status(enum.Enum):
    """Terminal status of one resilient evaluation."""

    OK = "ok"
    DEGRADED = "degraded"
    TIMEOUT = "timeout"
    FAILED = "failed"


@dataclass
class Outcome:
    """The structured result of one resilient evaluation.

    Attributes:
        status: terminal :class:`Status`.
        value: the answer (``OK``/``DEGRADED`` only).
        usage: resources consumed by the whole evaluation (including
            retries and the fallback), when a budget scope was active.
        partial: for ``TIMEOUT``, the :class:`ResourceUsage` consumed up
            to the trip (what the paper's oracle machine had spent when
            it was cut off).
        attempts: primary-engine attempts made (1 = no retries).
        engine_used: engine that produced ``value`` (``"oracle"``,
            ``"brute"``, ...), or ``None`` when no engine answered.
        faults: injected/transient faults observed during the evaluation.
        error: human-readable failure description (non-``OK`` statuses).
        exception: the underlying exception object (``TIMEOUT`` carries
            the :class:`~repro.runtime.budget.BudgetExceeded``).
    """

    status: Status
    value: Any = None
    usage: Optional[ResourceUsage] = None
    partial: Optional[ResourceUsage] = None
    attempts: int = 1
    engine_used: Optional[str] = None
    faults: int = 0
    error: Optional[str] = None
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether an exact answer was produced (``OK`` or ``DEGRADED``)."""
        return self.status in (Status.OK, Status.DEGRADED)

    def render(self) -> str:
        """Human-readable multi-line form (the CLI's output)."""
        lines = [f"status: {self.status.value}"]
        if self.ok:
            lines.append(
                f"value: {self.value}  "
                f"[engine {self.engine_used}, attempt(s) {self.attempts}, "
                f"fault(s) {self.faults}]"
            )
        else:
            lines.append(f"error: {self.error}")
        if self.usage is not None:
            lines.append(f"usage: {self.usage.render()}")
        if self.partial is not None and self.status is Status.TIMEOUT:
            lines.append(f"spent at cutoff: {self.partial.render()}")
        return "\n".join(lines)
