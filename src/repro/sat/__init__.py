"""SAT solving substrate: the package's NP oracle.

* :class:`~repro.sat.cdcl.CdclSolver` — integer-level CDCL core.
* :class:`~repro.sat.solver.SatSolver` — symbolic facade over named atoms.
* :mod:`repro.sat.enumerate` — (projected) model enumeration.
* :mod:`repro.sat.incremental` — persistent incremental solvers with
  selector-guarded scopes, and the process-wide :data:`SOLVER_POOL`.
* :mod:`repro.sat.decompose` — connected-component decomposition and the
  ``MM`` product law.
* :mod:`repro.sat.minimal` — minimal-model machinery (``MM(DB)``,
  ``MM(DB;P;Z)``, prioritized minimality).
* :mod:`repro.sat.dpll` — reference DPLL solver for cross-validation.
"""

from .cdcl import CdclSolver, luby
from .decompose import (
    connected_components,
    decompose,
    product_interpretations,
)
from .dpll import solve_dpll
from .enumerate import blocking_clause, count_models, iter_models
from .incremental import (
    SOLVER_POOL,
    IncrementalSatSolver,
    Scope,
    SolverPool,
    acquire_solver,
    clear_solver_pool,
    configure_solver_pool,
    pooled_scope,
    release_solver,
    solver_pool_stats,
)
from .minimal import (
    MinimalModelSolver,
    PrioritizedMinimalModelSolver,
    PZMinimalModelSolver,
    find_minimal_model,
    is_minimal_model,
    minimal_models,
)
from .simplify import (
    SimplificationResult,
    eliminate_pure_literals,
    pure_literals,
    remove_subsumed,
    self_subsume,
    simplify_cnf,
    unit_propagate,
)
from .solver import (
    SatSolver,
    database_is_consistent,
    entails_classically,
    find_model,
    formula_is_valid,
    is_satisfiable,
)
from .types import SolverStats, VariableMap

__all__ = [
    "CdclSolver",
    "luby",
    "connected_components",
    "decompose",
    "product_interpretations",
    "solve_dpll",
    "blocking_clause",
    "count_models",
    "iter_models",
    "SOLVER_POOL",
    "IncrementalSatSolver",
    "Scope",
    "SolverPool",
    "acquire_solver",
    "clear_solver_pool",
    "configure_solver_pool",
    "pooled_scope",
    "release_solver",
    "solver_pool_stats",
    "MinimalModelSolver",
    "PrioritizedMinimalModelSolver",
    "PZMinimalModelSolver",
    "find_minimal_model",
    "is_minimal_model",
    "minimal_models",
    "SimplificationResult",
    "eliminate_pure_literals",
    "pure_literals",
    "remove_subsumed",
    "self_subsume",
    "simplify_cnf",
    "unit_propagate",
    "SatSolver",
    "database_is_consistent",
    "entails_classically",
    "find_model",
    "formula_is_valid",
    "is_satisfiable",
    "SolverStats",
    "VariableMap",
]
