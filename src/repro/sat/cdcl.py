"""A conflict-driven clause-learning SAT solver.

This is the package's NP oracle.  It is a from-scratch, MiniSat-style CDCL
solver:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping,
* VSIDS variable activities (exponentially decayed, heap-based selection),
* phase saving,
* Luby-sequence restarts,
* periodic learned-clause database reduction,
* incremental solving under assumptions.

All literals are integers in DIMACS convention (see
:mod:`repro.sat.types`).  Wrap it with :class:`repro.sat.solver.SatSolver`
to work with named atoms.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..errors import BudgetExceededError, SolverError
from ..runtime.budget import BudgetExceeded, check_deadline
from .types import IntClause, SolverStats, check_int_clause, clause_is_tautology

#: Main-loop iterations between cooperative deadline polls.  One
#: iteration is one propagation batch / decision / conflict, so a hard
#: instance is cut off within a bounded amount of search work.
DEADLINE_POLL_INTERVAL = 64

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


class _Clause:
    """A clause with watch bookkeeping; ``literals[0:2]`` are watched."""

    __slots__ = ("literals", "learned", "activity")

    def __init__(self, literals: List[int], learned: bool):
        self.literals = literals
        self.learned = learned
        self.activity = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "L" if self.learned else "O"
        return f"_Clause[{kind}]({self.literals})"


def luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based index)."""
    x = index - 1
    size, level = 1, 0
    while size < x + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        level -= 1
        x %= size
    return 1 << level


class CdclSolver:
    """CDCL solver over integer literals.

    Args:
        max_conflicts: optional global conflict budget; exceeding it raises
            :class:`~repro.errors.BudgetExceededError`.  ``None`` = unbounded.

    Usage::

        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        if solver.solve():
            model = solver.model()       # set of true variables
    """

    _RESTART_BASE = 100
    _VAR_DECAY = 1.0 / 0.95
    _CLAUSE_DECAY = 1.0 / 0.999
    _ACTIVITY_LIMIT = 1e100

    def __init__(self, max_conflicts: Optional[int] = None):
        self.stats = SolverStats()
        self.max_conflicts = max_conflicts
        self._num_vars = 0
        self._values: List[int] = [_UNASSIGNED]  # index 0 unused
        self._levels: List[int] = [0]
        self._reasons: List[Optional[_Clause]] = [None]
        self._saved_phase: List[int] = [_FALSE]
        self._activity: List[float] = [0.0]
        self._seen: List[bool] = [False]
        self._watches: Dict[int, List[_Clause]] = {}
        self._clauses: List[_Clause] = []
        self._learned: List[_Clause] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagate_head = 0
        self._heap: List[tuple] = []
        self._var_inc = 1.0
        self._clause_inc = 1.0
        self._unsat = False
        self._max_learned = 4000
        self._assumptions: List[int] = []
        self._assumed_count = 0
        self._stored_model: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """The highest variable allocated so far."""
        return self._num_vars

    def ensure_var(self, var: int) -> None:
        """Allocate all variables up to ``var``."""
        if var <= 0:
            raise SolverError("variables must be positive")
        while self._num_vars < var:
            self._num_vars += 1
            self._values.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(None)
            self._saved_phase.append(_FALSE)
            self._activity.append(0.0)
            self._seen.append(False)
            self._watches[self._num_vars] = []
            self._watches[-self._num_vars] = []
            heapq.heappush(self._heap, (0.0, self._num_vars))

    def value(self, literal: int) -> int:
        """Current value of a literal: 1 true, -1 false, 0 unassigned."""
        value = self._values[abs(literal)]
        return value if literal > 0 else -value

    def reset_phases(self) -> None:
        """Reset every variable's saved phase to false.

        A warm solver's phases are biased toward the last model it
        found, which is counterproductive for minimal-model shrink
        loops (a false-biased first model is already near-minimal).
        Resetting at query start restores the fresh solver's behavior
        while keeping learned clauses and activities."""
        self._saved_phase = [_FALSE] * len(self._saved_phase)

    # ------------------------------------------------------------------
    # Clause addition
    # ------------------------------------------------------------------
    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause.  Returns ``False`` if the solver became trivially
        unsatisfiable (empty clause, or conflicting units at level 0)."""
        if self._unsat:
            return False
        clause = check_int_clause(literals)
        if clause_is_tautology(clause):
            return True
        for literal in clause:
            self.ensure_var(abs(literal))
        if self._trail_lim:
            # Adding clauses mid-search is not supported; callers always
            # add between solve() calls, where the trail holds only
            # level-0 facts.
            raise SolverError("cannot add clauses during search")
        # Remove literals already false at level 0; detect satisfaction.
        filtered: List[int] = []
        for literal in clause:
            value = self.value(literal)
            if value == _TRUE:
                return True  # satisfied forever
            if value == _UNASSIGNED:
                filtered.append(literal)
        if not filtered:
            self._unsat = True
            return False
        if len(filtered) == 1:
            return self._enqueue_root_unit(filtered[0])
        stored = _Clause(filtered, learned=False)
        self._clauses.append(stored)
        self._attach(stored)
        return True

    def _enqueue_root_unit(self, literal: int) -> bool:
        if self.value(literal) == _FALSE:
            self._unsat = True
            return False
        if self.value(literal) == _UNASSIGNED:
            self._assign(literal, None)
            conflict = self._propagate()
            if conflict is not None:
                self._unsat = True
                return False
        return True

    def _attach(self, clause: _Clause) -> None:
        self._watches[clause.literals[0]].append(clause)
        self._watches[clause.literals[1]].append(clause)

    # ------------------------------------------------------------------
    # Clause removal
    # ------------------------------------------------------------------
    def remove_clauses_with(self, literal: int) -> int:
        """Physically delete every stored clause containing ``literal``.

        This *retracts* those clauses from the theory — input and
        learned alike.  It is only sound when every learned clause that
        was derived *using* one of the removed clauses also contains
        ``literal`` and is therefore removed with them.  The incremental
        layer guarantees exactly that: a retired scope's clauses are the
        ones guarded by its negated selector, nothing ever implies a
        selector positively, so resolution can never eliminate the
        negated selector from a derived clause.  The complementary
        literal must not be true at level 0 (then some removed clause
        may have propagated a surviving root fact).

        Returns the number of clauses removed.
        """
        if self._trail_lim:
            raise SolverError("cannot remove clauses during search")
        if self._unsat:
            return 0  # solver is dead; clause storage is irrelevant
        if abs(literal) > self._num_vars:
            return 0  # never allocated: no clause can contain it
        if self.value(literal) == _FALSE:
            raise SolverError(
                "remove_clauses_with requires the literal to be true or "
                "unassigned at level 0 (a falsified guard means the "
                "clauses may have propagated surviving facts)"
            )
        kept_input: List[_Clause] = []
        kept_learned: List[_Clause] = []
        removed_clauses: List[_Clause] = []
        for clause in self._clauses:
            (
                removed_clauses
                if literal in clause.literals
                else kept_input
            ).append(clause)
        for clause in self._learned:
            (
                removed_clauses
                if literal in clause.literals
                else kept_learned
            ).append(clause)
        if not removed_clauses:
            return 0
        removed_ids = {id(c) for c in removed_clauses}
        self._clauses = kept_input
        self._learned = kept_learned
        for clause in removed_clauses:
            for watch in clause.literals[:2]:
                watchers = self._watches.get(watch)
                if watchers:
                    self._watches[watch] = [
                        c for c in watchers if id(c) not in removed_ids
                    ]
        # A removed clause may be the recorded reason of a level-0 trail
        # literal (e.g. the guarded clause that propagated the negated
        # selector itself).  Conflict analysis never dereferences
        # level-0 reasons, but clear them anyway so no dangling
        # reference survives.  A clause can only be the reason of a
        # literal it contains, so checking the removed clauses' own
        # variables suffices (no trail scan).
        for clause in removed_clauses:
            for lit in clause.literals:
                var = abs(lit)
                if self._reasons[var] is clause:
                    self._reasons[var] = None
        return len(removed_clauses)

    # ------------------------------------------------------------------
    # Assignment / trail
    # ------------------------------------------------------------------
    def _assign(self, literal: int, reason: Optional[_Clause]) -> None:
        var = abs(literal)
        self._values[var] = _TRUE if literal > 0 else _FALSE
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason
        self._trail.append(literal)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for literal in reversed(self._trail[boundary:]):
            var = abs(literal)
            self._saved_phase[var] = self._values[var]
            self._values[var] = _UNASSIGNED
            self._reasons[var] = None
            heapq.heappush(self._heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))
        self._assumed_count = min(self._assumed_count, level)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[_Clause]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        while self._propagate_head < len(self._trail):
            literal = self._trail[self._propagate_head]
            self._propagate_head += 1
            false_literal = -literal
            watchers = self._watches[false_literal]
            index = 0
            while index < len(watchers):
                clause = watchers[index]
                literals = clause.literals
                # Make sure the false literal is in slot 1.
                if literals[0] == false_literal:
                    literals[0], literals[1] = literals[1], literals[0]
                first = literals[0]
                if self.value(first) == _TRUE:
                    index += 1
                    continue
                # Look for a replacement watch.
                found = False
                for slot in range(2, len(literals)):
                    if self.value(literals[slot]) != _FALSE:
                        literals[1], literals[slot] = literals[slot], literals[1]
                        self._watches[literals[1]].append(clause)
                        watchers[index] = watchers[-1]
                        watchers.pop()
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if self.value(first) == _FALSE:
                    self._propagate_head = len(self._trail)
                    return clause
                self._assign(first, clause)
                self.stats.propagations += 1
                index += 1
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> "tuple[List[int], int]":
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = self._seen
        counter = 0
        literal = 0
        clause: Optional[_Clause] = conflict
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            if clause is None:  # pragma: no cover - invariant guard
                raise SolverError("reached a decision without a reason mid-analysis")
            if clause.learned:
                self._bump_clause(clause)
            for other in clause.literals:
                # Skip the variable being resolved on (the reason clause
                # holds its complement).
                if literal != 0 and abs(other) == abs(literal):
                    continue
                var = abs(other)
                if seen[var] or self._levels[var] == 0:
                    continue
                seen[var] = True
                self._bump_var(var)
                if self._levels[var] >= current_level:
                    counter += 1
                else:
                    learned.append(other)
            # Pick the next literal to resolve on from the trail.
            while not seen[abs(self._trail[trail_index])]:
                trail_index -= 1
            literal = -self._trail[trail_index]
            var = abs(literal)
            clause = self._reasons[var]
            seen[var] = False
            counter -= 1
            trail_index -= 1
            if counter == 0:
                break
        learned[0] = literal

        # Minimize: drop literals implied by the rest (simple self-subsume).
        minimized = [learned[0]]
        for lit in learned[1:]:
            if not self._redundant(lit):
                minimized.append(lit)
        for lit in minimized:
            self._seen[abs(lit)] = False
        for lit in learned:
            self._seen[abs(lit)] = False

        if len(minimized) == 1:
            backjump = 0
        else:
            # Find the highest level among non-asserting literals.
            best_slot = 1
            for slot in range(2, len(minimized)):
                if (
                    self._levels[abs(minimized[slot])]
                    > self._levels[abs(minimized[best_slot])]
                ):
                    best_slot = slot
            minimized[1], minimized[best_slot] = minimized[best_slot], minimized[1]
            backjump = self._levels[abs(minimized[1])]
        return minimized, backjump

    def _redundant(self, literal: int) -> bool:
        """Local redundancy test: a literal is redundant if its reason's
        other literals are all already in the learned clause (seen) or at
        level 0."""
        reason = self._reasons[abs(literal)]
        if reason is None:
            return False
        for other in reason.literals:
            var = abs(other)
            if var == abs(literal):
                continue
            if not self._seen[var] and self._levels[var] != 0:
                return False
        return True

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > self._ACTIVITY_LIMIT:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._clause_inc
        if clause.activity > self._ACTIVITY_LIMIT:
            for learned in self._learned:
                learned.activity *= 1e-100
            self._clause_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc *= self._VAR_DECAY
        self._clause_inc *= self._CLAUSE_DECAY

    # ------------------------------------------------------------------
    # Learned clause database reduction
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        if len(self._learned) <= self._max_learned:
            return
        locked = {id(self._reasons[abs(l)]) for l in self._trail}
        ranked = sorted(self._learned, key=lambda c: c.activity)
        keep_from = len(ranked) // 2
        removed = []
        for clause in ranked[:keep_from]:
            if id(clause) in locked or len(clause.literals) <= 2:
                continue
            removed.append(clause)
        removed_ids = {id(c) for c in removed}
        for clause in removed:
            for watch in clause.literals[:2]:
                watchers = self._watches[watch]
                self._watches[watch] = [
                    c for c in watchers if id(c) not in removed_ids
                ]
        self._learned = [c for c in self._learned if id(c) not in removed_ids]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._heap:
            _, var = heapq.heappop(self._heap)
            if self._values[var] == _UNASSIGNED:
                return var
        for var in range(1, self._num_vars + 1):  # pragma: no cover - fallback
            if self._values[var] == _UNASSIGNED:
                return var
        return 0

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        The solver state (learned clauses, activities, phases) persists
        across calls, enabling incremental use.
        """
        self.stats.solve_calls += 1
        if self._unsat:
            return False
        self._assumptions = list(assumptions)
        for literal in self._assumptions:
            self.ensure_var(abs(literal))
        self._backtrack(0)
        self._assumed_count = 0
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return False

        restart_index = 1
        conflicts_until_restart = self._RESTART_BASE * luby(restart_index)
        conflicts_this_restart = 0
        poll_countdown = DEADLINE_POLL_INTERVAL

        while True:
            poll_countdown -= 1
            if poll_countdown <= 0:
                poll_countdown = DEADLINE_POLL_INTERVAL
                try:
                    check_deadline()
                except BudgetExceeded:
                    # Leave the solver reusable: drop the partial trail.
                    self._backtrack(0)
                    raise
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_restart += 1
                if (
                    self.max_conflicts is not None
                    and self.stats.conflicts > self.max_conflicts
                ):
                    self._backtrack(0)
                    raise BudgetExceededError(
                        f"conflict budget {self.max_conflicts} exceeded"
                    )
                if self._decision_level() == 0:
                    self._unsat = True
                    return False
                if self._decision_level() <= self._assumed_count:
                    # Conflict depends only on assumptions.
                    self._backtrack(0)
                    return False
                learned, backjump = self._analyze(conflict)
                backjump = max(backjump, self._assumed_count)
                self._backtrack(backjump)
                self._install_learned(learned)
                self._decay_activities()
                self._reduce_learned()
                continue

            if conflicts_this_restart >= conflicts_until_restart:
                self.stats.restarts += 1
                restart_index += 1
                conflicts_until_restart = self._RESTART_BASE * luby(restart_index)
                conflicts_this_restart = 0
                self._backtrack(self._assumed_count)
                continue

            # Extend with pending assumptions (one decision level each so
            # that the level <-> assumption-index invariant holds), then
            # branch on a free variable.
            if self._assumed_count < len(self._assumptions):
                literal = self._assumptions[self._assumed_count]
                value = self.value(literal)
                if value == _FALSE:
                    self._backtrack(0)
                    return False
                self._new_decision_level()
                self._assumed_count += 1
                if value == _UNASSIGNED:
                    self._assign(literal, None)
                continue
            var = self._pick_branch_var()
            if var == 0:
                # Full assignment, no conflict: store the model and leave
                # the solver at level 0 so clauses can be added afterwards.
                # Every assignment goes through the trail, so the trail's
                # positive literals are exactly the true variables.
                self._stored_model = {
                    lit for lit in self._trail if lit > 0
                }
                self._backtrack(0)
                return True
            self.stats.decisions += 1
            phase = self._saved_phase[var]
            literal = var if phase == _TRUE else -var
            self._new_decision_level()
            self._assign(literal, None)

    def _install_learned(self, learned: List[int]) -> None:
        self.stats.learned_clauses += 1
        if len(learned) == 1:
            self._assign(learned[0], None)
            return
        clause = _Clause(learned, learned=True)
        self._learned.append(clause)
        self._attach(clause)
        self._assign(learned[0], clause)

    # ------------------------------------------------------------------
    # Model extraction
    # ------------------------------------------------------------------
    def model(self) -> Set[int]:
        """The set of true variables found by the last successful
        :meth:`solve` call."""
        if self._stored_model is None:
            raise SolverError("no model available; call solve() first")
        return set(self._stored_model)

    def learned_clauses(self) -> List[List[int]]:
        """Snapshots of the currently retained learned clauses (each is
        a logical consequence of the input clauses — property-tested)."""
        return [list(clause.literals) for clause in self._learned]

    def model_value(self, var: int) -> bool:
        """Truth of ``var`` in the last model (unknown vars count false)."""
        if self._stored_model is None:
            raise SolverError("no model available; call solve() first")
        return var in self._stored_model
