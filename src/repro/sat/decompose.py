"""Connected-component decomposition of disjunctive databases.

View a database's clauses as hyperedges over its vocabulary: two atoms
are connected when some clause mentions both.  Clauses in different
connected components share no atoms, so satisfaction — and, crucially,
*minimality* — factor coordinatewise:

    ``MM(DB) = { M₁ ∪ … ∪ Mₖ : Mᵢ ∈ MM(DBᵢ) }``

where ``DBᵢ`` is the restriction of ``DB`` to component ``Vᵢ``.  (A model
of ``DB`` is the disjoint union of models of the parts; it is minimal iff
every part is, because shrinking any single coordinate preserves the
others.)  The same product law holds for ``MM(DB; P; Z)``: the
``(P; Z)``-preference order compares ``P``-atoms and fixes ``Q``-atoms
*pointwise*, so ``N <_{P;Z} M`` iff some component strictly improves and
none worsens — exactly the componentwise product order.

The payoff is asymptotic: one ``2^|V|``-shaped enumeration becomes a sum
of exponentially smaller ones (``Σ 2^|Vᵢ|`` work for ``Π |MM(DBᵢ)|``
results).  Workload families made of independent clusters — e.g.
``families.disjoint_components`` — drop from exponential in the total
vocabulary to exponential in the *largest component*.

Atoms occurring in no clause form singleton components with ``MM = {∅}``;
they are kept (the vocabulary is part of the semantics) but contribute
nothing to any product.

Decompositions are memoized in the engine cache (kind
``"decomposition"``) keyed on the structural database hash.
"""

from __future__ import annotations

from itertools import product
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import Interpretation


def connected_components(
    db: DisjunctiveDatabase,
) -> Tuple[FrozenSet[str], ...]:
    """The connected components of the database's clause graph.

    Every vocabulary atom belongs to exactly one component; atoms in no
    clause are singletons.  Components are returned in a deterministic
    order (by smallest member atom).
    """
    parent: Dict[str, str] = {a: a for a in db.vocabulary}

    def find(a: str) -> str:
        root = a
        while parent[root] != root:
            root = parent[root]
        while parent[a] != root:
            parent[a], a = root, parent[a]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in db.clauses:
        atoms = sorted(clause.atoms)
        for other in atoms[1:]:
            union(atoms[0], other)

    groups: Dict[str, List[str]] = {}
    for atom in db.vocabulary:
        groups.setdefault(find(atom), []).append(atom)
    components = [frozenset(members) for members in groups.values()]
    components.sort(key=lambda c: min(c))
    return tuple(components)


def _component_databases(
    db: DisjunctiveDatabase,
) -> Optional[Tuple[DisjunctiveDatabase, ...]]:
    components = connected_components(db)
    if len(components) <= 1:
        return None
    index: Dict[str, int] = {}
    for i, component in enumerate(components):
        for atom in component:
            index[atom] = i
    buckets: List[List] = [[] for _ in components]
    for clause in db.clauses:
        # All atoms of a clause share a component by construction; an
        # empty (falsum) clause poisons every component equally, so it
        # goes in the first.
        atoms = clause.atoms
        buckets[index[next(iter(atoms))] if atoms else 0].append(clause)
    return tuple(
        DisjunctiveDatabase(bucket, vocabulary=component)
        for bucket, component in zip(buckets, components)
    )


def decompose(
    db: DisjunctiveDatabase,
) -> Optional[Tuple[DisjunctiveDatabase, ...]]:
    """The database split along connected components, or ``None`` when it
    is already connected (or empty).  Each part's vocabulary is its
    component; the parts' vocabularies partition ``db.vocabulary``.
    Memoized process-wide."""
    from ..engine.cache import ENGINE_CACHE

    return ENGINE_CACHE.get_or_compute(
        "decomposition", db, lambda: _component_databases(db)
    )


def product_interpretations(
    parts: Sequence[Sequence[Interpretation]],
) -> Iterator[Interpretation]:
    """The product combine: one interpretation per way of choosing one
    member from each part, unioned.  Yields nothing if any part is empty
    (an inconsistent component kills the whole product), in the order
    induced by the input orders."""
    for choice in product(*parts):
        combined: FrozenSet[str] = frozenset()
        for member in choice:
            combined |= member
        yield Interpretation(combined)


def restrict_partition(
    component: FrozenSet[str], *blocks: Iterable[str]
) -> Tuple[FrozenSet[str], ...]:
    """Each partition block intersected with a component (used to push a
    ``(P; Q; Z)`` partition down to the component databases)."""
    return tuple(frozenset(block) & component for block in blocks)
