"""A plain DPLL solver.

Kept deliberately simple: unit propagation, pure-literal elimination, and
chronological backtracking on the first unassigned variable.  It serves as
the *reference* solver against which the CDCL solver is cross-validated in
the test suite, and as the baseline in the solver ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..runtime.budget import note_nodes
from .types import check_int_clause, clause_is_tautology


def solve_dpll(
    clauses: Iterable[Sequence[int]], use_pure_literals: bool = True
) -> Optional[Set[int]]:
    """Decide satisfiability of integer CNF ``clauses``.

    Returns a model as the set of true variables (unmentioned variables
    are false), or ``None`` when unsatisfiable.
    """
    normalized: List[List[int]] = []
    variables: Set[int] = set()
    for clause in clauses:
        checked = check_int_clause(clause)
        if clause_is_tautology(checked):
            continue
        if not checked:
            return None
        normalized.append(checked)
        variables.update(abs(l) for l in checked)

    assignment: Dict[int, bool] = {}
    result = _search(normalized, assignment, use_pure_literals)
    if result is None:
        return None
    return {var for var, value in result.items() if value}


def _simplify(
    clauses: List[List[int]], assignment: Dict[int, bool]
) -> Optional[List[List[int]]]:
    """Apply the assignment; ``None`` signals an empty clause."""
    simplified: List[List[int]] = []
    for clause in clauses:
        new_clause: List[int] = []
        satisfied = False
        for literal in clause:
            var = abs(literal)
            if var in assignment:
                if assignment[var] == (literal > 0):
                    satisfied = True
                    break
            else:
                new_clause.append(literal)
        if satisfied:
            continue
        if not new_clause:
            return None
        simplified.append(new_clause)
    return simplified


def _search(
    clauses: List[List[int]],
    assignment: Dict[int, bool],
    use_pure_literals: bool,
) -> Optional[Dict[int, bool]]:
    # Each search node counts against an active budget's node ceiling
    # (and, periodically, its deadline).
    note_nodes(1)
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None

    # Unit propagation to fixpoint.
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            if len(clause) == 1:
                literal = clause[0]
                assignment[abs(literal)] = literal > 0
                clauses = _simplify(clauses, assignment)
                if clauses is None:
                    return None
                changed = True
                break

    if use_pure_literals:
        polarity: Dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                var = abs(literal)
                sign = 1 if literal > 0 else -1
                polarity[var] = 0 if polarity.get(var, sign) != sign else sign
        pures = [var * sign for var, sign in polarity.items() if sign != 0]
        if pures:
            for literal in pures:
                assignment[abs(literal)] = literal > 0
            clauses = _simplify(clauses, assignment)
            if clauses is None:  # pragma: no cover - pure literals are safe
                return None

    if not clauses:
        return dict(assignment)

    branch_var = abs(clauses[0][0])
    for value in (True, False):
        trial = dict(assignment)
        trial[branch_var] = value
        result = _search(clauses, trial, use_pure_literals)
        if result is not None:
            return result
    return None
