"""Model enumeration with blocking clauses.

Enumeration is *projected*: models are reported (and blocked) as their
restriction to a chosen atom set, so Tseitin definition atoms or renamed
helper atoms never cause duplicate reports.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..logic.atoms import Literal
from ..logic.cnf import Cnf, cnf_atoms
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..runtime.budget import check_deadline
from .incremental import pooled_scope


def blocking_clause(
    model: Interpretation, project: Iterable[str]
) -> List[Literal]:
    """The clause excluding exactly the models whose ``project``-restriction
    equals ``model``."""
    clause: List[Literal] = []
    for atom in project:
        if atom in model:
            clause.append(Literal.neg(atom))
        else:
            clause.append(Literal.pos(atom))
    return clause


def iter_models(
    db: Optional[DisjunctiveDatabase] = None,
    extra_cnf: Optional[Cnf] = None,
    formula: Optional[Formula] = None,
    project: Optional[Iterable[str]] = None,
    max_models: Optional[int] = None,
    engine: str = "cdcl",
    reuse: bool = True,
) -> Iterator[Interpretation]:
    """Enumerate models of ``db ∧ extra_cnf ∧ formula`` projected onto
    ``project``.

    The database and extra CNF are the *permanent* theory of a pooled
    incremental solver (warm across repeated enumerations of the same
    database); the formula and the blocking clauses live in a scope and
    are retracted when enumeration ends.

    Args:
        db: optional database whose classical models are required.
        extra_cnf: optional extra symbolic CNF constraints.
        formula: optional extra formula constraint (Tseitin-encoded).
        project: atoms to project onto.  Defaults to the database
            vocabulary plus the atoms of the extra constraints.
        max_models: stop after this many models (``None`` = all).
        engine: SAT engine to use.
        reuse: draw the solver from the process pool (``False`` builds a
            private throwaway solver — the ``fresh`` differential path).
    """
    default_project: set = set()
    if db is not None:
        default_project |= db.vocabulary
    if extra_cnf is not None:
        default_project |= cnf_atoms(extra_cnf)
    if formula is not None:
        default_project |= formula.atoms()
    project_atoms = sorted(project if project is not None else default_project)

    with pooled_scope(
        db, extra_cnf=extra_cnf, context=("enumerate",), engine=engine,
        reuse=reuse,
    ) as scope:
        if formula is not None:
            scope.add_formula(formula)
        produced = 0
        while max_models is None or produced < max_models:
            check_deadline()
            if not scope.solve():
                return
            model = scope.model(restrict_to=project_atoms)
            yield model
            produced += 1
            block = blocking_clause(model, project_atoms)
            if not block:
                return  # projecting onto nothing: a single (empty) model
            scope.add_clause(block)


def count_models(
    db: Optional[DisjunctiveDatabase] = None,
    extra_cnf: Optional[Cnf] = None,
    formula: Optional[Formula] = None,
    project: Optional[Iterable[str]] = None,
    engine: str = "cdcl",
    reuse: bool = True,
) -> int:
    """The number of (projected) models."""
    return sum(
        1
        for _ in iter_models(
            db=db,
            extra_cnf=extra_cnf,
            formula=formula,
            project=project,
            engine=engine,
            reuse=reuse,
        )
    )
