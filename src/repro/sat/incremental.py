"""Incremental SAT: persistent solvers, scoped assertions, a process pool.

Every oracle-backed decision procedure in this package is "polynomially
many NP-oracle calls" against *closely related* instances: the same
database theory plus a per-query side condition, a shrink constraint, or
a growing set of blocking clauses.  Historically each call built a fresh
:class:`~repro.sat.solver.SatSolver`, re-translated the database and
threw away every learned clause.  This module keeps one CDCL instance
alive per ``(database, extra-theory)`` context instead:

* :class:`IncrementalSatSolver` — a persistent solver whose *permanent*
  clauses (the database, extra CNF) are asserted once, and whose
  *temporary* clauses live in :class:`Scope` objects.  A scope guards
  every clause with a selector literal (MiniSat-style): while the scope
  is open its selector is passed as an assumption, so the clauses are
  enforced; closing the scope asserts the selector's negation and then
  physically deletes every clause mentioning it (guarded assertions and
  the learned clauses derived from them alike — each provably contains
  the negated selector), so a retired scope leaves no watch-list
  footprint.  Learned clauses over the permanent theory survive and
  keep pruning later queries.

* :class:`SolverPool` — a process-wide bounded LRU of persistent solvers
  keyed like the engine cache (structural database hash + context), so
  repeated queries against the same database hit a warm solver complete
  with its learned clauses, VSIDS activities and saved phases.  Solvers
  are *checked out* while in use (concurrent users of the same key get
  independent instances) and returned on release.

* :func:`pooled_scope` — the one-liner most call sites use::

      with pooled_scope(db) as sat:          # warm solver, fresh scope
          sat.add_formula(Not(query))        # temporary, auto-retracted
          while sat.solve():
              ...
              sat.add_clause(blocking)       # temporary too

  ``reuse=False`` builds a throwaway solver with the identical interface
  (the ``engine="fresh"`` differential-testing path).

Budget ticks and fault injection are untouched: every ``solve`` still
goes through :meth:`SatSolver.solve`, which ticks the active
:class:`~repro.runtime.budget.BudgetScope` and consults the active fault
plan, so a pooled call is governed exactly like a fresh one.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import SolverError
from ..logic.atoms import Literal
from ..logic.cnf import Cnf, tseitin
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..obs.metrics import METRICS
from .solver import SatSolver

#: Default bound on pooled (parked) solvers across all keys.
DEFAULT_POOL_MAXSIZE = 128

#: A solver that has retired this many scopes carries enough inert
#: clauses and dead selector variables that rebuilding beats reusing;
#: the pool discards it on release instead of parking it.
RETIRED_SCOPE_LIMIT = 2048


class Scope:
    """A retractable group of temporary clauses on a persistent solver.

    All clauses added through a scope are guarded by the scope's selector
    literal; :meth:`solve` assumes the selector (and every enclosing
    scope's), so the clauses are enforced exactly while the scope is
    open.  :meth:`close` retracts the whole group by permanently
    asserting the negated selector and deleting every clause that
    mentions it — theory-level learned clauses survive, the temporary
    constraints (and the learned clauses that depended on them, by then
    vacuous) do not.

    Scopes nest: :meth:`scope` opens a child whose queries enforce both
    levels (the shrink-within-condition pattern).  Independent scopes on
    the same solver do not interact — an unassumed selector leaves its
    clauses unenforced.
    """

    __slots__ = (
        "_solver",
        "selector",
        "_parents",
        "_aux_atoms",
        "closed",
        "clauses_added",
    )

    def __init__(
        self,
        solver: "IncrementalSatSolver",
        parents: Tuple["Scope", ...] = (),
    ):
        self._solver = solver
        self.selector = solver._fresh_selector()
        self._parents = parents
        self._aux_atoms: List[str] = []
        self.closed = False
        self.clauses_added = 0
        if not parents:
            # A top-level scope marks a new query: drop the saved
            # phases (biased toward the previous query's model) so a
            # warm solver starts from the same minimality-friendly
            # false bias as a fresh one.  Nested scopes keep phases —
            # within one query the bias toward recent models helps.
            solver._sat.reset_phases()

    # ------------------------------------------------------------------
    # Assertions (all selector-guarded, hence temporary)
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise SolverError("scope is closed; open a new one")

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Assert a clause for the lifetime of this scope."""
        self._check_open()
        self._solver._sat.add_clause([-self.selector, *literals])
        self.clauses_added += 1

    def add_cnf(self, cnf: Cnf) -> None:
        """Assert every clause of a CNF for the lifetime of this scope."""
        for clause in cnf:
            self.add_clause(clause)

    def add_unit(self, literal: Literal) -> None:
        """Assert a single literal for the lifetime of this scope."""
        self.add_clause([literal])

    def add_formula(self, formula: Formula, positive: bool = True) -> None:
        """Assert ``formula`` (or its negation) for the lifetime of this
        scope, via a selector-guarded Tseitin encoding.  Definition atoms
        are allocated away from everything the solver has ever interned,
        so successive scopes never collide."""
        self._check_open()
        clauses, root, aux = tseitin(
            formula, avoid=self._solver.variables.atoms()
        )
        self._aux_atoms.extend(aux)
        for clause in clauses:
            self.add_clause(clause)
        self.add_clause([root if positive else -root])

    def add_database(self, db: DisjunctiveDatabase) -> None:
        """Assert a database's classical clause form for the lifetime of
        this scope (used by multi-copy constructions; the *base* database
        of a solver is permanent instead)."""
        from ..engine.cache import classical_clauses_for

        for atom in sorted(db.vocabulary):
            self._solver.variables.intern(atom)
        for literals in classical_clauses_for(db):
            self.add_clause(literals)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def variables(self):
        """The underlying solver's atom/variable map."""
        return self._solver.variables

    def solve(self, assumptions: Iterable[Literal] = ()) -> bool:
        """Decide satisfiability of permanent clauses + this scope (+ its
        ancestors) under the extra assumptions."""
        self._check_open()
        selectors = [self.selector]
        selectors.extend(parent.selector for parent in self._parents)
        return self._solver.solve(selectors + list(assumptions))

    def model(
        self, restrict_to: Optional[Iterable[str]] = None
    ) -> Interpretation:
        """The model found by the last successful :meth:`solve`."""
        return self._solver.model(restrict_to=restrict_to)

    # ------------------------------------------------------------------
    def scope(self) -> "_ScopeContext":
        """Open a child scope (its queries also enforce this scope)."""
        return _ScopeContext(self._solver, parents=(self, *self._parents))

    def close(self) -> None:
        """Retract every clause of this scope, permanently and cheaply.

        The negated selector is asserted as a permanent unit, which
        makes every clause mentioning it satisfied forever; those
        clauses — the scope's guarded assertions plus every learned
        clause derived from them (each necessarily contains the negated
        selector, since nothing ever implies a selector positively) —
        are then physically deleted, so retired scopes leave no
        footprint in the solver's watch lists.  Learned clauses over
        the permanent theory alone survive and keep pruning."""
        if self.closed:
            return
        self.closed = True
        sat = self._solver._sat
        self._solver.clauses_reclaimed += sat.remove_clauses_with(
            -self.selector
        )
        # The scope's Tseitin definition atoms are unconstrained once
        # their clauses are gone; pin them false so the branching
        # heuristic never has to assign retired scopes' dead variables.
        for atom in self._aux_atoms:
            sat.add_clause([Literal.neg(atom)])
        # With the clauses physically gone the selector variable is
        # unconstrained; recycle it for the next scope so long-lived
        # solvers don't accumulate a dead variable per retired scope.
        # (A selector propagated false at level 0 stays assigned — its
        # guarded clause forced the retraction early — and cannot be
        # reused.)
        if sat.literal_value(self.selector) == 0:
            self._solver._free_selectors.append(self.selector)
        self._solver.scopes_retired += 1


class _ScopeContext:
    """Context manager yielding a fresh :class:`Scope` and closing it."""

    __slots__ = ("_solver", "_parents", "_scope")

    def __init__(
        self,
        solver: "IncrementalSatSolver",
        parents: Tuple[Scope, ...] = (),
    ):
        self._solver = solver
        self._parents = parents
        self._scope: Optional[Scope] = None

    def __enter__(self) -> Scope:
        self._scope = Scope(self._solver, parents=self._parents)
        self._solver.scopes_opened += 1
        return self._scope

    def __exit__(self, *exc) -> None:
        if self._scope is not None:
            self._scope.close()


class IncrementalSatSolver:
    """A persistent SAT solver for one ``(database, extra-theory)``
    context.

    The database's classical clause form and any extra CNF are asserted
    *permanently* at construction; everything query-specific goes through
    :meth:`scope`.  The CDCL core's learned clauses, activities and phase
    state accumulate across queries — that accumulation is the speedup.

    Args:
        db: the base database (``None`` for a bare solver).
        extra_cnf: permanent extra clauses (count as part of the theory).
        engine: ``"cdcl"`` (default) or ``"dpll"``.
    """

    def __init__(
        self,
        db: Optional[DisjunctiveDatabase] = None,
        extra_cnf: Optional[Cnf] = None,
        engine: str = "cdcl",
    ):
        self._sat = SatSolver(engine=engine)
        self.db = db
        self.engine = engine
        if db is not None:
            self._sat.add_database(db)
        for clause in extra_cnf or ():
            self._sat.add_clause(clause)
        self._selector_count = 0
        self._free_selectors: List[Literal] = []
        self.scopes_opened = 0
        self.scopes_retired = 0
        self.clauses_reclaimed = 0
        self.queries = 0
        #: Stamp of the checkout window this solver was last handed out
        #: under (see :func:`checkout_token`); ``None`` outside windows.
        self._last_checkout_token: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def variables(self):
        """The atom/variable map (shared with every scope)."""
        return self._sat.variables

    def _fresh_selector(self) -> Literal:
        if self._free_selectors:
            return self._free_selectors.pop()
        while True:
            name = f"__inc{self._selector_count}"
            self._selector_count += 1
            if name not in self._sat.variables:
                return Literal.pos(name)

    # ------------------------------------------------------------------
    # Permanent assertions
    # ------------------------------------------------------------------
    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Permanently assert a clause (part of the theory forever)."""
        self._sat.add_clause(literals)

    def add_cnf(self, cnf: Cnf) -> None:
        """Permanently assert every clause of a CNF."""
        self._sat.add_cnf(cnf)

    def add_unit(self, literal: Literal) -> None:
        """Permanently assert a single literal."""
        self._sat.add_unit(literal)

    def add_database(self, db: DisjunctiveDatabase) -> None:
        """Permanently assert a database's classical clause form (used by
        ``setup`` callables installing multi-copy constructions)."""
        self._sat.add_database(db)

    def add_formula(self, formula: Formula, positive: bool = True) -> None:
        """Permanently assert a formula (Tseitin-encoded); for theories
        that are formulas by nature, e.g. a Clark completion."""
        self._sat.add_formula(formula, positive=positive)

    def intern(self, atoms: Iterable[str]) -> None:
        """Register atoms so they take part in models."""
        for atom in atoms:
            self._sat.variables.intern(atom)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> bool:
        """Decide satisfiability of the permanent clauses under the given
        assumptions (scope selectors included by :meth:`Scope.solve`).
        Ticks budgets/faults exactly like a fresh solver."""
        self.queries += 1
        return self._sat.solve(assumptions)

    def model(
        self, restrict_to: Optional[Iterable[str]] = None
    ) -> Interpretation:
        """The model found by the last successful :meth:`solve`."""
        return self._sat.model(restrict_to=restrict_to)

    def scope(self) -> _ScopeContext:
        """Open a fresh top-level scope (use as a context manager)."""
        return _ScopeContext(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def num_learned(self) -> int:
        """Learned clauses currently retained by the CDCL core."""
        return len(self._sat._core._learned)

    def core_stats(self) -> Dict[str, int]:
        """The CDCL core's cumulative search statistics."""
        return self._sat.stats()

    def stats(self) -> Dict[str, int]:
        """Core statistics plus scope/selector accounting."""
        stats = self.core_stats()
        stats.update(
            {
                "queries": self.queries,
                "scopes_opened": self.scopes_opened,
                "scopes_retired": self.scopes_retired,
                "clauses_reclaimed": self.clauses_reclaimed,
                "learned_retained": self.num_learned(),
            }
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"IncrementalSatSolver(db={self.db!r}, queries={self.queries}, "
            f"learned={self.num_learned()})"
        )


# ----------------------------------------------------------------------
# The process-wide pool
# ----------------------------------------------------------------------
#: The active checkout window of this context, or ``None``.  See
#: :func:`checkout_token`.
_CHECKOUT_TOKEN: "ContextVar[Optional[object]]" = ContextVar(
    "repro_pool_checkout_token", default=None
)


@contextmanager
def checkout_token() -> Iterator[object]:
    """Mark a window whose re-checkouts of the *same solver* are one
    logical use.

    The resilient engine retries a failed attempt against the same
    database, so the retry checks the very solver the first attempt just
    released back out of the pool.  Counting that as a fresh "reuse"
    double-counts warm starts in ``session.stats()`` (the retry earned
    nothing — the warmth came from the attempt the caller already paid
    for).  Inside a window, a repeat checkout of a solver stamped with
    the current token increments ``repeat_checkouts`` instead of
    ``reused``.  With no window active (every non-resilient path),
    behavior is exactly as before.
    """
    token = object()
    reset = _CHECKOUT_TOKEN.set(token)
    try:
        yield token
    finally:
        _CHECKOUT_TOKEN.reset(reset)


class SolverPool:
    """A bounded pool of warm :class:`IncrementalSatSolver` instances.

    Keys are hashable context tuples (built by :func:`acquire_solver`
    from the structural database hash, the extra theory and a caller
    context tag), so two structurally equal databases share warm solvers
    exactly as they share engine-cache entries.

    Solvers are checked out by :meth:`acquire` (removed from the pool, so
    concurrent users never share mutable CDCL state) and parked again by
    :meth:`release`.  Counters track creations, reuses and the learned
    clauses that were warm at each reuse; :meth:`core_stats` aggregates
    the CDCL statistics of every solver the pool has ever built, which is
    what lets sessions report *per-query deltas* from long-lived solvers.
    """

    def __init__(self, maxsize: int = DEFAULT_POOL_MAXSIZE):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, IncrementalSatSolver]" = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._tracked: "weakref.WeakSet[IncrementalSatSolver]" = (
            weakref.WeakSet()
        )
        self.created = 0
        self.reused = 0
        self.repeat_checkouts = 0
        self.released = 0
        self.discarded = 0
        self.evictions = 0
        self.clauses_retained = 0

    # ------------------------------------------------------------------
    def acquire(
        self,
        key: Hashable,
        builder: Callable[[], IncrementalSatSolver],
    ) -> IncrementalSatSolver:
        """A warm solver for ``key`` (checked out), or a fresh one.

        A repeat checkout of the same solver inside one
        :func:`checkout_token` window (a resilient retry) is counted as
        ``repeat_checkouts``, not as a reuse.
        """
        token = _CHECKOUT_TOKEN.get()
        with self._lock:
            solver = self._entries.pop(key, None)
            if solver is not None:
                if (
                    token is not None
                    and solver._last_checkout_token is token
                ):
                    self.repeat_checkouts += 1
                else:
                    self.reused += 1
                    self.clauses_retained += solver.num_learned()
                solver._last_checkout_token = token
                return solver
            self.created += 1
        solver = builder()
        solver._last_checkout_token = token
        with self._lock:
            self._tracked.add(solver)
        return solver

    def release(
        self, key: Hashable, solver: IncrementalSatSolver
    ) -> None:
        """Park a checked-out solver for the next :meth:`acquire`.

        Solvers past :data:`RETIRED_SCOPE_LIMIT` are discarded (their
        inert clauses outweigh their learned ones), as is a duplicate
        release for a key that is already parked."""
        with self._lock:
            self.released += 1
            if (
                self.maxsize == 0
                or solver.scopes_retired > RETIRED_SCOPE_LIMIT
                or key in self._entries
            ):
                self.discarded += 1
                return
            self._entries[key] = solver
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every parked solver and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._tracked = weakref.WeakSet()
            self.created = 0
            self.reused = 0
            self.repeat_checkouts = 0
            self.released = 0
            self.discarded = 0
            self.evictions = 0
            self.clauses_retained = 0

    def configure(self, maxsize: int) -> None:
        """Re-bound the pool, evicting LRU solvers if shrinking."""
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        with self._lock:
            self.maxsize = maxsize
            while len(self._entries) > maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Pool accounting in the flat ``SatSolver.stats()`` style."""
        with self._lock:
            attempts = self.created + self.reused
            return {
                "solvers_pooled": len(self._entries),
                "pool_maxsize": self.maxsize,
                "solvers_created": self.created,
                "solver_reuses": self.reused,
                "solver_repeat_checkouts": self.repeat_checkouts,
                "solver_releases": self.released,
                "solvers_discarded": self.discarded,
                "solver_evictions": self.evictions,
                "clauses_retained": self.clauses_retained,
                "reuse_rate": (self.reused / attempts) if attempts else 0.0,
            }

    def core_stats(self) -> Dict[str, int]:
        """Aggregate CDCL statistics over every live solver the pool has
        built (parked or checked out).  Monotone while solvers live, so
        callers snapshot before/after a query to get per-query deltas."""
        totals: Dict[str, int] = {
            "decisions": 0,
            "conflicts": 0,
            "propagations": 0,
            "restarts": 0,
            "learned_clauses": 0,
            "solve_calls": 0,
        }
        with self._lock:
            solvers = list(self._tracked)
        for solver in solvers:
            for name, value in solver.core_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SolverPool(pooled={s['solvers_pooled']}/{s['pool_maxsize']}, "
            f"created={s['solvers_created']}, reuses={s['solver_reuses']})"
        )


#: The process-wide pool used by every pooled decision procedure.
SOLVER_POOL = SolverPool()


def solver_pool_stats() -> Dict[str, Any]:
    """Statistics of the process-wide solver pool."""
    return SOLVER_POOL.stats()


def _pool_metrics() -> Dict[str, float]:
    return {
        f"repro_pool_{name}": float(value)
        for name, value in SOLVER_POOL.stats().items()
        if isinstance(value, (int, float))
    }


# Pull-style exposition: the pool keeps its own counters under its own
# lock; the registry polls them at expose()/snapshot() time.
METRICS.register_collector("solver_pool", _pool_metrics)


def clear_solver_pool() -> None:
    """Reset the process-wide pool (parked solvers and counters)."""
    SOLVER_POOL.clear()


def configure_solver_pool(maxsize: int) -> None:
    """Re-bound the process-wide pool."""
    SOLVER_POOL.configure(maxsize)


# ----------------------------------------------------------------------
# Acquisition helpers
# ----------------------------------------------------------------------
def _canonical_extra(extra_cnf: Optional[Cnf]):
    if not extra_cnf:
        return frozenset(), []
    clauses = [tuple(clause) if not isinstance(clause, frozenset) else clause
               for clause in extra_cnf]
    return frozenset(frozenset(c) for c in clauses), list(extra_cnf)


def acquire_solver(
    db: Optional[DisjunctiveDatabase] = None,
    extra_cnf: Optional[Cnf] = None,
    context: Tuple[Hashable, ...] = (),
    engine: str = "cdcl",
    reuse: bool = True,
    setup: Optional[Callable[[IncrementalSatSolver], None]] = None,
) -> Tuple[Optional[Hashable], IncrementalSatSolver]:
    """A (possibly warm) solver for ``(db, extra_cnf, context)``.

    Returns ``(key, solver)``; pass both to :func:`release_solver` when
    done.  ``key`` is ``None`` when ``reuse=False`` (a throwaway solver
    that is never pooled — the fresh-solver differential path).
    ``setup`` runs once per *constructed* solver to assert permanent
    context-specific content (e.g. a completion formula); it must be a
    pure function of the key so warm and cold solvers agree.
    """
    extra_key, extra_list = _canonical_extra(extra_cnf)

    def build() -> IncrementalSatSolver:
        solver = IncrementalSatSolver(
            db=db, extra_cnf=extra_list, engine=engine
        )
        if setup is not None:
            setup(solver)
        return solver

    if not reuse:
        return None, build()
    key = (db, extra_key, tuple(context), engine)
    return key, SOLVER_POOL.acquire(key, build)


def release_solver(
    key: Optional[Hashable], solver: IncrementalSatSolver
) -> None:
    """Return a solver obtained from :func:`acquire_solver` to the pool
    (no-op for ``key=None`` throwaway solvers)."""
    if key is not None:
        SOLVER_POOL.release(key, solver)


@contextmanager
def pooled_scope(
    db: Optional[DisjunctiveDatabase] = None,
    extra_cnf: Optional[Cnf] = None,
    context: Tuple[Hashable, ...] = (),
    engine: str = "cdcl",
    reuse: bool = True,
    setup: Optional[Callable[[IncrementalSatSolver], None]] = None,
) -> Iterator[Scope]:
    """A fresh scope on a (possibly warm) pooled solver.

    The drop-in replacement for the ``SatSolver(); add_database(db)``
    pattern: everything asserted through the yielded scope is retracted
    on exit, and the underlying solver returns to the pool warm.
    """
    key, solver = acquire_solver(
        db=db,
        extra_cnf=extra_cnf,
        context=context,
        engine=engine,
        reuse=reuse,
        setup=setup,
    )
    try:
        with solver.scope() as scope:
            yield scope
    finally:
        release_solver(key, solver)


# ----------------------------------------------------------------------
# Batched oracle sweeps
# ----------------------------------------------------------------------
def scoped_sweep(
    solver: IncrementalSatSolver,
    candidates: Iterable[Any],
    probe: Callable[[Scope, Any], Any],
):
    """Run a per-candidate probe for every candidate in **one** scope.

    The batched form of the ``for atom in vocabulary: open scope, ask``
    closure loop: a GCWA/CCWA free-for-negation sweep used to issue
    ``|V|`` independent round trips, each opening (and retiring) its own
    scope, so learned clauses and blocking clauses derived *inside* a
    query died with it.  Here all candidates share a single top-level
    scope on the persistent solver — the probe encodes its candidate as
    solver *assumptions* instead of scope clauses — so learned-clause
    state, saved blocking clauses and variable activities accumulate
    across the entire pass.

    Accounting contract: the probe is expected to tick exactly the NP
    calls and Σ₂ᵖ dispatches the per-candidate path would have (the call
    *sites* are unchanged — only scope lifetimes are), so certifier
    envelopes over a batched sweep are identical to the per-query ones.

    Returns ``{candidate: probe_result}`` in candidate order.
    """
    results: Dict[Any, Any] = {}
    with solver.scope() as searcher:
        for candidate in candidates:
            results[candidate] = probe(searcher, candidate)
    return results
