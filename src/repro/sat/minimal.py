"""Minimal-model machinery.

Everything the paper's semantics need about minimal models, built on the
SAT oracle:

* ``MM(DB)`` — subset-minimal models (EGCWA, GCWA, DSM, ...);
* ``MM(DB; P; Z)`` — minimal models with minimized atoms ``P``, fixed
  atoms ``Q`` and floating atoms ``Z`` (CCWA, ECWA/CIRC):
  ``N ≤_{P;Z} M`` iff ``N∩Q = M∩Q`` and ``N∩P ⊆ M∩P``;
* prioritized (lexicographic) minimal models for ``P1 > P2 > ... > Pr; Z``
  (ICWA / prioritized circumscription).

The central Σ₂ᵖ *primitive* is :meth:`MinimalModelSolver.find_minimal_satisfying`
— "is there a minimal model satisfying a side condition G?" — realized as
candidate generation plus an NP (SAT) minimality check, exactly the
guess-and-check structure of the paper's upper-bound proofs.

Note on ``(P;Z)``-minimality: whether ``M`` is ``≤_{P;Z}``-minimal depends
only on ``M ∩ (P ∪ Q)``, so checks and blocking work on that projection.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SolverError
from ..logic.atoms import Literal
from ..runtime.budget import check_deadline
from ..logic.cnf import Cnf
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from .solver import SatSolver


class MinimalModelSolver:
    """Minimal-model queries against a fixed database (plus optional extra
    CNF constraints that *count as part of the theory* for minimality).

    Args:
        db: the database.
        extra_cnf: additional clauses conjoined to the theory.
        universe: the atom set over which subset-minimality is taken;
            defaults to the database vocabulary.
        engine: SAT engine for all queries.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        extra_cnf: Optional[Cnf] = None,
        universe: Optional[Iterable[str]] = None,
        engine: str = "cdcl",
    ):
        self.db = db
        self.engine = engine
        self.universe: Tuple[str, ...] = tuple(
            sorted(universe if universe is not None else db.vocabulary)
        )
        self._extra_cnf = list(extra_cnf) if extra_cnf else []
        self._check_solver = SatSolver(engine=engine)
        self._check_solver.add_database(db)
        for clause in self._extra_cnf:
            self._check_solver.add_clause(clause)
        for atom in self.universe:
            self._check_solver.variables.intern(atom)
        self._selector_count = 0
        self.sat_calls = 0

    # ------------------------------------------------------------------
    # Low-level: witness queries on the persistent check solver
    # ------------------------------------------------------------------
    def _fresh_selector(self) -> Literal:
        while True:
            name = f"__sel{self._selector_count}"
            self._selector_count += 1
            if name not in self._check_solver.variables:
                return Literal.pos(name)

    def _solve(self, assumptions: Sequence[Literal]) -> bool:
        self.sat_calls += 1
        return self._check_solver.solve(assumptions)

    def witness_below(
        self, model: Iterable[str], extra_false: Iterable[str] = ()
    ) -> Optional[Interpretation]:
        """A model ``N ⊊ M`` of the theory (over the universe), or ``None``.

        ``extra_false`` atoms are additionally forced false (used by the
        shrink loop to keep earlier exclusions).
        """
        true_atoms = frozenset(model) & frozenset(self.universe)
        assumptions: List[Literal] = [
            Literal.neg(a) for a in self.universe if a not in true_atoms
        ]
        assumptions += [Literal.neg(a) for a in extra_false]
        if not true_atoms:
            return None  # nothing below the empty model
        selector = self._fresh_selector()
        self._check_solver.add_clause(
            [-selector] + [Literal.neg(a) for a in sorted(true_atoms)]
        )
        assumptions.append(selector)
        satisfiable = self._solve(assumptions)
        result = (
            self._check_solver.model(restrict_to=self.universe)
            if satisfiable
            else None
        )
        # Permanently disable the selector so the clause becomes inert.
        self._check_solver.add_clause([-selector])
        return result

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model`` is a subset-minimal model of the theory.

        One SAT (NP-oracle) call.  ``model`` must be a model of the
        theory; minimality of non-models is not meaningful.
        """
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Drive a model down to a subset-minimal one (the standard
        shrink loop: repeatedly find a strictly smaller model)."""
        current = Interpretation(frozenset(model) & frozenset(self.universe))
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    # ------------------------------------------------------------------
    # Finding / enumerating minimal models
    # ------------------------------------------------------------------
    def find_minimal(self) -> Optional[Interpretation]:
        """Some minimal model of the theory, or ``None`` if inconsistent."""
        if not self._solve([]):
            return None
        return self.shrink(self._check_solver.model(restrict_to=self.universe))

    def iter_minimal_models(
        self, max_models: Optional[int] = None
    ) -> Iterator[Interpretation]:
        """Enumerate all subset-minimal models.

        Uses the superset-blocking strategy: after reporting a minimal
        model ``M``, the clause ``∨_{x∈M} ¬x`` (falsified exactly by the
        supersets of ``M``) is added.  Distinct minimal models are
        incomparable, so none is lost, and any model of the blocked theory
        shrinks to a minimal model of the *original* theory.
        """
        blocker = SatSolver(engine=self.engine)
        blocker.add_database(self.db)
        for clause in self._extra_cnf:
            blocker.add_clause(clause)
        for atom in self.universe:
            blocker.variables.intern(atom)
        produced = 0
        while max_models is None or produced < max_models:
            check_deadline()
            self.sat_calls += 1
            if not blocker.solve():
                return
            candidate = blocker.model(restrict_to=self.universe)
            minimal = self.shrink(candidate)
            yield minimal
            produced += 1
            if not minimal:
                return  # the empty model is the unique minimal model
            blocker.add_clause([Literal.neg(a) for a in sorted(minimal)])

    # ------------------------------------------------------------------
    # The Σ₂ᵖ primitive: ∃ minimal model satisfying a side condition
    # ------------------------------------------------------------------
    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A subset-minimal model of the theory that satisfies
        ``condition``, or ``None``.

        ``condition`` may mention atoms outside the universe; they are
        treated as existentially quantified helpers (they do not take part
        in minimization).

        Algorithm: search models of ``theory ∧ condition``; greedily
        shrink *within* ``theory ∧ condition`` so candidates are few; test
        each candidate for minimality w.r.t. the *theory alone* (NP
        oracle); block the universe-projection of failed candidates.
        """
        searcher = SatSolver(engine=self.engine)
        searcher.add_database(self.db)
        for clause in self._extra_cnf:
            searcher.add_clause(clause)
        for atom in self.universe:
            searcher.variables.intern(atom)
        searcher.add_formula(condition)
        tried = 0
        while max_candidates is None or tried < max_candidates:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve():
                return None
            candidate = searcher.model(restrict_to=self.universe)
            # Shrink within theory ∧ condition to reduce candidate count.
            candidate = _shrink_in(searcher, candidate, self.universe, self)
            tried += 1
            if self.is_minimal(candidate):
                return candidate
            block = [Literal.neg(a) for a in sorted(candidate)]
            block += [
                Literal.pos(a) for a in self.universe if a not in candidate
            ]
            searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "find_minimal_satisfying"
        )

    def entails(self, formula: Formula) -> bool:
        """Minimal-model entailment ``MM(theory) |= formula``.

        This is the Π₂ᵖ problem at the heart of GCWA/EGCWA/ECWA inference:
        true iff *no* minimal model satisfies ``¬formula``.
        """
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None


def _shrink_in(
    solver: SatSolver,
    model: Interpretation,
    universe: Sequence[str],
    counter: MinimalModelSolver,
) -> Interpretation:
    """Shrink ``model`` to a subset-minimal model of the theory held by
    ``solver`` (which may include side conditions), counting SAT calls on
    ``counter``."""
    current = model
    while True:
        if not current:
            return current
        true_atoms = sorted(current)
        selector_name = f"__shr{counter._selector_count}"
        counter._selector_count += 1
        selector = Literal.pos(selector_name)
        solver.add_clause([-selector] + [Literal.neg(a) for a in true_atoms])
        assumptions = [selector] + [
            Literal.neg(a) for a in universe if a not in current
        ]
        counter.sat_calls += 1
        satisfiable = solver.solve(assumptions)
        if satisfiable:
            smaller = solver.model(restrict_to=universe)
        solver.add_clause([-selector])
        if not satisfiable:
            return current
        current = smaller


# ----------------------------------------------------------------------
# (P; Z)-minimality  (CCWA, ECWA / circumscription)
# ----------------------------------------------------------------------
class PZMinimalModelSolver:
    """Queries about ``MM(DB; P; Z)``.

    The partition is ``(P; Q; Z)`` with ``Q`` implied as the rest of the
    vocabulary: ``P`` minimized, ``Q`` fixed, ``Z`` floating.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        p: Iterable[str],
        z: Iterable[str],
        engine: str = "cdcl",
    ):
        self.db = db
        self.engine = engine
        self.p = frozenset(p)
        self.z = frozenset(z)
        self.q = frozenset(db.vocabulary) - self.p - self.z
        db.check_partition(self.p, self.q, self.z)
        self._check_solver = SatSolver(engine=engine)
        self._check_solver.add_database(db)
        self._selector_count = 0
        self.sat_calls = 0

    def _fresh_selector(self) -> Literal:
        name = f"__pzsel{self._selector_count}"
        self._selector_count += 1
        return Literal.pos(name)

    def witness_below(self, model: Iterable[str]) -> Optional[Interpretation]:
        """A model ``N <_{P;Z} M``, or ``None``.  Depends only on
        ``M ∩ (P ∪ Q)``."""
        true_atoms = frozenset(model)
        assumptions: List[Literal] = []
        # Fix Q to agree with M.
        for atom in sorted(self.q):
            if atom in true_atoms:
                assumptions.append(Literal.pos(atom))
            else:
                assumptions.append(Literal.neg(atom))
        # P must be a subset of M ∩ P ...
        p_true = sorted(self.p & true_atoms)
        for atom in sorted(self.p - true_atoms):
            assumptions.append(Literal.neg(atom))
        # ... and a strict one.
        if not p_true:
            return None
        selector = self._fresh_selector()
        self._check_solver.add_clause(
            [-selector] + [Literal.neg(a) for a in p_true]
        )
        assumptions.append(selector)
        self.sat_calls += 1
        satisfiable = self._check_solver.solve(assumptions)
        result = (
            self._check_solver.model(restrict_to=self.db.vocabulary)
            if satisfiable
            else None
        )
        self._check_solver.add_clause([-selector])
        return result

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model ∈ MM(DB; P; Z)`` (one SAT call)."""
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Descend ``≤_{P;Z}`` from ``model`` to a ``(P;Z)``-minimal model."""
        current = Interpretation(model)
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A ``(P;Z)``-minimal model of DB satisfying ``condition``, or
        ``None``.  Candidate generation + NP minimality check; failed
        candidates are blocked on their ``P ∪ Q`` projection (minimality
        depends only on that projection, but the condition does not — so a
        failed candidate's projection can be blocked only for minimality
        reasons, which is exactly when we block)."""
        searcher = SatSolver(engine=self.engine)
        searcher.add_database(self.db)
        searcher.add_formula(condition)
        pq = sorted(self.p | self.q)
        tried = 0
        while max_candidates is None or tried < max_candidates:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve():
                return None
            candidate = searcher.model(restrict_to=self.db.vocabulary)
            tried += 1
            if self.is_minimal(candidate):
                return candidate
            block = [
                Literal.neg(a) if a in candidate else Literal.pos(a)
                for a in pq
            ]
            searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "PZ find_minimal_satisfying"
        )

    def entails(self, formula: Formula) -> bool:
        """``MM(DB; P; Z) |= formula`` (Π₂ᵖ)."""
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None

    def iter_minimal_models(
        self, max_models: Optional[int] = None
    ) -> Iterator[Interpretation]:
        """Enumerate ``MM(DB; P; Z)``.

        Distinct minimal models may share their ``P ∪ Q`` projection only
        by differing on ``Z``; all such ``Z``-variants are minimal
        together.  We enumerate models, check minimality of each new
        ``P ∪ Q`` projection once, and emit every model of accepted
        projections.
        """
        searcher = SatSolver(engine=self.engine)
        searcher.add_database(self.db)
        pq = sorted(self.p | self.q)
        produced = 0
        while True:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve():
                return
            candidate = searcher.model(restrict_to=self.db.vocabulary)
            projection = frozenset(candidate) & frozenset(pq)
            if self.is_minimal(candidate):
                # Emit all Z-extensions of this projection that are models.
                base = [
                    Literal.pos(a) if a in projection else Literal.neg(a)
                    for a in pq
                ]
                extension_solver = SatSolver(engine=self.engine)
                extension_solver.add_database(self.db)
                while True:
                    self.sat_calls += 1
                    if not extension_solver.solve(base):
                        break
                    model = extension_solver.model(
                        restrict_to=self.db.vocabulary
                    )
                    yield model
                    produced += 1
                    if max_models is not None and produced >= max_models:
                        return
                    extension_solver.add_clause(
                        [
                            Literal.neg(a) if a in model else Literal.pos(a)
                            for a in sorted(self.db.vocabulary)
                        ]
                    )
            block = [
                Literal.neg(a) if a in projection else Literal.pos(a)
                for a in pq
            ]
            searcher.add_clause(block)


# ----------------------------------------------------------------------
# Prioritized (lexicographic) minimality  (ICWA / prioritized CIRC)
# ----------------------------------------------------------------------
class PrioritizedMinimalModelSolver:
    """Queries about lexicographically minimal models for priority levels
    ``P1 > P2 > ... > Pr`` with floating atoms ``Z`` (and ``Q`` the fixed
    remainder of the vocabulary).

    ``N <_{P1>..>Pr;Z} M`` iff ``N∩Q = M∩Q`` and there is a level ``i``
    with ``N∩Pj = M∩Pj`` for all ``j < i`` and ``N∩Pi ⊊ M∩Pi``.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        levels: Sequence[Iterable[str]],
        z: Iterable[str] = (),
        engine: str = "cdcl",
    ):
        self.db = db
        self.engine = engine
        self.levels: List[frozenset] = [frozenset(level) for level in levels]
        self.z = frozenset(z)
        flat = frozenset(itertools.chain.from_iterable(self.levels))
        if sum(len(level) for level in self.levels) != len(flat):
            raise SolverError("priority levels overlap")
        if flat & self.z:
            raise SolverError("priority levels overlap with Z")
        self.q = frozenset(db.vocabulary) - flat - self.z
        self._check_solver = SatSolver(engine=engine)
        self._check_solver.add_database(db)
        self._selector_count = 0
        self.sat_calls = 0

    def witness_below(self, model: Iterable[str]) -> Optional[Interpretation]:
        """A model lexicographically below ``model``, or ``None``.
        Implemented as one SAT call per priority level."""
        true_atoms = frozenset(model)
        base: List[Literal] = []
        for atom in sorted(self.q):
            base.append(
                Literal.pos(atom) if atom in true_atoms else Literal.neg(atom)
            )
        for index, level in enumerate(self.levels):
            assumptions = list(base)
            # Levels above i agree with M exactly.
            for higher in self.levels[:index]:
                for atom in sorted(higher):
                    assumptions.append(
                        Literal.pos(atom)
                        if atom in true_atoms
                        else Literal.neg(atom)
                    )
            # Level i: strict subset.
            level_true = sorted(level & true_atoms)
            for atom in sorted(level - true_atoms):
                assumptions.append(Literal.neg(atom))
            if not level_true:
                continue
            selector = Literal.pos(f"__prsel{self._selector_count}")
            self._selector_count += 1
            self._check_solver.add_clause(
                [-selector] + [Literal.neg(a) for a in level_true]
            )
            assumptions.append(selector)
            self.sat_calls += 1
            satisfiable = self._check_solver.solve(assumptions)
            result = (
                self._check_solver.model(restrict_to=self.db.vocabulary)
                if satisfiable
                else None
            )
            self._check_solver.add_clause([-selector])
            if result is not None:
                return result
        return None

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model`` is lexicographically minimal."""
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Descend the lexicographic order to a minimal model."""
        current = Interpretation(model)
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A prioritized-minimal model satisfying ``condition``, or ``None``."""
        searcher = SatSolver(engine=self.engine)
        searcher.add_database(self.db)
        searcher.add_formula(condition)
        visible = sorted(self.db.vocabulary - self.z)
        tried = 0
        while max_candidates is None or tried < max_candidates:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve():
                return None
            candidate = searcher.model(restrict_to=self.db.vocabulary)
            tried += 1
            if self.is_minimal(candidate):
                return candidate
            block = [
                Literal.neg(a) if a in candidate else Literal.pos(a)
                for a in visible
            ]
            searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "prioritized find_minimal_satisfying"
        )

    def entails(self, formula: Formula) -> bool:
        """Truth of ``formula`` in every prioritized-minimal model."""
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None


# ----------------------------------------------------------------------
# Convenience functions
# ----------------------------------------------------------------------
def find_minimal_model(
    db: DisjunctiveDatabase, engine: str = "cdcl"
) -> Optional[Interpretation]:
    """Some subset-minimal model of ``db`` or ``None`` if inconsistent."""
    return MinimalModelSolver(db, engine=engine).find_minimal()


def minimal_models(
    db: DisjunctiveDatabase,
    max_models: Optional[int] = None,
    engine: str = "cdcl",
) -> List[Interpretation]:
    """All subset-minimal models ``MM(DB)`` (bounded by ``max_models``)."""
    return list(
        MinimalModelSolver(db, engine=engine).iter_minimal_models(max_models)
    )


def is_minimal_model(
    db: DisjunctiveDatabase, model: Iterable[str], engine: str = "cdcl"
) -> bool:
    """Whether ``model`` is a minimal model of ``db`` (model-ness is also
    verified)."""
    model_set = frozenset(model)
    if not db.is_model(model_set):
        return False
    return MinimalModelSolver(db, engine=engine).is_minimal(model_set)
