"""Minimal-model machinery.

Everything the paper's semantics need about minimal models, built on the
SAT oracle:

* ``MM(DB)`` — subset-minimal models (EGCWA, GCWA, DSM, ...);
* ``MM(DB; P; Z)`` — minimal models with minimized atoms ``P``, fixed
  atoms ``Q`` and floating atoms ``Z`` (CCWA, ECWA/CIRC):
  ``N ≤_{P;Z} M`` iff ``N∩Q = M∩Q`` and ``N∩P ⊆ M∩P``;
* prioritized (lexicographic) minimal models for ``P1 > P2 > ... > Pr; Z``
  (ICWA / prioritized circumscription).

The central Σ₂ᵖ *primitive* is :meth:`MinimalModelSolver.find_minimal_satisfying`
— "is there a minimal model satisfying a side condition G?" — realized as
candidate generation plus an NP (SAT) minimality check, exactly the
guess-and-check structure of the paper's upper-bound proofs.

All three solver classes run on *one* pooled
:class:`~repro.sat.incremental.IncrementalSatSolver` per
``(database, extra-theory)`` context: the database is translated once,
and every witness query, shrink step, blocking-clause enumeration and
candidate/check alternation happens in a selector-guarded
:class:`~repro.sat.incremental.Scope` on that solver, so learned clauses
accumulate across the whole query — and, via the pool, across *queries*.
Pass ``reuse=False`` for a private throwaway solver (the ``fresh``
differential-testing path).

``MM(DB)`` and ``MM(DB; P; Z)`` enumeration additionally decompose along
connected components (see :mod:`repro.sat.decompose`): the minimal models
of a multi-component database are the products of the parts', so the
enumerators recurse per part and combine, turning ``2^|V|``-shaped work
into a sum of exponentially smaller pieces.  Lexicographic minimality
does *not* factor when priority levels span components, so the
prioritized solver never decomposes.

Note on ``(P;Z)``-minimality: whether ``M`` is ``≤_{P;Z}``-minimal depends
only on ``M ∩ (P ∪ Q)``, so checks and blocking work on that projection.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import SolverError
from ..kernel import atom_table_for, subsets_in_table_order
from ..logic.atoms import Literal
from ..obs.accounting import counts_as_sigma2_dispatch
from ..runtime.budget import check_deadline
from ..logic.cnf import Cnf
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from .decompose import decompose, restrict_partition
from .incremental import (
    SOLVER_POOL,
    IncrementalSatSolver,
    Scope,
    acquire_solver,
    scoped_sweep,
)


class _PooledSolverMixin:
    """Shared acquisition/release plumbing for the three solver classes.

    The underlying incremental solver is checked out of the process pool
    for this object's lifetime and returned when :meth:`close` runs (or
    the object is collected — a ``weakref.finalize`` guarantees release).
    All three classes use the same pool context for a bare database
    (``("db",)``), so a warm solver serves MM checks, PZ checks,
    prioritized checks and enumeration scopes alike.
    """

    def _attach_solver(
        self,
        db: Optional[DisjunctiveDatabase],
        extra_cnf: Optional[Cnf],
        context: Tuple,
        engine: str,
        reuse: bool,
        setup=None,
    ) -> None:
        self._pool_key, self._inc = acquire_solver(
            db=db,
            extra_cnf=extra_cnf,
            context=context,
            engine=engine,
            reuse=reuse,
            setup=setup,
        )
        if self._pool_key is not None:
            self._finalizer = weakref.finalize(
                self, SOLVER_POOL.release, self._pool_key, self._inc
            )
        else:
            self._finalizer = None

    def close(self) -> None:
        """Return the underlying solver to the pool.  The object must not
        be queried afterwards (another user may check the solver out)."""
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MinimalModelSolver(_PooledSolverMixin):
    """Minimal-model queries against a fixed database (plus optional extra
    CNF constraints that *count as part of the theory* for minimality).

    Args:
        db: the database.
        extra_cnf: additional clauses conjoined to the theory.
        universe: the atom set over which subset-minimality is taken;
            defaults to the database vocabulary.
        engine: SAT engine for all queries.
        reuse: draw the solver from the process pool (warm learned
            clauses) rather than building a private one.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        extra_cnf: Optional[Cnf] = None,
        universe: Optional[Iterable[str]] = None,
        engine: str = "cdcl",
        reuse: bool = True,
    ):
        self.db = db
        self.engine = engine
        self.reuse = reuse
        self.universe: Tuple[str, ...] = tuple(
            sorted(universe if universe is not None else db.vocabulary)
        )
        self._default_universe = frozenset(self.universe) == db.vocabulary
        self._extra_cnf = list(extra_cnf) if extra_cnf else []
        if self._default_universe:
            context: Tuple = ("db",)
            setup = None
        else:
            universe_atoms = self.universe
            context = ("db-universe", universe_atoms)
            setup = lambda solver: solver.intern(universe_atoms)
        self._attach_solver(
            db, self._extra_cnf, context, engine, reuse, setup=setup
        )
        self.sat_calls = 0

    # ------------------------------------------------------------------
    # Low-level: witness queries in scopes on the persistent solver
    # ------------------------------------------------------------------
    def witness_below(
        self, model: Iterable[str], extra_false: Iterable[str] = ()
    ) -> Optional[Interpretation]:
        """A model ``N ⊊ M`` of the theory (over the universe), or ``None``.

        ``extra_false`` atoms are additionally forced false (used by the
        shrink loop to keep earlier exclusions).
        """
        true_atoms = frozenset(model) & frozenset(self.universe)
        assumptions: List[Literal] = [
            Literal.neg(a) for a in self.universe if a not in true_atoms
        ]
        assumptions += [Literal.neg(a) for a in extra_false]
        if not true_atoms:
            return None  # nothing below the empty model
        with self._inc.scope() as scope:
            scope.add_clause([Literal.neg(a) for a in sorted(true_atoms)])
            self.sat_calls += 1
            if scope.solve(assumptions):
                return scope.model(restrict_to=self.universe)
            return None

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model`` is a subset-minimal model of the theory.

        One SAT (NP-oracle) call.  ``model`` must be a model of the
        theory; minimality of non-models is not meaningful.
        """
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Drive a model down to a subset-minimal one (the standard
        shrink loop: repeatedly find a strictly smaller model)."""
        current = Interpretation(frozenset(model) & frozenset(self.universe))
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    # ------------------------------------------------------------------
    # Finding / enumerating minimal models
    # ------------------------------------------------------------------
    def _decomposition(self) -> Optional[Tuple[DisjunctiveDatabase, ...]]:
        """The component split, when minimality factors through it: extra
        clauses could couple components and a custom universe changes the
        order, so decomposition applies only to the plain case."""
        if self._extra_cnf or not self._default_universe:
            return None
        return decompose(self.db)

    def find_minimal(self) -> Optional[Interpretation]:
        """Some minimal model of the theory, or ``None`` if inconsistent."""
        parts = self._decomposition()
        if parts is not None:
            union: frozenset = frozenset()
            for part in parts:
                if not part.clauses:
                    continue  # MM = {∅}
                with MinimalModelSolver(
                    part, engine=self.engine, reuse=self.reuse
                ) as sub:
                    found = sub.find_minimal()
                    self.sat_calls += sub.sat_calls
                if found is None:
                    return None
                union |= found
            return Interpretation(union)
        self.sat_calls += 1
        if not self._inc.solve():
            return None
        return self.shrink(self._inc.model(restrict_to=self.universe))

    def iter_minimal_models(
        self, max_models: Optional[int] = None
    ) -> Iterator[Interpretation]:
        """Enumerate all subset-minimal models.

        Multi-component databases are enumerated per component and
        combined by product.  Connected ones use the superset-blocking
        strategy: after reporting a minimal model ``M``, the clause
        ``∨_{x∈M} ¬x`` (falsified exactly by the supersets of ``M``) is
        added.  Distinct minimal models are incomparable, so none is
        lost, and any model of the blocked theory shrinks to a minimal
        model of the *original* theory.
        """
        parts = self._decomposition()
        if parts is not None:
            yield from self._iter_product(parts, max_models)
            return
        produced = 0
        with self._inc.scope() as blocker:
            while max_models is None or produced < max_models:
                check_deadline()
                self.sat_calls += 1
                if not blocker.solve():
                    return
                candidate = blocker.model(restrict_to=self.universe)
                minimal = self.shrink(candidate)
                yield minimal
                produced += 1
                if not minimal:
                    return  # the empty model is the unique minimal model
                blocker.add_clause(
                    [Literal.neg(a) for a in sorted(minimal)]
                )

    def _iter_product(
        self,
        parts: Tuple[DisjunctiveDatabase, ...],
        max_models: Optional[int],
    ) -> Iterator[Interpretation]:
        """MM as the product of the components' MM sets."""
        from .decompose import product_interpretations

        part_models: List[List[Interpretation]] = []
        for part in parts:
            check_deadline()
            if not part.clauses:
                continue  # free atoms: MM = {∅}, neutral for the product
            with MinimalModelSolver(
                part, engine=self.engine, reuse=self.reuse
            ) as sub:
                models = list(sub.iter_minimal_models())
                self.sat_calls += sub.sat_calls
            if not models:
                return  # an inconsistent component: MM(DB) = ∅
            part_models.append(models)
        produced = 0
        for combined in product_interpretations(part_models):
            yield combined
            produced += 1
            if max_models is not None and produced >= max_models:
                return

    # ------------------------------------------------------------------
    # The Σ₂ᵖ primitive: ∃ minimal model satisfying a side condition
    # ------------------------------------------------------------------
    @counts_as_sigma2_dispatch
    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A subset-minimal model of the theory that satisfies
        ``condition``, or ``None``.

        ``condition`` may mention atoms outside the universe; they are
        treated as existentially quantified helpers (they do not take part
        in minimization).

        Algorithm: search models of ``theory ∧ condition`` in one scope;
        greedily shrink *within* ``theory ∧ condition`` (child scopes) so
        candidates are few; test each candidate for minimality w.r.t. the
        *theory alone* (NP oracle, independent scopes); block the
        universe-projection of failed candidates.  The condition does not
        decompose along components, so this never decomposes.
        """
        with self._inc.scope() as searcher:
            searcher.add_formula(condition)
            tried = 0
            while max_candidates is None or tried < max_candidates:
                check_deadline()
                self.sat_calls += 1
                if not searcher.solve():
                    return None
                candidate = searcher.model(restrict_to=self.universe)
                # Shrink within theory ∧ condition to reduce candidates.
                candidate = self._shrink_within(searcher, candidate)
                tried += 1
                if self.is_minimal(candidate):
                    return candidate
                block = [Literal.neg(a) for a in sorted(candidate)]
                block += [
                    Literal.pos(a)
                    for a in self.universe
                    if a not in candidate
                ]
                searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "find_minimal_satisfying"
        )

    def _shrink_within(
        self,
        searcher: Scope,
        model: Interpretation,
        extra_assumptions: Tuple[Literal, ...] = (),
    ) -> Interpretation:
        """Shrink ``model`` to a subset-minimal model of the constraints
        enforced by ``searcher`` (theory + condition + blocks), via child
        scopes carrying the strictness clause.  ``extra_assumptions``
        are held through every shrink step (the batched sweep passes the
        candidate literal here, where the per-query path encodes it as a
        scope formula)."""
        current = model
        while True:
            check_deadline()
            if not current:
                return current
            with searcher.scope() as step:
                step.add_clause(
                    [Literal.neg(a) for a in sorted(current)]
                )
                assumptions = list(extra_assumptions)
                assumptions += [
                    Literal.neg(a)
                    for a in self.universe
                    if a not in current
                ]
                self.sat_calls += 1
                if not step.solve(assumptions):
                    return current
                current = step.model(restrict_to=self.universe)

    # ------------------------------------------------------------------
    # Batched oracle sweep: ff(DB) in one scope
    # ------------------------------------------------------------------
    @counts_as_sigma2_dispatch
    def _sweep_witness(
        self, searcher: Scope, assumption: Literal
    ) -> Optional[Interpretation]:
        """One candidate literal of a batched sweep: a minimal model (of
        the theory alone) satisfying ``assumption``, or ``None``.

        Identical guess-shrink-check structure to
        :meth:`find_minimal_satisfying` — and decorated the same way, so
        the Σ₂ᵖ dispatch accounting is one per candidate literal either
        way — but the condition travels as a solver *assumption* instead
        of a per-query scope formula, so every literal of the sweep runs
        in the same scope.  Failed candidates pin a complete universe
        assignment whose non-minimality is condition-independent, so the
        blocking clauses (and the solver's learned clauses) are shared
        across the whole sweep; aggregate NP-call totals drop well below
        the per-query path's (individual databases may differ by a few
        calls either way, since the two paths can surface different
        candidate models to shrink).
        """
        while True:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve([assumption]):
                return None
            candidate = searcher.model(restrict_to=self.universe)
            candidate = self._shrink_within(
                searcher, candidate, extra_assumptions=(assumption,)
            )
            if self.is_minimal(candidate):
                return candidate
            block = [Literal.neg(a) for a in sorted(candidate)]
            block += [
                Literal.pos(a)
                for a in self.universe
                if a not in candidate
            ]
            searcher.add_clause(block)

    def free_for_negation_sweep(self) -> frozenset:
        """``ff(DB)`` — the atoms true in no minimal model — as **one**
        batched incremental sweep.

        The per-atom closure used to open |V| independent
        ``find_minimal_satisfying`` scopes; this asks every vocabulary
        atom in a single scope on the persistent solver (see
        :func:`repro.sat.incremental.scoped_sweep`), reusing learned
        clauses and failed-candidate blocks across atoms.  Counted as
        the same |V| Σ₂ᵖ dispatches as the per-atom loop, so certifier
        envelopes are unchanged.
        """
        results = scoped_sweep(
            self._inc,
            list(self.universe),
            lambda searcher, atom: self._sweep_witness(
                searcher, Literal.pos(atom)
            ),
        )
        return frozenset(
            atom for atom, witness in results.items() if witness is None
        )

    def entails(self, formula: Formula) -> bool:
        """Minimal-model entailment ``MM(theory) |= formula``.

        This is the Π₂ᵖ problem at the heart of GCWA/EGCWA/ECWA inference:
        true iff *no* minimal model satisfies ``¬formula``.
        """
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None


# ----------------------------------------------------------------------
# (P; Z)-minimality  (CCWA, ECWA / circumscription)
# ----------------------------------------------------------------------
class PZMinimalModelSolver(_PooledSolverMixin):
    """Queries about ``MM(DB; P; Z)``.

    The partition is ``(P; Q; Z)`` with ``Q`` implied as the rest of the
    vocabulary: ``P`` minimized, ``Q`` fixed, ``Z`` floating.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        p: Iterable[str],
        z: Iterable[str],
        engine: str = "cdcl",
        reuse: bool = True,
    ):
        self.db = db
        self.engine = engine
        self.reuse = reuse
        self.p = frozenset(p)
        self.z = frozenset(z)
        self.q = frozenset(db.vocabulary) - self.p - self.z
        db.check_partition(self.p, self.q, self.z)
        self._attach_solver(db, None, ("db",), engine, reuse)
        self.sat_calls = 0

    def witness_below(self, model: Iterable[str]) -> Optional[Interpretation]:
        """A model ``N <_{P;Z} M``, or ``None``.  Depends only on
        ``M ∩ (P ∪ Q)``."""
        true_atoms = frozenset(model)
        assumptions: List[Literal] = []
        # Fix Q to agree with M.
        for atom in sorted(self.q):
            if atom in true_atoms:
                assumptions.append(Literal.pos(atom))
            else:
                assumptions.append(Literal.neg(atom))
        # P must be a subset of M ∩ P ...
        p_true = sorted(self.p & true_atoms)
        for atom in sorted(self.p - true_atoms):
            assumptions.append(Literal.neg(atom))
        # ... and a strict one.
        if not p_true:
            return None
        with self._inc.scope() as scope:
            scope.add_clause([Literal.neg(a) for a in p_true])
            self.sat_calls += 1
            if scope.solve(assumptions):
                return scope.model(restrict_to=self.db.vocabulary)
            return None

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model ∈ MM(DB; P; Z)`` (one SAT call)."""
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Descend ``≤_{P;Z}`` from ``model`` to a ``(P;Z)``-minimal model."""
        current = Interpretation(model)
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    @counts_as_sigma2_dispatch
    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A ``(P;Z)``-minimal model of DB satisfying ``condition``, or
        ``None``.  Candidate generation + NP minimality check; failed
        candidates are blocked on their ``P ∪ Q`` projection (minimality
        depends only on that projection, but the condition does not — so a
        failed candidate's projection can be blocked only for minimality
        reasons, which is exactly when we block)."""
        with self._inc.scope() as searcher:
            searcher.add_formula(condition)
            pq = sorted(self.p | self.q)
            tried = 0
            while max_candidates is None or tried < max_candidates:
                check_deadline()
                self.sat_calls += 1
                if not searcher.solve():
                    return None
                candidate = searcher.model(restrict_to=self.db.vocabulary)
                tried += 1
                if self.is_minimal(candidate):
                    return candidate
                block = [
                    Literal.neg(a) if a in candidate else Literal.pos(a)
                    for a in pq
                ]
                searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "PZ find_minimal_satisfying"
        )

    def entails(self, formula: Formula) -> bool:
        """``MM(DB; P; Z) |= formula`` (Π₂ᵖ)."""
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None

    # ------------------------------------------------------------------
    # Batched oracle sweep over candidate P-atoms
    # ------------------------------------------------------------------
    @counts_as_sigma2_dispatch
    def _sweep_witness(
        self, searcher: Scope, assumption: Literal
    ) -> Optional[Interpretation]:
        """One candidate literal of a batched sweep: a ``(P;Z)``-minimal
        model satisfying ``assumption``, or ``None``.

        Same candidate loop and ``P ∪ Q`` projection blocking as
        :meth:`find_minimal_satisfying` (one Σ₂ᵖ dispatch per literal),
        with the condition as an assumption so the whole sweep shares one
        scope.  A blocked projection is non-minimal independently of the
        condition, so sharing the blocks across literals is sound.
        """
        pq = sorted(self.p | self.q)
        while True:
            check_deadline()
            self.sat_calls += 1
            if not searcher.solve([assumption]):
                return None
            candidate = searcher.model(restrict_to=self.db.vocabulary)
            if self.is_minimal(candidate):
                return candidate
            searcher.add_clause(
                [
                    Literal.neg(a) if a in candidate else Literal.pos(a)
                    for a in pq
                ]
            )

    def free_p_atoms_sweep(self) -> frozenset:
        """The ``P``-atoms true in no ``(P;Z)``-minimal model, as one
        batched incremental sweep (the CCWA closure's per-atom loop,
        collapsed into a single scope; same |P| Σ₂ᵖ dispatch count)."""
        results = scoped_sweep(
            self._inc,
            sorted(self.p),
            lambda searcher, atom: self._sweep_witness(
                searcher, Literal.pos(atom)
            ),
        )
        return frozenset(
            atom for atom, witness in results.items() if witness is None
        )

    def iter_minimal_models(
        self, max_models: Optional[int] = None
    ) -> Iterator[Interpretation]:
        """Enumerate ``MM(DB; P; Z)``.

        Multi-component databases decompose: the ``≤_{P;Z}`` order
        compares ``P`` and fixes ``Q`` pointwise, so ``MM(DB; P; Z)`` is
        the product of the components' ``MM(DBᵢ; Pᵢ; Zᵢ)``.

        Connected ones: distinct minimal models may share their ``P ∪ Q``
        projection only by differing on ``Z``; all such ``Z``-variants are
        minimal together.  We enumerate models, check minimality of each
        new ``P ∪ Q`` projection once, and emit every model of accepted
        projections.
        """
        parts = decompose(self.db)
        if parts is not None:
            yield from self._iter_product(parts, max_models)
            return
        with self._inc.scope() as searcher:
            pq = sorted(self.p | self.q)
            produced = 0
            while True:
                check_deadline()
                self.sat_calls += 1
                if not searcher.solve():
                    return
                candidate = searcher.model(restrict_to=self.db.vocabulary)
                projection = frozenset(candidate) & frozenset(pq)
                if self.is_minimal(candidate):
                    # Emit all Z-extensions of this projection that are
                    # models (an independent scope: theory alone).
                    base = [
                        Literal.pos(a) if a in projection else Literal.neg(a)
                        for a in pq
                    ]
                    with self._inc.scope() as extension:
                        while True:
                            check_deadline()
                            self.sat_calls += 1
                            if not extension.solve(base):
                                break
                            model = extension.model(
                                restrict_to=self.db.vocabulary
                            )
                            yield model
                            produced += 1
                            if (
                                max_models is not None
                                and produced >= max_models
                            ):
                                return
                            extension.add_clause(
                                [
                                    Literal.neg(a)
                                    if a in model
                                    else Literal.pos(a)
                                    for a in sorted(self.db.vocabulary)
                                ]
                            )
                searcher.add_clause(
                    [
                        Literal.neg(a) if a in projection else Literal.pos(a)
                        for a in pq
                    ]
                )

    def _iter_product(
        self,
        parts: Tuple[DisjunctiveDatabase, ...],
        max_models: Optional[int],
    ) -> Iterator[Interpretation]:
        from .decompose import product_interpretations

        part_models: List[List[Interpretation]] = []
        for part in parts:
            check_deadline()
            p_i, z_i = restrict_partition(part.vocabulary, self.p, self.z)
            if not part.clauses:
                # Free atoms: P-atoms are minimized to false; Q-atoms take
                # both values (each valuation is minimal for its own
                # Q-slice) and Z-atoms float, so every Q∪Z subset appears.
                # Enumerated through the parent database's shared
                # AtomTable so the product order is deterministic and
                # identical across the kernel and pure representations.
                models = list(
                    subsets_in_table_order(
                        atom_table_for(self.db), part.vocabulary - p_i
                    )
                )
            else:
                with PZMinimalModelSolver(
                    part, p_i, z_i, engine=self.engine, reuse=self.reuse
                ) as sub:
                    models = list(sub.iter_minimal_models())
                    self.sat_calls += sub.sat_calls
            if not models:
                return
            part_models.append(models)
        produced = 0
        for combined in product_interpretations(part_models):
            yield combined
            produced += 1
            if max_models is not None and produced >= max_models:
                return


# ----------------------------------------------------------------------
# Prioritized (lexicographic) minimality  (ICWA / prioritized CIRC)
# ----------------------------------------------------------------------
class PrioritizedMinimalModelSolver(_PooledSolverMixin):
    """Queries about lexicographically minimal models for priority levels
    ``P1 > P2 > ... > Pr`` with floating atoms ``Z`` (and ``Q`` the fixed
    remainder of the vocabulary).

    ``N <_{P1>..>Pr;Z} M`` iff ``N∩Q = M∩Q`` and there is a level ``i``
    with ``N∩Pj = M∩Pj`` for all ``j < i`` and ``N∩Pi ⊊ M∩Pi``.
    """

    def __init__(
        self,
        db: DisjunctiveDatabase,
        levels: Sequence[Iterable[str]],
        z: Iterable[str] = (),
        engine: str = "cdcl",
        reuse: bool = True,
    ):
        self.db = db
        self.engine = engine
        self.reuse = reuse
        self.levels: List[frozenset] = [frozenset(level) for level in levels]
        self.z = frozenset(z)
        flat = frozenset(itertools.chain.from_iterable(self.levels))
        if sum(len(level) for level in self.levels) != len(flat):
            raise SolverError("priority levels overlap")
        if flat & self.z:
            raise SolverError("priority levels overlap with Z")
        self.q = frozenset(db.vocabulary) - flat - self.z
        self._attach_solver(db, None, ("db",), engine, reuse)
        self.sat_calls = 0

    def witness_below(self, model: Iterable[str]) -> Optional[Interpretation]:
        """A model lexicographically below ``model``, or ``None``.
        Implemented as one SAT call per priority level."""
        true_atoms = frozenset(model)
        base: List[Literal] = []
        for atom in sorted(self.q):
            base.append(
                Literal.pos(atom) if atom in true_atoms else Literal.neg(atom)
            )
        for index, level in enumerate(self.levels):
            assumptions = list(base)
            # Levels above i agree with M exactly.
            for higher in self.levels[:index]:
                for atom in sorted(higher):
                    assumptions.append(
                        Literal.pos(atom)
                        if atom in true_atoms
                        else Literal.neg(atom)
                    )
            # Level i: strict subset.
            level_true = sorted(level & true_atoms)
            for atom in sorted(level - true_atoms):
                assumptions.append(Literal.neg(atom))
            if not level_true:
                continue
            with self._inc.scope() as scope:
                scope.add_clause([Literal.neg(a) for a in level_true])
                self.sat_calls += 1
                if scope.solve(assumptions):
                    return scope.model(restrict_to=self.db.vocabulary)
        return None

    def is_minimal(self, model: Iterable[str]) -> bool:
        """Whether ``model`` is lexicographically minimal."""
        return self.witness_below(model) is None

    def shrink(self, model: Iterable[str]) -> Interpretation:
        """Descend the lexicographic order to a minimal model."""
        current = Interpretation(model)
        while True:
            below = self.witness_below(current)
            if below is None:
                return current
            current = below

    @counts_as_sigma2_dispatch
    def find_minimal_satisfying(
        self, condition: Formula, max_candidates: Optional[int] = None
    ) -> Optional[Interpretation]:
        """A prioritized-minimal model satisfying ``condition``, or ``None``."""
        with self._inc.scope() as searcher:
            searcher.add_formula(condition)
            visible = sorted(self.db.vocabulary - self.z)
            tried = 0
            while max_candidates is None or tried < max_candidates:
                check_deadline()
                self.sat_calls += 1
                if not searcher.solve():
                    return None
                candidate = searcher.model(restrict_to=self.db.vocabulary)
                tried += 1
                if self.is_minimal(candidate):
                    return candidate
                block = [
                    Literal.neg(a) if a in candidate else Literal.pos(a)
                    for a in visible
                ]
                searcher.add_clause(block)
        raise SolverError(
            f"candidate budget {max_candidates} exhausted in "
            "prioritized find_minimal_satisfying"
        )

    def entails(self, formula: Formula) -> bool:
        """Truth of ``formula`` in every prioritized-minimal model."""
        from ..logic.formula import Not

        return self.find_minimal_satisfying(Not(formula)) is None


# ----------------------------------------------------------------------
# Convenience functions
# ----------------------------------------------------------------------
def find_minimal_model(
    db: DisjunctiveDatabase, engine: str = "cdcl", reuse: bool = True
) -> Optional[Interpretation]:
    """Some subset-minimal model of ``db`` or ``None`` if inconsistent."""
    with MinimalModelSolver(db, engine=engine, reuse=reuse) as solver:
        return solver.find_minimal()


def minimal_models(
    db: DisjunctiveDatabase,
    max_models: Optional[int] = None,
    engine: str = "cdcl",
    reuse: bool = True,
) -> List[Interpretation]:
    """All subset-minimal models ``MM(DB)`` (bounded by ``max_models``)."""
    with MinimalModelSolver(db, engine=engine, reuse=reuse) as solver:
        return list(solver.iter_minimal_models(max_models))


def is_minimal_model(
    db: DisjunctiveDatabase,
    model: Iterable[str],
    engine: str = "cdcl",
    reuse: bool = True,
) -> bool:
    """Whether ``model`` is a minimal model of ``db`` (model-ness is also
    verified)."""
    model_set = frozenset(model)
    if not db.is_model(model_set):
        return False
    with MinimalModelSolver(db, engine=engine, reuse=reuse) as solver:
        return solver.is_minimal(model_set)
