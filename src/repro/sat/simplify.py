"""CNF preprocessing: unit propagation, pure literals, subsumption.

Operates on symbolic CNF (:data:`repro.logic.cnf.Cnf`).  The paper's
decision procedures don't need preprocessing for correctness, but the
reductions produce structured CNFs where these classical simplifications
shrink instances substantially; the ablation benchmarks quantify it.

All transformations are *model-preserving on the remaining atoms*:
:func:`simplify_cnf` returns the residual CNF together with the literals
it fixed, and every model of the original is (fixed literals ∪ a model of
the residual), except pure-literal elimination which preserves
satisfiability and at least one model rather than the full model set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..logic.atoms import Literal
from ..logic.cnf import Cnf, CnfClause


@dataclass
class SimplificationResult:
    """Outcome of :func:`simplify_cnf`.

    Attributes:
        cnf: the residual clauses.
        fixed: literals forced by unit propagation (and, when enabled,
            chosen by pure-literal elimination).
        unsatisfiable: ``True`` when a contradiction was derived; the
            residual CNF then contains the empty clause.
    """

    cnf: Cnf
    fixed: FrozenSet[Literal]
    unsatisfiable: bool

    @property
    def fixed_atoms(self) -> FrozenSet[str]:
        return frozenset(l.atom for l in self.fixed)


def unit_propagate(cnf: Cnf) -> Tuple[Cnf, Set[Literal], bool]:
    """Propagate unit clauses to fixpoint.

    Returns ``(residual, forced_literals, unsatisfiable)``.
    """
    clauses: List[CnfClause] = list(cnf)
    forced: Dict[str, Literal] = {}
    while True:
        unit: Optional[Literal] = None
        for clause in clauses:
            if len(clause) == 1:
                (unit,) = clause
                break
        if unit is None:
            return clauses, set(forced.values()), False
        if forced.get(unit.atom, unit) != unit:
            # complementary units
            return [frozenset()], set(forced.values()), True
        forced[unit.atom] = unit
        reduced: List[CnfClause] = []
        for clause in clauses:
            if unit in clause:
                continue
            if -unit in clause:
                clause = clause - {-unit}
                if not clause:
                    return [frozenset()], set(forced.values()), True
            reduced.append(clause)
        clauses = reduced


def pure_literals(cnf: Cnf) -> FrozenSet[Literal]:
    """Literals whose complement never occurs."""
    seen: Set[Literal] = set()
    for clause in cnf:
        seen.update(clause)
    return frozenset(l for l in seen if -l not in seen)


def eliminate_pure_literals(cnf: Cnf) -> Tuple[Cnf, Set[Literal]]:
    """Satisfy-and-remove clauses containing a pure literal, to fixpoint."""
    clauses: List[CnfClause] = list(cnf)
    chosen: Set[Literal] = set()
    while True:
        pure = pure_literals(clauses)
        if not pure:
            return clauses, chosen
        chosen.update(pure)
        clauses = [c for c in clauses if not (c & pure)]


def remove_subsumed(cnf: Cnf) -> Cnf:
    """Drop clauses that are supersets of another clause (subsumption)."""
    ordered = sorted(set(cnf), key=len)
    kept: List[CnfClause] = []
    for clause in ordered:
        if not any(small <= clause for small in kept):
            kept.append(clause)
    return kept


def self_subsume(cnf: Cnf) -> Cnf:
    """Self-subsuming resolution: if ``C ∨ l`` and ``D`` with
    ``D ⊆ C ∨ ¬l`` exist, strengthen ``C ∨ l`` to ``C``.  One pass."""
    clauses = list(set(cnf))
    strengthened: List[CnfClause] = []
    for clause in clauses:
        current = clause
        for literal in list(clause):
            pivot = (current - {literal}) | {-literal}
            if any(other != current and other <= pivot
                   for other in clauses):
                current = current - {literal}
        strengthened.append(current)
    return strengthened


def simplify_cnf(
    cnf: Cnf,
    use_pure_literals: bool = False,
    use_subsumption: bool = True,
) -> SimplificationResult:
    """Run the preprocessing pipeline to fixpoint.

    Pure-literal elimination is off by default because it does not
    preserve the full model set (only satisfiability).
    """
    clauses: Cnf = list(cnf)
    fixed: Set[Literal] = set()
    while True:
        before = {frozenset(c) for c in clauses}
        clauses, forced, unsat = unit_propagate(clauses)
        fixed |= forced
        if unsat:
            return SimplificationResult([frozenset()], frozenset(fixed), True)
        if use_subsumption:
            clauses = remove_subsumed(self_subsume(clauses))
        if use_pure_literals:
            clauses, chosen = eliminate_pure_literals(clauses)
            fixed |= chosen
        if {frozenset(c) for c in clauses} == before:
            return SimplificationResult(
                list(clauses), frozenset(fixed), False
            )
