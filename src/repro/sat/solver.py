"""High-level SAT interface over named atoms.

:class:`SatSolver` wraps the integer-level CDCL solver with the symbolic
vocabulary of :mod:`repro.logic`: clauses are frozensets of
:class:`~repro.logic.atoms.Literal`, models come back as
:class:`~repro.logic.interpretation.Interpretation` objects, and databases
and formulas can be asserted directly.

A :class:`SatSolver` is incremental: clauses can be added between
``solve`` calls and assumptions allow temporary constraints.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from ..errors import SolverError
from ..logic.atoms import Literal
from ..runtime import observe_sat_call
from ..logic.clause import Clause
from ..logic.cnf import Cnf, tseitin
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from .cdcl import CdclSolver
from .dpll import solve_dpll
from .types import VariableMap


class _GlobalCounter:
    """Process-wide NP-oracle (SAT ``solve``) call counter.

    Used by :mod:`repro.complexity.oracles` to profile how many NP-oracle
    calls a decision procedure makes, no matter how deeply the solver
    instances are nested.  Solvers run on the serving layer's executor
    threads, so increments go through :meth:`inc` under the counter's
    lock — a bare ``calls += 1`` is a lost update waiting to happen
    (and is flagged statically as RPR202).  Reads stay lock-free: the
    profiling deltas in :mod:`repro.complexity.oracles` tolerate a torn
    read, never a lost increment.
    """

    __slots__ = ("calls", "_lock")

    def __init__(self) -> None:
        self.calls = 0
        self._lock = threading.Lock()

    def inc(self) -> None:
        with self._lock:
            self.calls += 1


#: The counter instance; read/reset through repro.complexity.oracles.
GLOBAL_SAT_CALLS = _GlobalCounter()


class SatSolver:
    """Incremental SAT solving over named atoms (the NP oracle).

    Args:
        max_conflicts: optional conflict budget forwarded to the CDCL core.
        engine: ``"cdcl"`` (default) or ``"dpll"`` (reference; ignores
            incrementality optimizations but honors the same interface).
    """

    def __init__(
        self, max_conflicts: Optional[int] = None, engine: str = "cdcl"
    ):
        if engine not in ("cdcl", "dpll"):
            raise SolverError(f"unknown engine {engine!r}")
        self.engine = engine
        self.variables = VariableMap()
        self._core = CdclSolver(max_conflicts=max_conflicts)
        self._clauses: List[List[int]] = []  # mirror for the DPLL engine
        self._known_unsat = False
        self._last_model: Optional[set] = None

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------
    def add_int_clause(self, literals: Iterable[int]) -> None:
        """Assert a clause given as integer literals (advanced use)."""
        clause = list(literals)
        self._clauses.append(clause)
        if not self._core.add_clause(clause):
            self._known_unsat = True

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Assert a symbolic clause (a disjunction of literals)."""
        self.add_int_clause(
            self.variables.int_literal(l) for l in literals
        )

    def add_cnf(self, cnf: Cnf) -> None:
        """Assert every clause of a symbolic CNF."""
        for clause in cnf:
            self.add_clause(clause)

    def add_database(self, db: DisjunctiveDatabase) -> None:
        """Assert the classical clause form of every database clause and
        register the whole vocabulary (so models range over it).

        The clause translation is memoized process-wide: every decision
        procedure builds fresh solvers for the same database over and
        over, so the literal form is computed once per database.
        """
        from ..engine.cache import classical_clauses_for

        for atom in sorted(db.vocabulary):
            self.variables.intern(atom)
            self._core.ensure_var(self.variables.number(atom))
        for literals in classical_clauses_for(db):
            self.add_clause(literals)

    def add_database_clause(self, clause: Clause) -> None:
        """Assert one database clause."""
        self.add_clause(clause.to_classical_literals())

    def add_formula(self, formula: Formula, positive: bool = True) -> None:
        """Assert ``formula`` (or its negation) via Tseitin encoding.

        Fresh definition atoms are allocated away from all atoms known to
        this solver.
        """
        clauses, root, _aux = tseitin(formula, avoid=self.variables.atoms())
        self.add_cnf(clauses)
        self.add_clause([root if positive else -root])

    def add_unit(self, literal: Literal) -> None:
        """Assert a single literal."""
        self.add_clause([literal])

    def remove_clauses_with(self, literal: Literal) -> int:
        """Physically delete every asserted clause containing
        ``literal`` — input and learned alike.  Only sound when the
        literal is already asserted as a unit (every deleted clause is
        satisfied forever); the incremental layer calls this when a
        scope retires so its guarded clauses stop clogging watch lists.
        Returns the number of clauses removed from the CDCL store."""
        number = self.variables.int_literal(literal)
        self._clauses = [c for c in self._clauses if number not in c]
        if self._known_unsat:
            return 0
        return self._core.remove_clauses_with(number)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[Literal] = ()) -> bool:
        """Decide satisfiability under the given assumption literals.

        Each call ticks the active :class:`~repro.runtime.budget.
        BudgetScope` (SAT-call ceiling, deadline) and consults the active
        :class:`~repro.runtime.faults.FaultPlan` (latency, transient
        faults) before any search work happens, so a budgeted caller is
        cut off between oracle calls and an injected fault costs no
        solver state.
        """
        GLOBAL_SAT_CALLS.inc()
        observe_sat_call()
        assumed = [self.variables.int_literal(l) for l in assumptions]
        if self._known_unsat:
            self._last_model = None
            return False
        if self.engine == "dpll":
            unit_clauses = [[l] for l in assumed]
            model = solve_dpll(self._clauses + unit_clauses)
            self._last_model = model
            return model is not None
        satisfiable = self._core.solve(assumed)
        self._last_model = self._core.model() if satisfiable else None
        return satisfiable

    def model(
        self, restrict_to: Optional[Iterable[str]] = None
    ) -> Interpretation:
        """The model found by the last successful :meth:`solve`.

        Args:
            restrict_to: atoms to project onto (e.g. the database
                vocabulary, dropping Tseitin definitional atoms).  Defaults
                to every interned atom.
        """
        if self._last_model is None:
            raise SolverError("no model available; call solve() first")
        if restrict_to is None:
            atoms = self.variables.atoms()
        else:
            atoms = [a for a in restrict_to if a in self.variables]
        true_vars = self._last_model
        return Interpretation(
            a for a in atoms if self.variables.number(a) in true_vars
        )

    def reset_phases(self) -> None:
        """Reset the CDCL core's saved phases to the default false bias
        (see :meth:`repro.sat.cdcl.CdclSolver.reset_phases`)."""
        self._core.reset_phases()

    def literal_value(self, literal: Literal) -> int:
        """The literal's current level-0 value in the CDCL core:
        1 true, -1 false, 0 unassigned.  An atom the core has never
        allocated (e.g. a scope selector that guarded no clause) is
        unassigned."""
        number = self.variables.int_literal(literal)
        if abs(number) > self._core.num_vars:
            return 0
        return self._core.value(number)

    def stats(self) -> Dict[str, int]:
        """Search statistics of the CDCL core."""
        return self._core.stats.snapshot()


# ----------------------------------------------------------------------
# One-shot helpers
# ----------------------------------------------------------------------
def is_satisfiable(cnf: Cnf, engine: str = "cdcl") -> bool:
    """One-shot satisfiability of a symbolic CNF."""
    solver = SatSolver(engine=engine)
    solver.add_cnf(cnf)
    return solver.solve()


def database_is_consistent(db: DisjunctiveDatabase, engine: str = "cdcl") -> bool:
    """Whether the database has at least one classical model."""
    solver = SatSolver(engine=engine)
    solver.add_database(db)
    return solver.solve()


def find_model(
    db: DisjunctiveDatabase, engine: str = "cdcl"
) -> Optional[Interpretation]:
    """Some classical model of the database, or ``None``."""
    solver = SatSolver(engine=engine)
    solver.add_database(db)
    if not solver.solve():
        return None
    return solver.model(restrict_to=db.vocabulary)


def formula_is_satisfiable(formula: Formula) -> bool:
    """One-shot satisfiability of a formula (via one SAT call)."""
    solver = SatSolver()
    solver.add_formula(formula)
    return solver.solve()


def formula_is_valid(formula: Formula) -> bool:
    """Classical validity of a formula (via one UNSAT call)."""
    solver = SatSolver()
    solver.add_formula(formula, positive=False)
    return not solver.solve()


def entails_classically(db: DisjunctiveDatabase, formula: Formula) -> bool:
    """Classical entailment ``DB |= F`` (truth in all classical models),
    decided by one UNSAT call on ``DB ∧ ¬F``."""
    solver = SatSolver()
    solver.add_database(db)
    solver.add_formula(formula, positive=False)
    return not solver.solve()
