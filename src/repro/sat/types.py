"""Internal SAT representations.

The solvers work on integer literals in the usual DIMACS convention:
variables are positive integers ``1..n`` and a literal is ``v`` or ``-v``.
:class:`VariableMap` interns atom names to variable numbers so that the
symbolic layer (:mod:`repro.logic`) and the solvers can talk to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from ..errors import SolverError
from ..logic.atoms import Literal

IntClause = List[int]


class VariableMap:
    """A bijection between atom names and variable numbers ``1..n``."""

    __slots__ = ("_by_name", "_by_number")

    def __init__(self) -> None:
        self._by_name: Dict[str, int] = {}
        self._by_number: List[str] = []

    def __len__(self) -> int:
        return len(self._by_number)

    def __contains__(self, atom: str) -> bool:
        return atom in self._by_name

    def intern(self, atom: str) -> int:
        """The variable number for ``atom``, allocating it if new."""
        number = self._by_name.get(atom)
        if number is None:
            number = len(self._by_number) + 1
            self._by_name[atom] = number
            self._by_number.append(atom)
        return number

    def number(self, atom: str) -> int:
        """The variable number for an already-interned atom."""
        try:
            return self._by_name[atom]
        except KeyError as exc:
            raise SolverError(f"atom {atom!r} was never interned") from exc

    def atom(self, number: int) -> str:
        """The atom name for variable ``number``."""
        index = abs(number) - 1
        if not 0 <= index < len(self._by_number):
            raise SolverError(f"unknown variable number {number}")
        return self._by_number[index]

    def int_literal(self, literal: Literal) -> int:
        """Encode a symbolic literal as an integer literal."""
        number = self.intern(literal.atom)
        return number if literal.positive else -number

    def symbolic_literal(self, int_literal: int) -> Literal:
        """Decode an integer literal to a symbolic literal."""
        return Literal(self.atom(int_literal), int_literal > 0)

    def atoms(self) -> List[str]:
        """All interned atoms in allocation order."""
        return list(self._by_number)


@dataclass
class SolverStats:
    """Search statistics accumulated by a solver instance."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    solve_calls: int = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (for reports)."""
        return {
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "solve_calls": self.solve_calls,
        }


def check_int_clause(clause: Sequence[int]) -> IntClause:
    """Validate and normalize an integer clause (dedupe, reject 0)."""
    seen: Set[int] = set()
    result: IntClause = []
    for literal in clause:
        if literal == 0:
            raise SolverError("literal 0 is not allowed in a clause")
        if literal not in seen:
            seen.add(literal)
            result.append(literal)
    return result


def clause_is_tautology(clause: Iterable[int]) -> bool:
    """Whether the clause contains a complementary pair."""
    literals = set(clause)
    return any(-l in literals for l in literals)
