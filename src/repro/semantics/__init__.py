"""The ten disjunctive-database semantics studied by the paper.

Importing this package populates the registry in
:mod:`repro.semantics.base`; use :func:`get_semantics` /
:func:`infer` / :func:`infers_literal` / :func:`has_model` /
:func:`model_set` for the one-call API.
"""

from .base import (
    ENGINES,
    SEMANTICS,
    Semantics,
    get_semantics,
    has_model,
    infer,
    infers_literal,
    literal_formula,
    model_set,
    register,
    resolve_name,
)

# Importing the modules registers the classes.
from .gcwa import Gcwa, augmented_database, free_for_negation
from .ccwa import Ccwa
from .egcwa import Egcwa
from .ecwa import Ecwa, PartitionedSemantics
from .circumscription import Circumscription, CircumscriptionChecker
from .ddr import Ddr, possibly_true_atoms
from .pws import Pws, is_possible_model, possible_models_by_splits
from .stratification import (
    Stratification,
    is_stratified,
    require_stratification,
    stratify,
)
from .perf import Perf, PriorityRelation, is_perfect, preferable
from .icwa import Icwa, icwa_models_by_intersection, priority_levels
from .dsm import Dsm, is_stable_model, is_stable_model_brute
from .pdsm import Pdsm, is_partial_stable, is_partial_stable_brute
from .cwa import (
    Cwa,
    cwa_closure,
    cwa_consistent_linear,
    cwa_consistent_theta,
    cwa_free_atoms,
)
from .supported import (
    Supported,
    clark_completion,
    is_supported_model,
    is_tight,
)
from .wfs import well_founded_entails, well_founded_model
from .explain import (
    ClosureExplanation,
    CounterModelCertificate,
    Derivation,
    derivation_of,
    explain_closure_literal,
    explain_non_inference,
)
from .equivalence import (
    classical_difference_witness,
    classically_equivalent,
    difference_witness_under,
    equivalent_under,
)
from .state import (
    disjunctive_state,
    minimal_state_atoms,
    egcwa_closure_clauses,
    gcwa_closure_literals,
    state_atoms,
    wgcwa_closure_literals,
)

__all__ = [
    "ENGINES",
    "SEMANTICS",
    "Semantics",
    "get_semantics",
    "has_model",
    "infer",
    "infers_literal",
    "literal_formula",
    "model_set",
    "register",
    "resolve_name",
    "Gcwa",
    "augmented_database",
    "free_for_negation",
    "Ccwa",
    "Egcwa",
    "Ecwa",
    "PartitionedSemantics",
    "Circumscription",
    "CircumscriptionChecker",
    "Ddr",
    "possibly_true_atoms",
    "Pws",
    "is_possible_model",
    "possible_models_by_splits",
    "Stratification",
    "is_stratified",
    "require_stratification",
    "stratify",
    "Perf",
    "PriorityRelation",
    "is_perfect",
    "preferable",
    "Icwa",
    "icwa_models_by_intersection",
    "priority_levels",
    "Dsm",
    "is_stable_model",
    "is_stable_model_brute",
    "Pdsm",
    "is_partial_stable",
    "is_partial_stable_brute",
    "Cwa",
    "cwa_closure",
    "cwa_consistent_linear",
    "cwa_consistent_theta",
    "cwa_free_atoms",
    "ClosureExplanation",
    "CounterModelCertificate",
    "Derivation",
    "derivation_of",
    "explain_closure_literal",
    "explain_non_inference",
    "classical_difference_witness",
    "classically_equivalent",
    "difference_witness_under",
    "equivalent_under",
    "Supported",
    "clark_completion",
    "is_supported_model",
    "is_tight",
    "well_founded_entails",
    "well_founded_model",
    "disjunctive_state",
    "minimal_state_atoms",
    "egcwa_closure_clauses",
    "gcwa_closure_literals",
    "state_atoms",
    "wgcwa_closure_literals",
]
