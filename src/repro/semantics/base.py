"""Semantics interface and registry.

Every semantics studied by the paper is exposed as a class implementing
:class:`Semantics` with the paper's three decision problems:

* :meth:`Semantics.model_set` — the set of selected models (may be
  exponential; intended for inspection and tests),
* :meth:`Semantics.infers` — formula inference (truth in all selected
  models),
* :meth:`Semantics.infers_literal` — literal inference,
* :meth:`Semantics.has_model` — model existence under the semantics.

Each class offers an ``engine`` switch:

* ``"oracle"`` (default) — the SAT/Σ₂ᵖ-oracle-backed decision procedures
  realizing the paper's upper bounds,
* ``"brute"`` — explicit enumeration over ``2^|V|`` (or ``3^|V|``)
  interpretations, the ground truth used in cross-validation tests,
* ``"fresh"`` — the oracle procedures with throwaway SAT solvers: every
  oracle call builds its own solver instead of drawing a warm one from
  the process-wide :data:`~repro.sat.incremental.SOLVER_POOL`.  The
  differential-testing twin of ``"oracle"`` (same algorithms, no reuse),
  and the right choice when solver state must not leak between queries
  (e.g. measuring cold-start costs),
* ``"cached"`` — the oracle engine behind the process-wide memo cache
  (:mod:`repro.engine`); available through :func:`get_semantics` and the
  session layer, which wrap the oracle instance in a
  :class:`~repro.engine.cached.CachedSemantics` façade.

The registry maps names and historical aliases (``"circ"``, ``"wgcwa"``,
``"pms"``, ...) to classes; :func:`get_semantics` instantiates by name and
the module-level helpers :func:`infer` / :func:`infers_literal` /
:func:`has_model` / :func:`model_set` provide a one-call API.
"""

from __future__ import annotations

import contextlib
import functools
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Type, Union

from ..errors import ReproError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not, Var
from ..logic.interpretation import Interpretation
from ..obs import trace as _trace
from ..obs.accounting import observe as _observe
from ..obs.metrics import METRICS

#: Valid engine names accepted by :func:`get_semantics`.
ENGINES = (
    "oracle", "fresh", "brute", "cached", "resilient", "planned", "kernel"
)

#: Engines concrete semantics classes implement directly ("cached",
#: "resilient", "planned" and "kernel" are wrappers realized by
#: :mod:`repro.engine` / :mod:`repro.analysis`).  "fresh" runs the
#: oracle decision procedures with pooling disabled.
CONCRETE_ENGINES = ("oracle", "fresh", "brute")

#: Engine names realized as wrapper façades over a concrete instance
#: ("kernel" wraps the brute enumerator; the rest wrap oracle).
WRAPPER_ENGINES = ("cached", "resilient", "planned", "kernel")


#: The shared entry points every semantics class exposes; these are the
#: observability seams — wrapping them instruments all semantics modules
#: (and the engine wrappers, which subclass :class:`Semantics`) at once.
ENTRY_POINTS = (
    "model_set", "infers", "infers_literal", "infers_brave", "has_model",
)

_ENTRY_CALLS = METRICS.counter(
    "repro_semantics_calls_total",
    "Semantics entry-point invocations",
    labelnames=("method",),
)


def _instrumented(method: str, fn):
    """Wrap one entry point with metrics + (when enabled) a span.

    The disabled path is deliberately thin: one pre-bound counter
    increment and an ``is_noop`` check, then straight into ``fn`` — no
    span objects, no attribute dicts, no observation windows.
    """
    counter = _ENTRY_CALLS.labels(method=method)

    @functools.wraps(fn)
    def wrapper(self, db, *args, **kwargs):
        counter.inc()
        tracer = _trace.active_tracer()
        if tracer.is_noop:
            return fn(self, db, *args, **kwargs)
        with tracer.span(
            f"semantics.{method}",
            semantics=self.name,
            engine=self.engine,
            atoms=len(db.vocabulary),
        ) as span:
            with _observe() as window:
                result = fn(self, db, *args, **kwargs)
            span.set_attributes(
                sat_calls=window.np_calls,
                sigma2_dispatches=window.sigma2_dispatches,
                nodes=window.nodes,
                max_sigma2_depth=window.max_sigma2_depth,
            )
            return result

    wrapper._obs_wrapped = True
    return wrapper


def _instrument_class(cls) -> None:
    """Wrap the entry points a class defines in its own ``__dict__``."""
    for method in ENTRY_POINTS:
        fn = cls.__dict__.get(method)
        if (
            fn is None
            or getattr(fn, "_obs_wrapped", False)
            or getattr(fn, "__isabstractmethod__", False)
        ):
            continue
        setattr(cls, method, _instrumented(method, fn))


@contextlib.contextmanager
def uninstrumented():
    """Swap every instrumented entry point back to its original.

    Exists solely for A/B overhead measurement (``bench_runner.py
    --overhead-check``): the instrumented-but-disabled path is compared
    against the genuinely bare methods.  Restores the wrappers on exit;
    not thread-safe, never use while queries run concurrently.
    """
    patched = []
    stack: list = [Semantics]
    seen = set()
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        for method in ENTRY_POINTS:
            fn = cls.__dict__.get(method)
            if fn is not None and getattr(fn, "_obs_wrapped", False):
                patched.append((cls, method, fn))
                setattr(cls, method, fn.__wrapped__)
    try:
        yield
    finally:
        for cls, method, fn in patched:
            setattr(cls, method, fn)


def literal_formula(literal: Literal) -> Formula:
    """A literal as a formula."""
    return Var(literal.atom) if literal.positive else Not(Var(literal.atom))


def ground_query(db: DisjunctiveDatabase, formula: Formula) -> Formula:
    """Replace query atoms outside the database vocabulary by ``false``.

    Models range over the vocabulary, so a stray atom is false in every
    selected model; grounding it up front keeps the oracle engines (which
    would otherwise leave it as a free SAT variable) consistent with the
    model-based definition.
    """
    stray = formula.atoms() - db.vocabulary
    if not stray:
        return formula
    from ..qbf.formula import substitute

    return substitute(formula, {atom: False for atom in stray})


class Semantics(ABC):
    """Base class for all disjunctive database semantics.

    Args:
        engine: ``"oracle"`` or ``"brute"`` (see module docstring).
    """

    #: Canonical lowercase name (e.g. ``"gcwa"``).
    name: str = ""
    #: Historical aliases also accepted by the registry.
    aliases: Tuple[str, ...] = ()
    #: Human-readable description for reports.
    description: str = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        _instrument_class(cls)

    def __init__(self, engine: str = "oracle"):
        if engine in WRAPPER_ENGINES:
            raise ReproError(
                f"engine={engine!r} is a wrapper; obtain it via "
                f"get_semantics(name, engine={engine!r}) or a session"
            )
        if engine not in CONCRETE_ENGINES:
            raise ReproError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine = engine

    @property
    def sat_reuse(self) -> bool:
        """Whether this instance's oracle calls may draw warm solvers
        from the process-wide pool (``False`` under ``engine="fresh"``)."""
        return self.engine != "fresh"

    # ------------------------------------------------------------------
    # Applicability
    # ------------------------------------------------------------------
    def validate(self, db: DisjunctiveDatabase) -> None:
        """Raise if ``db`` lies outside this semantics' syntactic class.

        The default accepts everything; semantics defined only for
        deductive or stratified databases override this.
        """

    # ------------------------------------------------------------------
    # Memoization support
    # ------------------------------------------------------------------
    def cache_params(self) -> Tuple:
        """The hashable constructor parameters that distinguish this
        instance's answers — part of every memo-cache key built by the
        cached engine.  Parameterless semantics return ``()``;
        partition-parameterized semantics override (e.g. CCWA/ECWA return
        their ``(P, Z)`` blocks) so distinct parameterizations never share
        cache entries.
        """
        return ()

    # ------------------------------------------------------------------
    # The three decision problems
    # ------------------------------------------------------------------
    @abstractmethod
    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        """The set of models selected by this semantics."""

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        """Formula inference: truth of ``formula`` in every selected model.

        Default implementation materializes :meth:`model_set`; oracle
        engines override this with decision procedures that do not.
        """
        self.validate(db)
        return all(m.satisfies(formula) for m in self.model_set(db))

    def infers_literal(
        self, db: DisjunctiveDatabase, literal: Union[Literal, str]
    ) -> bool:
        """Literal inference.  Accepts a :class:`Literal` or a string such
        as ``"a"`` / ``"not a"``."""
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        return self.infers(db, literal_formula(literal))

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        """Model existence under this semantics."""
        self.validate(db)
        return bool(self.model_set(db))

    def infers_brave(
        self, db: DisjunctiveDatabase, formula: Formula
    ) -> bool:
        """*Brave* (credulous) inference: truth of ``formula`` in at
        least one selected model — the companion mode to the cautious
        :meth:`infers` (beyond the paper's tables, which are cautious
        throughout).  Default: materialize :meth:`model_set`; oracle
        engines override where a witness search is available.
        """
        self.validate(db)
        formula = ground_query(db, formula)
        return any(m.satisfies(formula) for m in self.model_set(db))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"{type(self).__name__}(engine={self.engine!r})"


# The base class itself defines the default implementations of several
# entry points (subclasses only re-wrap the ones they override).
_instrument_class(Semantics)


#: The registry of semantics classes by canonical name.
SEMANTICS: Dict[str, Type[Semantics]] = {}
_ALIASES: Dict[str, str] = {}


def register(cls: Type[Semantics]) -> Type[Semantics]:
    """Class decorator adding a semantics to the registry."""
    if not cls.name:
        raise ReproError(f"{cls.__name__} has no name")
    if cls.name in SEMANTICS:
        raise ReproError(f"duplicate semantics name {cls.name!r}")
    SEMANTICS[cls.name] = cls
    for alias in cls.aliases:
        if alias in _ALIASES or alias in SEMANTICS:
            raise ReproError(f"duplicate semantics alias {alias!r}")
        _ALIASES[alias] = cls.name
    return cls


def resolve_name(name: str) -> str:
    """Canonicalize a semantics name or alias."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in SEMANTICS:
        known = ", ".join(sorted(SEMANTICS) + sorted(_ALIASES))
        raise ReproError(f"unknown semantics {name!r}; known: {known}")
    return key


def get_semantics(name: str, **kwargs) -> Semantics:
    """Instantiate a semantics by (alias-)name.

    Keyword arguments are forwarded to the class constructor — e.g.
    ``get_semantics("ecwa", p=..., z=...)`` for partition-parameterized
    semantics, or ``engine="brute"`` for the enumeration engine.

    ``engine="cached"`` returns the oracle instance wrapped in the
    process-wide memoizing engine
    (:class:`~repro.engine.cached.CachedSemantics`).

    ``engine="planned"`` returns the oracle instance wrapped in the
    fragment planner
    (:class:`~repro.analysis.planner.PlannedSemantics`): every query is
    dispatched to the cheapest procedure sound for the database's
    syntactic fragment (Horn ⇒ zero-SAT unit propagation,
    head-cycle-free ⇒ NP-level foundedness machine, otherwise the
    oracle procedures verbatim).

    ``engine="kernel"`` returns the brute instance wrapped in the
    differential kernel leg
    (:class:`~repro.engine.KernelLegSemantics`): every entry point runs
    on the interpretation representation *opposite* to the ambient one
    (bitset masks vs. pure frozensets), cross-checking the two kernel
    code paths against each other.

    ``engine="resilient"`` returns the oracle instance wrapped in the
    deadline-governed, fault-tolerant engine
    (:class:`~repro.engine.resilient.ResilientSemantics`), with the brute
    instance as the degraded-mode fallback.  The wrapper-only keyword
    arguments ``budget``, ``retry`` and ``fallback`` configure it (see
    :class:`~repro.runtime.budget.Budget` and
    :class:`~repro.engine.resilient.RetryPolicy`); they are rejected for
    other engines.
    """
    engine = kwargs.get("engine")
    wrapper_kwargs = {
        key: kwargs.pop(key)
        for key in ("budget", "retry", "fallback")
        if key in kwargs
    }
    if wrapper_kwargs and engine != "resilient":
        raise ReproError(
            f"{sorted(wrapper_kwargs)} only apply to engine='resilient'"
        )
    if engine == "cached":
        from ..engine.cached import CachedSemantics

        inner = SEMANTICS[resolve_name(name)](
            **{**kwargs, "engine": "oracle"}
        )
        return CachedSemantics(inner)
    if engine == "planned":
        from ..analysis.planner import PlannedSemantics

        inner = SEMANTICS[resolve_name(name)](
            **{**kwargs, "engine": "oracle"}
        )
        return PlannedSemantics(inner)
    if engine == "kernel":
        from ..engine import KernelLegSemantics

        inner = SEMANTICS[resolve_name(name)](
            **{**kwargs, "engine": "brute"}
        )
        return KernelLegSemantics(inner)
    if engine == "resilient":
        from ..engine.resilient import ResilientSemantics

        cls = SEMANTICS[resolve_name(name)]
        base_kwargs = {k: v for k, v in kwargs.items() if k != "engine"}
        inner = cls(**{**base_kwargs, "engine": "oracle"})
        if "fallback" not in wrapper_kwargs:
            # The brute enumerator shares no SAT-call fault surface with
            # the oracle engine, so it is the natural degraded mode.
            wrapper_kwargs["fallback"] = cls(
                **{**base_kwargs, "engine": "brute"}
            )
        return ResilientSemantics(inner, **wrapper_kwargs)
    return SEMANTICS[resolve_name(name)](**kwargs)


# ----------------------------------------------------------------------
# One-call convenience API
# ----------------------------------------------------------------------
def infer(
    db: DisjunctiveDatabase,
    formula: Formula,
    semantics: str = "egcwa",
    **kwargs,
) -> bool:
    """Does ``db`` infer ``formula`` under the named semantics?"""
    return get_semantics(semantics, **kwargs).infers(db, formula)


def infers_literal(
    db: DisjunctiveDatabase,
    literal: Union[Literal, str],
    semantics: str = "egcwa",
    **kwargs,
) -> bool:
    """Does ``db`` infer the literal under the named semantics?"""
    return get_semantics(semantics, **kwargs).infers_literal(db, literal)


def has_model(
    db: DisjunctiveDatabase, semantics: str = "egcwa", **kwargs
) -> bool:
    """Does ``db`` have a model under the named semantics?"""
    return get_semantics(semantics, **kwargs).has_model(db)


def model_set(
    db: DisjunctiveDatabase, semantics: str = "egcwa", **kwargs
) -> FrozenSet[Interpretation]:
    """The models that the named semantics selects for ``db``."""
    return get_semantics(semantics, **kwargs).model_set(db)
