"""CCWA — the Careful Closed World Assumption.

Gelfond & Przymusinska [11].  Generalizes GCWA to a partition
``⟨P; Q; Z⟩``: the closure adds ``¬x`` for each ``x ∈ P`` such that
``MM(DB; P; Z) |= ¬x``.  Model-theoretic characterization (paper,
Section 3.1)::

    CCWA(DB) = {M ∈ M(DB) : ∀x ∈ P. MM(DB;P;Z) |= ¬x  ⟹  M |= ¬x}

GCWA is the special case ``Q = Z = ∅``.

Complexity (paper, Tables 1 and 2): literal and formula inference are
Π₂ᵖ-hard and in P^{Σ₂ᵖ}[O(log n)] (the O(log n)-call algorithm is in
:mod:`repro.complexity.machines`); model existence as for GCWA.
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Var
from ..logic.interpretation import Interpretation
from ..models.enumeration import all_models, pz_minimal_models_brute
from ..sat.enumerate import iter_models
from ..sat.incremental import pooled_scope
from ..sat.minimal import PZMinimalModelSolver
from ..sat.solver import database_is_consistent
from .ecwa import PartitionedSemantics
from .base import ground_query, register
from .gcwa import augmented_database


@register
class Ccwa(PartitionedSemantics):
    """Careful CWA: negate ``P``-atoms false in all ``(P;Z)``-minimal
    models."""

    name = "ccwa"
    aliases = ("careful-cwa",)
    description = "Careful CWA (Gelfond & Przymusinska)"

    def free_atoms(self, db: DisjunctiveDatabase) -> FrozenSet[str]:
        """``{x ∈ P : MM(DB;P;Z) |= ¬x}`` — the atoms the closure negates."""
        p, q, z = self.partition(db)
        if self.engine == "brute":
            minimal = pz_minimal_models_brute(db, p, z)
            return frozenset(
                x for x in p if not any(x in m for m in minimal)
            )
        # One Σ₂ᵖ dispatch per P-atom, asked as a single batched
        # incremental sweep sharing one solver scope.
        with PZMinimalModelSolver(
            db, p, z, reuse=self.sat_reuse
        ) as solver:
            return solver.free_p_atoms_sweep()

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        free = self.free_atoms(db)
        if self.engine == "brute":
            return frozenset(m for m in all_models(db) if not (m & free))
        augmented = augmented_database(db, free)
        return frozenset(
            iter_models(
                augmented, project=db.vocabulary, reuse=self.sat_reuse
            )
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        augmented = augmented_database(db, self.free_atoms(db))
        with pooled_scope(
            augmented, context=("db",), reuse=self.sat_reuse
        ) as sat:
            sat.add_formula(formula, positive=False)
            return not sat.solve()

    def infers_literal(self, db: DisjunctiveDatabase, literal) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        if self.engine == "brute":
            return super().infers_literal(db, literal)
        p, _q, _z = self.partition(db)
        if not literal.positive and literal.atom in p:
            # ¬x for x ∈ P: exactly the closure test MM(DB;P;Z) |= ¬x
            # (one Σ₂ᵖ-primitive query).
            with PZMinimalModelSolver(
                db, p, self.z, reuse=self.sat_reuse
            ) as solver:
                return (
                    solver.find_minimal_satisfying(Var(literal.atom))
                    is None
                )
        return self.infers(db, Var(literal.atom) if literal.positive
                           else ~Var(literal.atom))

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            return True
        if self.engine == "brute":
            return super().has_model(db)
        # MM(DB;P;Z) ⊆ CCWA(DB): nonempty iff DB satisfiable.
        return database_is_consistent(db)
