"""CIRC — propositional circumscription (Lifschitz [14]).

For a partition ``⟨P; Q; Z⟩``::

    Circ(DB; P; Z) = DB[P; Z] ∧ ¬∃P' Z' (DB[P'; Z'] ∧ P' < P)

The paper notes ``CIRC_{P;Z}(DB) = MM(DB; P; Z) = ECWA_{P;Z}(DB)`` in the
finite propositional case.  This module implements circumscription
*directly from Lifschitz's second-order formula* — the inner ``∃P'Z'`` is
realized by renaming ``P ∪ Z`` to fresh atoms and asking the SAT oracle —
so that the equivalence with ECWA is something the test suite *verifies*
rather than assumes.
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation
from ..logic.transform import rename_atoms
from ..runtime.budget import check_deadline
from ..sat.enumerate import iter_models
from ..sat.incremental import pooled_scope
from .base import ground_query, register
from .ecwa import PartitionedSemantics


def _primed(atom: str) -> str:
    return atom + "__prime"


def circumscription_axiom(db: DisjunctiveDatabase, p, z, model):
    """Lifschitz's axiom for a concrete model, as an explicit 2QBF.

    ``M |= Circ(DB; P; Z)`` iff ``M |= DB`` and the sentence
    ``∀P' Z' . ¬(DB[P'; Z'] ∧ P' < P(M))`` is valid, where ``Q`` is
    instantiated to ``M``'s values.  Returns that ``∀∃``-free sentence as
    a :class:`~repro.qbf.formula.QBF2` with an empty existential block —
    decidable by the package's 2QBF solver, giving a *third* independent
    route to CIRC (besides the SAT-query checker here and the
    ``(P;Z)``-minimality machinery), cross-validated in the tests.
    """
    from ..logic.formula import Not as FNot, Var as FVar, conj
    from ..qbf.formula import QBF2, substitute

    p = frozenset(p)
    z = frozenset(z)
    q = frozenset(db.vocabulary) - p - z
    model = frozenset(model)
    renaming = {a: _primed(a) for a in p | z}
    renamed_db = rename_atoms(db, renaming)
    matrix_parts = [renamed_db.to_formula()]
    # P' <= P(M): primed copies of M-false P-atoms are false.
    for atom in sorted(p - model):
        matrix_parts.append(FNot(FVar(_primed(atom))))
    # ... strictly below: some M-true P-atom dropped.
    p_true = sorted(p & model)
    from ..logic.formula import disj

    matrix_parts.append(
        disj([FNot(FVar(_primed(a))) for a in p_true])
    )
    # Q is shared: substitute M's values.
    matrix = substitute(
        conj(matrix_parts),
        {a: (a in model) for a in q},
    )
    universal = frozenset(_primed(a) for a in p | z)
    # ∀P'Z' . ¬(smaller-model matrix): encode as ∀X ∃∅ . ¬matrix.
    return QBF2(False, universal, frozenset(), FNot(matrix))


class CircumscriptionChecker:
    """Decides ``M |= Circ(DB; P; Z)`` by Lifschitz's formula.

    The second-order witness ``(P', Z')`` becomes a renamed copy of the
    database over primed atoms (``Q`` stays shared), with ``P' ≤ P``
    enforced against the concrete model ``M`` and strictness as a clause.
    """

    def __init__(self, db: DisjunctiveDatabase, p, z, reuse: bool = True):
        self.db = db
        self.reuse = reuse
        self.p = frozenset(p)
        self.z = frozenset(z)
        self.q = frozenset(db.vocabulary) - self.p - self.z
        db.check_partition(self.p, self.q, self.z)
        renaming = {a: _primed(a) for a in self.p | self.z}
        self.renamed_db = rename_atoms(db, renaming)
        self.sat_calls = 0

    def is_circumscribed(self, model: Interpretation) -> bool:
        """Whether ``model`` satisfies the circumscription axiom."""
        if not self.db.is_model(model):
            return False
        # The renamed database is the permanent theory; everything tied
        # to the concrete model M lives in one retractable scope.
        with pooled_scope(
            self.renamed_db, context=("db",), reuse=self.reuse
        ) as sat:
            # Q is shared between the copies: fix it to M's values.
            for atom in sorted(self.q):
                sat.add_unit(
                    Literal.pos(atom) if atom in model else Literal.neg(atom)
                )
            # P' ≤ P(M): primed P-atoms false wherever M makes them false.
            p_true = sorted(a for a in self.p if a in model)
            for atom in sorted(self.p):
                if atom not in model:
                    sat.add_unit(Literal.neg(_primed(atom)))
            # Strictness P' < P: some true P-atom of M is false in the
            # copy.
            if not p_true:
                return True  # nothing below the empty P-part
            sat.add_clause([Literal.neg(_primed(a)) for a in p_true])
            self.sat_calls += 1
            return not sat.solve()


@register
class Circumscription(PartitionedSemantics):
    """Circumscription, implemented from the second-order definition."""

    name = "circ"
    aliases = ("circumscription",)
    description = "Propositional circumscription (Lifschitz)"

    def _checker(self, db: DisjunctiveDatabase) -> CircumscriptionChecker:
        p, _q, z = self.partition(db)
        return CircumscriptionChecker(db, p, z, reuse=self.sat_reuse)

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        checker = self._checker(db)
        if self.engine == "brute":
            from ..models.enumeration import all_models

            return frozenset(
                m for m in all_models(db) if checker.is_circumscribed(m)
            )
        return frozenset(
            m
            for m in iter_models(
                db, project=db.vocabulary, reuse=self.sat_reuse
            )
            if checker.is_circumscribed(m)
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        checker = self._checker(db)
        p, q, _z = self.partition(db)
        pq = sorted(p | q)
        # Guess-and-check: candidates are models of DB ∧ ¬F; whether a
        # model is circumscribed depends only on its P ∪ Q part, so failed
        # candidates are blocked on that projection.
        with pooled_scope(
            db, context=("db",), reuse=self.sat_reuse
        ) as searcher:
            searcher.add_formula(Not(formula))
            while True:
                check_deadline()
                if not searcher.solve():
                    return True
                candidate = searcher.model(restrict_to=db.vocabulary)
                if checker.is_circumscribed(candidate):
                    return False
                searcher.add_clause(
                    [
                        Literal.neg(a) if a in candidate else Literal.pos(a)
                        for a in pq
                    ]
                )
