"""CWA — Reiter's Closed World Assumption [22].

The paper opens Section 3.1 with it: ``CWA(DB)`` adds ``¬x`` for every
atom ``x`` with ``M(DB) ⊭ x`` (not classically entailed).  On disjunctive
information this closure is typically *inconsistent* — from ``a | b``
neither atom is entailed, both get negated, and nothing satisfies all
three — which is exactly why Minker introduced the GCWA.

The paper also remarks that deciding whether ``CWA(DB)`` is nonempty
(consistent) is coNP-hard and in ``P^{NP}[O(log n)]``, but not in
``coDᵖ`` unless the polynomial hierarchy collapses.  Both directions are
made executable here:

* :func:`cwa_consistent_linear` — the direct ``|V| + 1`` NP-call
  procedure;
* :func:`cwa_consistent_theta` — the ``O(log |V|)``-NP-call binary-search
  machine (the one-level-down analogue of the Θ algorithm the paper uses
  for GCWA/CCWA formula inference, and the same style as [7]): binary
  search for ``k* = |{x : DB ⊬ x}|`` using the k-fold-copy query "are
  there ``k`` distinct atoms, each with a countermodel?", then one final
  query for a model of DB falsifying all of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List

from ..logic.atoms import Literal
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Var
from ..logic.interpretation import Interpretation
from ..logic.transform import rename_atoms
from ..sat.enumerate import iter_models
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register
from .gcwa import augmented_database


def cwa_free_atoms(
    db: DisjunctiveDatabase, reuse: bool = True
) -> FrozenSet[str]:
    """``{x : M(DB) ⊭ x}`` — the atoms Reiter's closure negates
    (one NP-oracle call per atom, all against one warm solver)."""
    free = set()
    with pooled_scope(db, context=("db",), reuse=reuse) as sat:
        for atom in sorted(db.vocabulary):
            if sat.solve([Literal.neg(atom)]):
                free.add(atom)
        # Inconsistent DB: entails everything, so nothing is free.
        if not free and not sat.solve():
            return frozenset()
    return frozenset(free)


def cwa_closure(
    db: DisjunctiveDatabase, reuse: bool = True
) -> DisjunctiveDatabase:
    """``CWA(DB) = DB ∪ {¬x : x free}`` as a database."""
    return augmented_database(db, cwa_free_atoms(db, reuse=reuse))


def cwa_consistent_linear(
    db: DisjunctiveDatabase, reuse: bool = True
) -> "tuple[bool, int]":
    """Consistency of the closure with ``|V| + 1`` NP calls.

    Returns ``(consistent, np_calls)``.
    """
    calls = 0
    free: List[str] = []
    with pooled_scope(db, context=("db",), reuse=reuse) as sat:
        for atom in sorted(db.vocabulary):
            calls += 1
            if sat.solve([Literal.neg(atom)]):
                free.append(atom)
        calls += 1
        consistent = sat.solve([Literal.neg(a) for a in free])
    return consistent, calls


@dataclass
class CwaThetaResult:
    """Outcome of the O(log n)-NP-call consistency machine."""

    consistent: bool
    free_count: int
    np_calls: int
    call_bound: int


def _copy(atom: str, index: int) -> str:
    return f"{atom}__w{index}"


def cwa_consistent_theta(
    db: DisjunctiveDatabase, reuse: bool = True
) -> CwaThetaResult:
    """Consistency of ``CWA(DB)`` with ``O(log |V|)`` NP-oracle calls.

    Query ``Q(k)``: one SAT instance over ``k`` disjoint renamed copies
    of DB plus selector variables asking for ``k`` distinct atoms, each
    false in its own copy's model — true iff at least ``k`` atoms are
    non-entailed.  Binary search pins ``k* = |free|``; the final query
    adds one more copy that must falsify all selected atoms
    simultaneously, i.e. a model of the closure.
    """
    atoms = sorted(db.vocabulary)
    n = len(atoms)
    calls = 0

    def install(k: int, with_closure_copy: bool):
        def setup(solver) -> None:
            for i in range(1, k + 1):
                solver.add_database(
                    rename_atoms(db, lambda a, i=i: _copy(a, i))
                )
            selectors = {
                (i, a): Literal.pos(f"__sel_{i}_{a}")
                for i in range(1, k + 1)
                for a in atoms
            }
            for i in range(1, k + 1):
                solver.add_clause([selectors[(i, a)] for a in atoms])
                for a in atoms:
                    # chosen atom is false in copy i
                    solver.add_clause(
                        [-selectors[(i, a)], Literal.neg(_copy(a, i))]
                    )
            for a in atoms:  # all-different
                for i in range(1, k + 1):
                    for j in range(i + 1, k + 1):
                        solver.add_clause(
                            [-selectors[(i, a)], -selectors[(j, a)]]
                        )
            if with_closure_copy:
                solver.add_database(rename_atoms(db, lambda a: _copy(a, 0)))
                for a in atoms:
                    # If a is selected anywhere, it must be false in
                    # copy 0.
                    for i in range(1, k + 1):
                        solver.add_clause(
                            [-selectors[(i, a)], Literal.neg(_copy(a, 0))]
                        )
                    # Closure also negates *unselected* atoms?  No:
                    # copy 0 must satisfy ¬x exactly for the free atoms
                    # = selected ones (|S| = k* forces S = free set),
                    # and atoms outside stay unconstrained — they are
                    # entailed, hence true in every model anyway.

        return setup

    def query(k: int, with_closure_copy: bool) -> bool:
        nonlocal calls
        calls += 1
        # The whole k-copy construction is the *permanent* theory of a
        # pooled solver keyed on (db, k, variant): the binary search and
        # repeated theta runs on the same database revisit the same keys.
        with pooled_scope(
            context=("cwa-theta", db, k, with_closure_copy),
            reuse=reuse,
            setup=install(k, with_closure_copy),
        ) as sat:
            return sat.solve()

    low, high = 0, n
    while low < high:
        mid = (low + high + 1) // 2
        if query(mid, with_closure_copy=False):
            low = mid
        else:
            high = mid - 1
    k_star = low

    if k_star == 0:
        # Nothing is negated; closure = DB, consistent iff DB is.
        calls += 1
        with pooled_scope(db, context=("db",), reuse=reuse) as sat:
            consistent = sat.solve()
    else:
        consistent = query(k_star, with_closure_copy=True)
    bound = (math.ceil(math.log2(n + 1)) if n else 0) + 1
    return CwaThetaResult(consistent, k_star, calls, bound)


@register
class Cwa(Semantics):  # lint: ok RPR005 -- baseline outside Tables 1/2
    """Reiter's CWA as a semantics (beyond the paper's tables; Section
    3.1 background).  The selected models are the models of the closure —
    at most one for consistent closures of nondisjunctive databases, and
    typically none for genuinely disjunctive ones."""

    name = "cwa"
    aliases = ("reiter", "closed-world")
    description = "Reiter's Closed World Assumption"

    def model_set(self, db: DisjunctiveDatabase):
        self.validate(db)
        if self.engine == "brute":
            from ..models.enumeration import all_models

            entailed = {
                x
                for x in db.vocabulary
                if all(x in m for m in all_models(db))
            }
            if not all_models(db):
                entailed = set(db.vocabulary)
            free = db.vocabulary - entailed
            return frozenset(
                m for m in all_models(db) if not (m & free)
            )
        closure = cwa_closure(db, reuse=self.sat_reuse)
        return frozenset(
            iter_models(closure, project=db.vocabulary, reuse=self.sat_reuse)
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        closure = cwa_closure(db, reuse=self.sat_reuse)
        with pooled_scope(
            closure, context=("db",), reuse=self.sat_reuse
        ) as sat:
            sat.add_formula(formula, positive=False)
            return not sat.solve()

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if self.engine == "brute":
            return super().has_model(db)
        consistent, _calls = cwa_consistent_linear(db, reuse=self.sat_reuse)
        return consistent
