"""DDR — the Disjunctive Database Rule of Ross & Topor [23],
equivalent to the Weak GCWA of Rajasekar, Lobo & Minker [21].

The closure adds ``¬x`` for every atom ``x`` that does not occur in the
fixpoint ``T_DB ↑ ω`` of derivable positive disjunctions (paper,
Section 3.2)::

    DDR(DB) = {M ∈ M(DB) : M |= ¬x for every x ∉ atoms(T_DB ↑ ω)}

``atoms(T_DB ↑ ω)`` is computable in polynomial time: an atom occurs in a
derivable disjunction iff it is derivable in the *Horn relaxation* of the
database (each clause ``a1|..|an :- B`` relaxed to the definite rules
``ai :- B``) — see :func:`possibly_true_atoms` for the proof sketch.

DDR is defined for disjunctive deductive databases (no negation); the
paper notes integrity clauses "are not respected by DDR" (Example 3.1) —
the fixpoint simply ignores them, but they still constrain the model set.

Complexity (paper, Tables 1 and 2):

* literal inference: in P without integrity clauses (Chan [5]); the
  tractable case is negative literals via the fixpoint, and for positive
  literals ``DDR(DB) |= x`` coincides with classical entailment for
  IC-free DDBs.  coNP-complete with integrity clauses.
* formula inference: coNP-complete in both regimes.
* model existence: O(1) without ICs; coNP-complete-ish check via one SAT
  call with ICs.
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import NotPositiveError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..sat.enumerate import iter_models
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register
from .gcwa import augmented_database


def possibly_true_atoms(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """``atoms(T_DB ↑ ω)`` — atoms occurring in some derivable positive
    disjunction, via the Horn-relaxation least fixpoint.

    Correctness: (⊆) every atom of a derivable disjunction
    ``H ∪ ⋃(Dj \\ {bj})`` is relaxation-derivable by induction (each body
    atom ``bj`` lies in the derivable ``Dj``); (⊇) if ``x`` is
    relaxation-derivable via ``x ∈ H``, ``H :- b1..bk`` with each ``bj``
    relaxation-derivable, then by induction each ``bj`` occurs in a
    derivable disjunction, so resolving them with the clause produces a
    derivable disjunction containing ``x``.

    Integrity clauses derive nothing and are ignored, exactly as in the
    paper's ``T_DB`` (hence Example 3.1).
    """
    if db.has_negation:
        raise NotPositiveError("DDR is defined for deductive databases only")
    derivable: set = set()
    changed = True
    pending = [c for c in db.clauses if not c.is_integrity]
    while changed:
        changed = False
        remaining = []
        for clause in pending:
            if clause.body_pos <= derivable:
                new_atoms = clause.head - derivable
                if new_atoms:
                    derivable |= new_atoms
                    changed = True
            else:
                remaining.append(clause)
        pending = remaining
    return frozenset(derivable)


@register
class Ddr(Semantics):
    """Disjunctive Database Rule (≡ Weak GCWA)."""

    name = "ddr"
    aliases = ("wgcwa", "weak-gcwa")
    description = "Disjunctive Database Rule (Ross & Topor) = WGCWA"

    def validate(self, db: DisjunctiveDatabase) -> None:
        if db.has_negation:
            raise NotPositiveError(
                "DDR is defined for deductive databases only"
            )

    def negated_atoms(self, db: DisjunctiveDatabase) -> FrozenSet[str]:
        """The atoms the closure makes false (polynomial time)."""
        return frozenset(db.vocabulary) - possibly_true_atoms(db)

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        negated = self.negated_atoms(db)
        if self.engine == "brute":
            from ..models.enumeration import all_models

            return frozenset(m for m in all_models(db) if not (m & negated))
        augmented = augmented_database(db, negated)
        return frozenset(
            iter_models(
                augmented, project=db.vocabulary, reuse=self.sat_reuse
            )
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        # coNP upper bound: polynomial fixpoint + one UNSAT call.
        augmented = augmented_database(db, self.negated_atoms(db))
        with pooled_scope(
            augmented, context=("db",), reuse=self.sat_reuse
        ) as sat:
            sat.add_formula(formula, positive=False)
            return not sat.solve()

    def infers_literal(self, db: DisjunctiveDatabase, literal) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        if self.engine == "brute":
            return super().infers_literal(db, literal)
        if not literal.positive and not db.has_integrity_clauses:
            # Table 1 tractable cell (Chan): for IC-free DDBs the set of
            # possibly-true atoms is itself a DDR model, so
            # DDR(DB) |= ¬x iff x is not possibly true.  Zero SAT calls.
            return literal.atom in self.negated_atoms(db)
        return super().infers_literal(db, literal)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if not db.has_integrity_clauses:
            return True  # the possibly-true set is always a DDR model
        if self.engine == "brute":
            return super().has_model(db)
        augmented = augmented_database(db, self.negated_atoms(db))
        with pooled_scope(
            augmented, context=("db",), reuse=self.sat_reuse
        ) as sat:
            return sat.solve()
