"""DSM — Disjunctive Stable Model semantics (Przymusinski [20]).

Generalizes the stable models of Gelfond & Lifschitz [10] to disjunctive
databases via the reduct ``DB^M`` (delete clauses whose negative body
meets ``M``; strip remaining negative literals)::

    DSM(DB) = {M : M ∈ MM(DB^M)}

Disjunctive stable models are minimal models of DB; on positive databases
``DSM(DB) = MM(DB)`` (the reduct is DB itself).

Complexity (paper, Section 5.2 and Tables 1 and 2): literal and formula
inference Π₂ᵖ-complete; model existence trivial for positive databases
and Σ₂ᵖ-complete in general (the guess is a model ``M``, the check —
``M ∈ MM(DB^M)`` — one NP-oracle call).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation, all_interpretations
from ..logic.transform import gl_reduct
from ..runtime.budget import check_deadline
from ..sat.incremental import pooled_scope
from ..sat.minimal import MinimalModelSolver
from .base import Semantics, ground_query, register


def is_stable_model(
    db: DisjunctiveDatabase,
    model: Interpretation,
    engine: str = "cdcl",
    reuse: bool = True,
) -> bool:
    """``M ∈ MM(DB^M)`` — the Σ₂ᵖ verifier's check (polynomial plus one
    NP-oracle call for minimality)."""
    model = Interpretation(model)
    reduct = gl_reduct(db, model)
    if not reduct.is_model(model):
        return False
    with MinimalModelSolver(reduct, engine=engine, reuse=reuse) as solver:
        return solver.is_minimal(model)


def is_stable_model_brute(
    db: DisjunctiveDatabase, model: Interpretation
) -> bool:
    """Reference stable check by explicit enumeration of the reduct's
    smaller models."""
    model = Interpretation(model)
    reduct = gl_reduct(db, model)
    if not reduct.is_model(model):
        return False
    return not any(
        reduct.is_model(n)
        for n in all_interpretations(db.vocabulary)
        if n < model
    )


@register
class Dsm(Semantics):
    """Disjunctive Stable Model semantics."""

    name = "dsm"
    aliases = ("stable", "disjunctive-stable")
    description = "Disjunctive Stable Models (Przymusinski)"

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        if self.engine == "brute":
            return frozenset(
                m
                for m in all_interpretations(db.vocabulary)
                if is_stable_model_brute(db, m)
            )
        return frozenset(self._iter_stable(db))

    def _iter_stable(
        self, db: DisjunctiveDatabase, condition: Optional[Formula] = None
    ) -> Iterator[Interpretation]:
        """Guess-and-check enumeration: stable models are models of DB, so
        candidates come from the SAT oracle; each is checked with one
        NP-oracle minimality call; exact blocking."""
        vocabulary = sorted(db.vocabulary)
        with pooled_scope(
            db, context=("db",), reuse=self.sat_reuse
        ) as searcher:
            if condition is not None:
                searcher.add_formula(condition)
            while True:
                check_deadline()
                if not searcher.solve():
                    return
                candidate = searcher.model(restrict_to=db.vocabulary)
                if is_stable_model(db, candidate, reuse=self.sat_reuse):
                    yield candidate
                searcher.add_clause(
                    [
                        Literal.neg(a) if a in candidate else Literal.pos(a)
                        for a in vocabulary
                    ]
                )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        for _counterexample in self._iter_stable(db, condition=Not(formula)):
            return False
        return True

    def infers_brave(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers_brave(db, formula)
        # Σ₂ᵖ witness search: a stable model satisfying the formula.
        for _witness in self._iter_stable(db, condition=formula):
            return True
        return False

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            return True  # DSM(DB) = MM(DB) ≠ ∅ for positive databases
        if self.engine == "brute":
            return super().has_model(db)
        for _model in self._iter_stable(db):
            return True
        return False
