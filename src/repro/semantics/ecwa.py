"""ECWA — the Extended Closed World Assumption.

Gelfond, Przymusinska & Przymusinski [12].  For a partition ``⟨P; Q; Z⟩``
of the vocabulary::

    ECWA_{P;Z}(DB) = MM(DB; P; Z)

— the models minimal when ``P`` is minimized, ``Q`` is fixed and ``Z``
floats.  ``EGCWA`` is the special case ``Q = Z = ∅``.  In the finite
propositional case ECWA coincides with circumscription
(:mod:`repro.semantics.circumscription`).

Complexity (paper, Tables 1 and 2): literal and formula inference are
Π₂ᵖ-complete; model existence is O(1) for positive DDBs and NP-complete
with integrity clauses (``MM(DB;P;Z) ≠ ∅`` iff DB satisfiable).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..models.enumeration import pz_minimal_models_brute
from ..sat.minimal import PZMinimalModelSolver
from ..sat.solver import database_is_consistent
from .base import Semantics, ground_query, register


class PartitionedSemantics(Semantics):
    """Shared machinery for the ``(P; Q; Z)``-parameterized semantics.

    Args:
        p: minimized atoms.  ``None`` (default) minimizes the whole
            vocabulary of whichever database is queried.
        z: floating atoms (default none).
        engine: see :class:`~repro.semantics.base.Semantics`.
    """

    def __init__(
        self,
        p: Optional[Iterable[str]] = None,
        z: Iterable[str] = (),
        engine: str = "oracle",
    ):
        super().__init__(engine=engine)
        self.p = None if p is None else frozenset(p)
        self.z = frozenset(z)

    def partition(
        self, db: DisjunctiveDatabase
    ) -> "tuple[frozenset, frozenset, frozenset]":
        """The effective ``(P, Q, Z)`` for ``db`` (validated)."""
        p = frozenset(db.vocabulary) - self.z if self.p is None else self.p
        q = frozenset(db.vocabulary) - p - self.z
        return db.check_partition(p, q, self.z)

    def cache_params(self) -> "tuple":
        # Distinct (P;Z) partitions must never share memo entries.
        return ("p", self.p, "z", self.z)


@register
class Ecwa(PartitionedSemantics):
    """Extended CWA: entailment over ``MM(DB; P; Z)``."""

    name = "ecwa"
    aliases = ("extended-cwa",)
    description = "Extended CWA (Gelfond, Przymusinska & Przymusinski)"

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        p, _q, z = self.partition(db)
        if self.engine == "brute":
            return frozenset(pz_minimal_models_brute(db, p, z))
        with PZMinimalModelSolver(
            db, p, z, reuse=self.sat_reuse
        ) as solver:
            return frozenset(solver.iter_minimal_models())

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        p, _q, z = self.partition(db)
        with PZMinimalModelSolver(
            db, p, z, reuse=self.sat_reuse
        ) as solver:
            return solver.entails(formula)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            return True
        if self.engine == "brute":
            return super().has_model(db)
        # Every model sits above some (P;Z)-minimal model, so
        # MM(DB;P;Z) ≠ ∅ iff DB is satisfiable.
        return database_is_consistent(db)
