"""EGCWA — the Extended Generalized Closed World Assumption.

Yahya & Henschen [30].  Model-theoretic characterization (paper,
Section 3.3): ``EGCWA(DB) = MM(DB)`` — the selected models are exactly the
subset-minimal models, so inference is *minimal-model entailment*.

Complexity (paper, Tables 1 and 2):

* literal / formula inference: Π₂ᵖ-complete (already for positive DDBs),
* model existence: ``O(1)`` for positive DDBs (always yes),
  NP-complete with integrity clauses (``MM(DB) ≠ ∅`` iff DB satisfiable).
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..models.enumeration import minimal_models_brute
from ..sat.minimal import MinimalModelSolver
from ..sat.solver import database_is_consistent
from .base import Semantics, ground_query, register


@register
class Egcwa(Semantics):
    """Extended GCWA: entailment over the minimal models ``MM(DB)``."""

    name = "egcwa"
    aliases = ("extended-gcwa",)
    description = "Extended Generalized CWA (Yahya & Henschen)"

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        if self.engine == "brute":
            return frozenset(minimal_models_brute(db))
        with MinimalModelSolver(db, reuse=self.sat_reuse) as solver:
            return frozenset(solver.iter_minimal_models())

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        # Π₂ᵖ upper bound: no minimal model satisfies the negation.
        with MinimalModelSolver(db, reuse=self.sat_reuse) as solver:
            return solver.entails(formula)

    def infers_brave(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        from .base import ground_query

        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers_brave(db, formula)
        # Σ₂ᵖ witness search: a minimal model satisfying the formula.
        with MinimalModelSolver(db, reuse=self.sat_reuse) as solver:
            return solver.find_minimal_satisfying(formula) is not None

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            return True  # Table 1: O(1) — a positive DDB is always consistent
        if self.engine == "brute":
            return super().has_model(db)
        # Table 2: NP-complete — MM(DB) nonempty iff DB satisfiable.
        return database_is_consistent(db)
