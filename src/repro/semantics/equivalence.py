"""Equivalence of databases under a semantics.

Two databases are *equivalent under semantics S* when S selects the same
model set for both.  For classical models this is one pair of UNSAT
calls; for the nonmonotonic semantics the checker searches for a model
selected by one database but not the other (with early exit), which is
how program-equivalence questions are usually decided in practice.

These checkers power several cross-validation tests (e.g. shifting
negation to heads preserves classical equivalence but not stable
equivalence) and are a useful public API in their own right.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Not
from ..logic.interpretation import Interpretation
from ..sat.incremental import pooled_scope
from .base import Semantics, get_semantics


def classically_equivalent(
    db1: DisjunctiveDatabase, db2: DisjunctiveDatabase, reuse: bool = True
) -> bool:
    """Whether ``M(db1) = M(db2)`` over the union vocabulary
    (two UNSAT calls; each side's theory is a pooled solver and the other
    side's negation lives in a retractable scope)."""
    vocabulary = db1.vocabulary | db2.vocabulary
    for left, right in ((db1, db2), (db2, db1)):
        with pooled_scope(
            left.with_vocabulary(vocabulary), context=("db",), reuse=reuse
        ) as sat:
            sat.add_formula(Not(right.to_formula()))
            if sat.solve():
                return False
    return True


def classical_difference_witness(
    db1: DisjunctiveDatabase, db2: DisjunctiveDatabase, reuse: bool = True
) -> Optional[Interpretation]:
    """A model of exactly one of the two databases, or ``None``."""
    vocabulary = db1.vocabulary | db2.vocabulary
    for left, right in ((db1, db2), (db2, db1)):
        with pooled_scope(
            left.with_vocabulary(vocabulary), context=("db",), reuse=reuse
        ) as sat:
            sat.add_formula(Not(right.to_formula()))
            if sat.solve():
                return sat.model(restrict_to=vocabulary)
    return None


def equivalent_under(
    db1: DisjunctiveDatabase,
    db2: DisjunctiveDatabase,
    semantics: "str | Semantics" = "egcwa",
) -> bool:
    """Whether the named semantics selects the same models for both.

    Requires the two databases to share a vocabulary (pad with
    :meth:`~repro.logic.database.DisjunctiveDatabase.with_vocabulary`
    first if needed) so that the model sets are comparable.
    """
    if isinstance(semantics, str):
        semantics = get_semantics(semantics)
    if db1.vocabulary != db2.vocabulary:
        vocabulary = db1.vocabulary | db2.vocabulary
        db1 = db1.with_vocabulary(vocabulary)
        db2 = db2.with_vocabulary(vocabulary)
    return semantics.model_set(db1) == semantics.model_set(db2)


def difference_witness_under(
    db1: DisjunctiveDatabase,
    db2: DisjunctiveDatabase,
    semantics: "str | Semantics" = "egcwa",
):
    """A model selected for exactly one of the databases, or ``None``.

    Returned as ``(model, side)`` with ``side`` 1 or 2 naming the
    database that selects it.
    """
    if isinstance(semantics, str):
        semantics = get_semantics(semantics)
    if db1.vocabulary != db2.vocabulary:
        vocabulary = db1.vocabulary | db2.vocabulary
        db1 = db1.with_vocabulary(vocabulary)
        db2 = db2.with_vocabulary(vocabulary)
    set1 = semantics.model_set(db1)
    set2 = semantics.model_set(db2)
    for model in sorted(set1 - set2, key=str):
        return model, 1
    for model in sorted(set2 - set1, key=str):
        return model, 2
    return None
