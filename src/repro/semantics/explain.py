"""Explanations: auditable witnesses for the decision procedures.

A "no" answer to cautious inference has a succinct certificate — a
selected model falsifying the query — and the tractable fixpoint
semantics even have *derivations*.  This module turns the engines'
internal witnesses into objects a caller (or a test) can re-check
independently:

* :func:`explain_non_inference` — a counter-model certificate for
  ``DB ⊭_S F``, with the per-semantics membership evidence spelled out;
* :func:`derivation_of` — a step-by-step derivation of a possibly-true
  atom (the DDR/PWS fixpoint), each step naming the clause used;
* :func:`explain_closure_literal` — for GCWA/CCWA: the minimal-model
  witness keeping an atom un-negated, or the statement that none exists.

Every certificate's :meth:`check` re-verifies it from scratch against
the database, without trusting the engine that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..errors import NotPositiveError, ReproError
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not, Var
from ..logic.interpretation import Interpretation, ThreeValuedInterpretation
from .base import Semantics, get_semantics, ground_query


@dataclass
class CounterModelCertificate:
    """A selected model falsifying a query — the certificate that
    cautious inference fails.

    Attributes:
        semantics: the semantics' canonical name.
        model: the counter-model (2- or 3-valued, matching the semantics).
        query: the formula it falsifies.
    """

    semantics: str
    model: Union[Interpretation, ThreeValuedInterpretation]
    query: Formula

    def check(self, db: DisjunctiveDatabase) -> bool:
        """Re-verify the certificate from scratch: the model falsifies
        the query and is genuinely selected by the semantics."""
        if isinstance(self.model, ThreeValuedInterpretation):
            from ..logic.formula import TRUE3

            if self.model.degree(self.query) == TRUE3:
                return False
            from .pdsm import is_partial_stable

            return is_partial_stable(db, self.model)
        if self.model.satisfies(self.query):
            return False
        checker = _MEMBERSHIP_CHECKS.get(self.semantics)
        if checker is None:
            raise ReproError(
                f"no membership check for semantics {self.semantics!r}"
            )
        return checker(db, self.model)

    def render(self) -> str:
        return (
            f"{self.semantics.upper()} counter-model {self.model} "
            f"falsifies {self.query}"
        )


def _check_minimal(db, model):
    from ..sat.minimal import is_minimal_model

    return is_minimal_model(db, model)


def _check_gcwa(db, model):
    from .gcwa import Gcwa

    return db.is_model(model) and not (model & Gcwa().free_atoms(db))


def _check_stable(db, model):
    from .dsm import is_stable_model

    return is_stable_model(db, model)


def _check_perfect(db, model):
    from .perf import is_perfect

    return is_perfect(db, model)


def _check_possible(db, model):
    from .pws import is_possible_model

    return is_possible_model(db, model)


def _check_ddr(db, model):
    from .ddr import Ddr

    semantics = Ddr()
    return db.is_model(model) and not (model & semantics.negated_atoms(db))


_MEMBERSHIP_CHECKS = {
    "egcwa": _check_minimal,
    "ecwa": _check_minimal,  # default partition: plain minimality
    "circ": _check_minimal,
    "gcwa": _check_gcwa,
    "dsm": _check_stable,
    "perf": _check_perfect,
    "pws": _check_possible,
    "ddr": _check_ddr,
}


def explain_non_inference(
    db: DisjunctiveDatabase,
    formula: Formula,
    semantics: str = "egcwa",
) -> Optional[CounterModelCertificate]:
    """A checkable counter-model for ``DB ⊭_S F``, or ``None`` when the
    formula *is* inferred."""
    engine = get_semantics(semantics)
    engine.validate(db)
    query = ground_query(db, formula)
    negated = Not(query)
    name = engine.name
    if name in ("egcwa", "ecwa", "circ"):
        from ..sat.minimal import MinimalModelSolver

        with MinimalModelSolver(db) as solver:
            witness = solver.find_minimal_satisfying(negated)
    elif name == "gcwa":
        from ..sat.incremental import pooled_scope
        from .gcwa import Gcwa, augmented_database

        augmented = augmented_database(db, Gcwa().free_atoms(db))
        with pooled_scope(augmented, context=("db",)) as sat:
            sat.add_formula(negated)
            witness = (
                sat.model(restrict_to=db.vocabulary)
                if sat.solve()
                else None
            )
    elif name == "ddr":
        from ..sat.incremental import pooled_scope
        from .ddr import Ddr
        from .gcwa import augmented_database

        augmented = augmented_database(db, Ddr().negated_atoms(db))
        with pooled_scope(augmented, context=("db",)) as sat:
            sat.add_formula(negated)
            witness = (
                sat.model(restrict_to=db.vocabulary)
                if sat.solve()
                else None
            )
    elif name == "pws":
        witness = next(
            get_semantics("pws")._iter_possible_models(db, condition=negated),
            None,
        )
    elif name == "dsm":
        witness = next(
            get_semantics("dsm")._iter_stable(db, condition=negated), None
        )
    elif name == "perf":
        from .perf import priorities_for

        priorities = priorities_for(db)
        witness = next(
            get_semantics("perf")._iter_perfect(
                db, priorities, condition=negated
            ),
            None,
        )
    elif name == "pdsm":
        from .pdsm import encode_degree

        condition = Not(encode_degree(query, at_least_half=False))
        witness = next(
            get_semantics("pdsm")._iter_partial_stable(
                db, condition=condition
            ),
            None,
        )
    else:
        # Generic fallback: materialize the model set.
        witness = next(
            (m for m in engine.model_set(db) if not m.satisfies(query)),
            None,
        )
    if witness is None:
        return None
    return CounterModelCertificate(name, witness, query)


# ----------------------------------------------------------------------
# Derivations for the fixpoint semantics
# ----------------------------------------------------------------------
@dataclass
class DerivationStep:
    """One fixpoint step: ``atom`` becomes possibly true via ``clause``
    (whose positive body atoms were all derived earlier)."""

    atom: str
    clause: Clause

    def render(self) -> str:
        return f"{self.atom}  via  {self.clause}"


@dataclass
class Derivation:
    """A derivation of a possibly-true atom, in dependency order."""

    target: str
    steps: List[DerivationStep] = field(default_factory=list)

    def check(self, db: DisjunctiveDatabase) -> bool:
        """Re-verify: every step's clause is in DB, its head contains the
        step's atom, and its body atoms were derived by earlier steps."""
        derived: set = set()
        for step in self.steps:
            if step.clause not in db.clauses:
                return False
            if step.atom not in step.clause.head:
                return False
            if not step.clause.body_pos <= derived:
                return False
            derived.add(step.atom)
        return self.target in derived

    def render(self) -> str:
        lines = [f"derivation of {self.target}:"]
        lines += [f"  {i+1}. {s.render()}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)


def derivation_of(
    db: DisjunctiveDatabase, atom: str
) -> Optional[Derivation]:
    """A derivation showing ``atom`` is possibly true (in the DDR/PWS
    fixpoint), or ``None`` when it is not.

    The derivation is built backwards from the fixpoint computation: each
    needed atom is justified by the first clause that derived it.
    """
    if db.has_negation:
        raise NotPositiveError(
            "derivations are defined for deductive databases"
        )
    justification: dict = {}
    order: List[str] = []
    changed = True
    while changed:
        changed = False
        for clause in sorted(db.clauses):
            if clause.is_integrity:
                continue
            if clause.body_pos <= set(justification):
                for head_atom in sorted(clause.head):
                    if head_atom not in justification:
                        justification[head_atom] = clause
                        order.append(head_atom)
                        changed = True
    if atom not in justification:
        return None
    # Collect the transitive support of the target, in derivation order.
    needed: set = set()

    def collect(target: str) -> None:
        if target in needed:
            return
        needed.add(target)
        for body_atom in justification[target].body_pos:
            collect(body_atom)

    collect(atom)
    steps = [
        DerivationStep(a, justification[a]) for a in order if a in needed
    ]
    return Derivation(atom, steps)


# ----------------------------------------------------------------------
# Closure-literal explanations
# ----------------------------------------------------------------------
@dataclass
class ClosureExplanation:
    """Why a closure does / does not negate an atom.

    Attributes:
        atom: the atom in question.
        negated: whether the closure adds ``¬atom``.
        witness: when not negated — a minimal model containing the atom.
    """

    atom: str
    negated: bool
    witness: Optional[Interpretation] = None

    def check(self, db: DisjunctiveDatabase) -> bool:
        from ..sat.minimal import is_minimal_model

        if self.negated:
            return self.witness is None
        return (
            self.witness is not None
            and self.atom in self.witness
            and is_minimal_model(db, self.witness)
        )

    def render(self) -> str:
        if self.negated:
            return (
                f"¬{self.atom} is in the GCWA closure: no minimal model "
                f"contains {self.atom}"
            )
        return (
            f"{self.atom} stays open: minimal model {self.witness} "
            f"contains it"
        )


def explain_closure_literal(
    db: DisjunctiveDatabase, atom: str
) -> ClosureExplanation:
    """Explain GCWA's decision about ``atom`` with a checkable witness."""
    from ..sat.minimal import MinimalModelSolver

    if atom not in db.vocabulary:
        return ClosureExplanation(atom, negated=True, witness=None)
    with MinimalModelSolver(db) as solver:
        witness = solver.find_minimal_satisfying(Var(atom))
    if witness is None:
        return ClosureExplanation(atom, negated=True, witness=None)
    return ClosureExplanation(atom, negated=False, witness=witness)
