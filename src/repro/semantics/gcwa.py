"""GCWA — Minker's Generalized Closed World Assumption.

Minker [16].  The closure adds ``¬x`` for every atom ``x`` that is false
in all minimal models.  Model-theoretic characterization (paper,
Section 3.1)::

    GCWA(DB) = {M ∈ M(DB) : ∀x ∈ V. MM(DB) |= ¬x  ⟹  M |= ¬x}

i.e. the models of ``DB ∪ {¬x : x ∈ ff(DB)}`` where ``ff(DB)`` is the set
of atoms *free for negation* (false in every minimal model).

Complexity (paper, Tables 1 and 2):

* literal inference: Π₂ᵖ-complete.  For a negative literal ``¬x`` this is
  ``MM(DB) |= ¬x`` directly; for a positive literal ``x`` it coincides
  with minimal-model entailment of ``x`` (every model extends a minimal
  model, see :meth:`Gcwa.infers_literal`).
* formula inference: Π₂ᵖ-hard, in P^{Σ₂ᵖ}[O(log n)].  The O(log n)-call
  algorithm lives in :mod:`repro.complexity.machines`; the engine here
  uses the straightforward |V|-call computation of ``ff(DB)``.
* model existence: O(1) for positive DDBs; with integrity clauses,
  ``GCWA(DB) ≠ ∅`` iff DB is satisfiable (``MM(DB) ⊆ GCWA(DB)``).
"""

from __future__ import annotations

from typing import FrozenSet

from ..logic.atoms import Literal
from ..logic.clause import Clause
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Var
from ..logic.interpretation import Interpretation
from ..models.enumeration import minimal_models_brute
from ..sat.enumerate import iter_models
from ..sat.incremental import pooled_scope
from ..sat.minimal import MinimalModelSolver
from ..sat.solver import database_is_consistent
from .base import Semantics, ground_query, register


def free_for_negation_brute(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """``ff(DB)``: atoms false in every minimal model, by enumeration."""
    minimal = minimal_models_brute(db)
    return frozenset(
        x for x in db.vocabulary if not any(x in m for m in minimal)
    )


def free_for_negation(
    db: DisjunctiveDatabase, reuse: bool = True
) -> FrozenSet[str]:
    """``ff(DB)`` via the Σ₂ᵖ primitive: ``x ∈ ff`` iff no minimal model
    satisfies ``x`` — one Σ₂ᵖ dispatch per atom, asked as a single
    batched incremental sweep (see
    :meth:`~repro.sat.minimal.MinimalModelSolver.free_for_negation_sweep`)
    so all |V| candidate literals share one solver scope."""
    with MinimalModelSolver(db, reuse=reuse) as engine:
        return engine.free_for_negation_sweep()


def augmented_database(
    db: DisjunctiveDatabase, free: FrozenSet[str]
) -> DisjunctiveDatabase:
    """``DB ∪ {¬x : x ∈ free}`` — the GCWA/CCWA closure as a database
    (each ``¬x`` as the integrity clause ``:- x.``)."""
    units = [Clause.integrity([atom]) for atom in sorted(free)]
    return db.with_clauses(units)


@register
class Gcwa(Semantics):
    """Generalized CWA: negate atoms false in all minimal models."""

    name = "gcwa"
    aliases = ("generalized-cwa",)
    description = "Generalized CWA (Minker)"

    def free_atoms(self, db: DisjunctiveDatabase) -> FrozenSet[str]:
        """The atoms the closure negates."""
        if self.engine == "brute":
            return free_for_negation_brute(db)
        return free_for_negation(db, reuse=self.sat_reuse)

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        free = self.free_atoms(db)
        if self.engine == "brute":
            from ..models.enumeration import all_models

            return frozenset(
                m for m in all_models(db) if not (m & free)
            )
        augmented = augmented_database(db, free)
        return frozenset(
            iter_models(
                augmented, project=db.vocabulary, reuse=self.sat_reuse
            )
        )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        # ff(DB) via |V| Σ₂ᵖ-primitive calls, then one classical
        # entailment call on the augmented theory.  (The Θ₂ᵖ-style
        # O(log n)-oracle-call algorithm is in repro.complexity.machines.)
        augmented = augmented_database(db, self.free_atoms(db))
        with pooled_scope(
            augmented, context=("db",), reuse=self.sat_reuse
        ) as sat:
            sat.add_formula(formula, positive=False)
            return not sat.solve()

    def infers_literal(self, db: DisjunctiveDatabase, literal) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        if self.engine == "brute":
            return super().infers_literal(db, literal)
        # Both polarities reduce to one minimal-model entailment query
        # (Π₂ᵖ): ¬x holds in all GCWA models iff x ∈ ff(DB) iff
        # MM(DB) |= ¬x; and x holds in all GCWA models iff it holds in all
        # minimal models, because every GCWA model contains some minimal
        # model and atoms persist upward.
        with MinimalModelSolver(db, reuse=self.sat_reuse) as engine:
            if literal.positive:
                return engine.entails(Var(literal.atom))
            return (
                engine.find_minimal_satisfying(Var(literal.atom)) is None
            )

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            return True  # Table 1: O(1)
        if self.engine == "brute":
            return super().has_model(db)
        # MM(DB) ⊆ GCWA(DB): nonempty iff DB satisfiable.
        return database_is_consistent(db)
