"""ICWA — the Iterated Closed World Assumption.

Gelfond, Przymusinska & Przymusinski [12], introduced "for capturing PERF
under stratified negation".  Given a stratified database with
stratification ``S = ⟨S1, ..., Sr⟩`` and a partition ``⟨P; Q; Z⟩`` whose
``P`` splits along the strata into ``P1 > P2 > ... > Pr``, ICWA applies
ECWA iteratedly along the strata.  The paper (after [12, Section 6])
characterizes the result as an intersection of ECWAs::

    ICWA_{P1>..>Pr; Z}(DB) = ⋂_i  ECWA_{P_i ; P_{i+1} ∪ .. ∪ P_r ∪ Z}(DB⁺)

where ``DB⁺`` moves each negative body literal into the head (classical
models are unchanged).  Being ``(P_i;·)``-minimal for every level ``i``
with the higher levels fixed and the lower ones floating is exactly
*lexicographic* (prioritized) minimality, which is how the oracle engine
decides it; the intersection form is also implemented
(:func:`icwa_models_by_intersection`) and the two are cross-validated in
the tests.

Complexity (paper, Section 4): formula inference in Π₂ᵖ (Thm 4.1),
literal inference Π₂ᵖ-hard already for positive databases via the trivial
stratification ``S = ⟨V⟩`` (Thm 4.2, where ICWA = ECWA = EGCWA); model
existence O(1) — "stratifiability asserts consistency".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..errors import NotStratifiedError
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula
from ..logic.interpretation import Interpretation
from ..logic.transform import shift_negation_to_head
from ..models.enumeration import (
    prioritized_minimal_models_brute,
    pz_minimal_models_brute,
)
from ..sat.minimal import PrioritizedMinimalModelSolver
from .base import Semantics, ground_query, register
from .stratification import Stratification, require_stratification


def priority_levels(
    stratification: Stratification,
    p: FrozenSet[str],
) -> List[FrozenSet[str]]:
    """Split ``P`` along the strata: ``P_i = P ∩ S_i`` (empty levels kept
    out), lowest stratum first (highest priority)."""
    levels = [stratum & p for stratum in stratification.strata]
    return [level for level in levels if level]


def icwa_models_by_intersection(
    db: DisjunctiveDatabase,
    levels: Sequence[FrozenSet[str]],
    z: FrozenSet[str],
) -> FrozenSet[Interpretation]:
    """The intersection-of-ECWAs characterization, by brute enumeration
    (ground truth for the lexicographic engine)."""
    shifted = shift_negation_to_head(db)
    result: Optional[set] = None
    for index, level in enumerate(levels):
        floating = frozenset().union(*levels[index + 1:], z) if (
            levels[index + 1:] or z
        ) else frozenset()
        stage = frozenset(pz_minimal_models_brute(shifted, level, floating))
        result = stage if result is None else (result & stage)
    if result is None:  # no priority levels: every model qualifies
        from ..models.enumeration import all_models

        return frozenset(all_models(shifted))
    return frozenset(result)


@register
class Icwa(Semantics):
    """Iterated CWA over a stratification.

    Args:
        p: minimized atoms (default: whole vocabulary minus ``z``).
        z: floating atoms (default: none).
        stratification: an explicit stratification to use; by default the
            canonical one is computed (raising
            :class:`~repro.errors.NotStratifiedError` when none exists).
        engine: see :class:`~repro.semantics.base.Semantics`.
    """

    name = "icwa"
    aliases = ("iterated-cwa",)
    description = "Iterated CWA (Gelfond, Przymusinska & Przymusinski)"

    def __init__(
        self,
        p: Optional[Iterable[str]] = None,
        z: Iterable[str] = (),
        stratification: Optional[Stratification] = None,
        engine: str = "oracle",
    ):
        super().__init__(engine=engine)
        self.p = None if p is None else frozenset(p)
        self.z = frozenset(z)
        self.stratification = stratification

    def _setup(self, db: DisjunctiveDatabase):
        stratification = self.stratification or require_stratification(db)
        p = frozenset(db.vocabulary) - self.z if self.p is None else self.p
        q = frozenset(db.vocabulary) - p - self.z
        db.check_partition(p, q, self.z)
        levels = priority_levels(stratification, p)
        shifted = shift_negation_to_head(db)
        return shifted, levels

    def validate(self, db: DisjunctiveDatabase) -> None:
        if self.stratification is None:
            require_stratification(db)

    def cache_params(self) -> "tuple":
        # An explicit stratification changes the iteration order, so it
        # participates in the memo key (by the strata themselves, not
        # object identity).
        strata = (
            None
            if self.stratification is None
            else tuple(self.stratification.strata)
        )
        return ("p", self.p, "z", self.z, "strata", strata)

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        shifted, levels = self._setup(db)
        if self.engine == "brute":
            return frozenset(
                prioritized_minimal_models_brute(shifted, levels, self.z)
            )
        from ..sat.enumerate import iter_models

        with PrioritizedMinimalModelSolver(
            shifted, levels, self.z, reuse=self.sat_reuse
        ) as solver:
            return frozenset(
                m
                for m in iter_models(
                    shifted,
                    project=shifted.vocabulary,
                    reuse=self.sat_reuse,
                )
                if solver.is_minimal(m)
            )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        formula = ground_query(db, formula)
        shifted, levels = self._setup(db)
        if self.engine == "brute":
            models = prioritized_minimal_models_brute(
                shifted, levels, self.z
            )
            return all(m.satisfies(formula) for m in models)
        with PrioritizedMinimalModelSolver(
            shifted, levels, self.z, reuse=self.sat_reuse
        ) as solver:
            return solver.entails(formula)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        # Paper, Table 2: O(1) — "stratifiability asserts consistency";
        # validate() has already established a stratification exists, and
        # the shifted positive database always has models, hence
        # prioritized-minimal ones.
        self.validate(db)
        return True
