"""PDSM — Partial (3-valued) Disjunctive Stable Model semantics
(Przymusinski [20]).

Defined like DSM but over 3-valued interpretations with truth degrees
``0 < 1/2 < 1``: the reduct ``DB^I`` replaces each ``not c`` by the truth
*constant* ``1 - I(c)``, and ``I`` is a partial stable model iff ``I`` is
a ≤-minimal 3-valued model of ``DB^I`` (pointwise truth ordering).  The
total partial stable models are exactly the disjunctive stable models,
which the test suite verifies.

Boolean encoding (used for the NP-oracle checks): each atom ``x`` becomes
the pair ``(t_x, p_x)`` with ``t_x → p_x`` — value 1 = (1,1),
1/2 = (0,1), 0 = (0,0).  A valued clause ``H :- B, β`` (β the collapsed
negative-literal constant) is satisfied iff

* ``val(B ∧ β) ≥ 1/2  ⟹  val(H) ≥ 1/2`` — a clause over the ``p`` vars,
* ``val(B ∧ β) = 1    ⟹  val(H) = 1``  — a clause over the ``t`` vars,

and ``J < I`` is ``true(J) ⊆ true(I) ∧ poss(J) ⊆ poss(I) ∧ J ≠ I``.

Complexity (paper, Section 5.2): same results as DSM — literal/formula
inference Π₂ᵖ-complete, model existence Σ₂ᵖ-complete, and [8] shows the
model-existence lower bound holds even without integrity clauses.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional

from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import (
    FALSE3,
    TRUE3,
    UNDEF3,
    And,
    Bottom,
    Formula,
    Not,
    Or,
    Top,
    Var,
    conj,
    disj,
    negation_normal_form,
)
from ..logic.interpretation import (
    ThreeValuedInterpretation,
    all_three_valued,
)
from ..logic.transform import three_valued_reduct
from ..runtime.budget import check_deadline
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register

#: Atom-name prefixes of the Boolean encoding.
T_PREFIX = "t__"
P_PREFIX = "p__"


def t_atom(atom: str) -> str:
    """The 'value = 1' Boolean variable for ``atom``."""
    return T_PREFIX + atom


def p_atom(atom: str) -> str:
    """The 'value >= 1/2' Boolean variable for ``atom``."""
    return P_PREFIX + atom


def satisfies_reduct(
    db: DisjunctiveDatabase, interpretation: ThreeValuedInterpretation
) -> bool:
    """``I |= DB^I`` — 3-valued satisfaction of the reduct."""
    return all(
        clause.satisfied_by(interpretation)
        for clause in three_valued_reduct(db, interpretation)
    )


def is_partial_stable_brute(
    db: DisjunctiveDatabase, interpretation: ThreeValuedInterpretation
) -> bool:
    """Reference check by enumerating all 3-valued interpretations."""
    if not satisfies_reduct(db, interpretation):
        return False
    reduct = three_valued_reduct(db, interpretation)
    for other in all_three_valued(db.vocabulary):
        if other.lt(interpretation) and all(
            c.satisfied_by(other) for c in reduct
        ):
            return False
    return True


def _reduct_constraint_clauses(
    db: DisjunctiveDatabase, interpretation: ThreeValuedInterpretation
) -> List[List[Literal]]:
    """Boolean clauses expressing ``J |= DB^I`` over the (t, p) encoding
    of ``J`` (the reduct constants come from ``I``)."""
    clauses: List[List[Literal]] = []
    for valued in three_valued_reduct(db, interpretation):
        if valued.bound == FALSE3:
            continue  # body constant 0: satisfied by everything
        # val(body) >= 1/2  =>  val(head) >= 1/2
        clauses.append(
            [Literal.neg(p_atom(b)) for b in sorted(valued.body_pos)]
            + [Literal.pos(p_atom(h)) for h in sorted(valued.head)]
        )
        if valued.bound == TRUE3:
            # val(body) = 1  =>  val(head) = 1
            clauses.append(
                [Literal.neg(t_atom(b)) for b in sorted(valued.body_pos)]
                + [Literal.pos(t_atom(h)) for h in sorted(valued.head)]
            )
    return clauses


def _tp_setup(db: DisjunctiveDatabase):
    """Setup callable for pooled (t, p)-encoding solvers: the ``t_x → p_x``
    consistency clauses are a pure function of the vocabulary, so they are
    installed once per solver and shared across queries."""

    def setup(solver) -> None:
        for atom in sorted(db.vocabulary):
            solver.add_clause(
                [Literal.neg(t_atom(atom)), Literal.pos(p_atom(atom))]
            )

    return setup


def is_partial_stable(
    db: DisjunctiveDatabase,
    interpretation: ThreeValuedInterpretation,
    reuse: bool = True,
) -> bool:
    """``I ∈ MM₃(DB^I)`` — polynomial work plus one NP-oracle call."""
    if not satisfies_reduct(db, interpretation):
        return False
    atoms = sorted(db.vocabulary)
    with pooled_scope(
        context=("pdsm-check", db), reuse=reuse, setup=_tp_setup(db)
    ) as solver:
        for clause in _reduct_constraint_clauses(db, interpretation):
            solver.add_clause(clause)
        # J <= I pointwise:
        for atom in atoms:
            if atom not in interpretation.possible:
                solver.add_unit(Literal.neg(p_atom(atom)))
            if atom not in interpretation.true:
                solver.add_unit(Literal.neg(t_atom(atom)))
        # ... strictly:
        strict = [
            Literal.neg(t_atom(a)) for a in sorted(interpretation.true)
        ]
        strict += [
            Literal.neg(p_atom(a)) for a in sorted(interpretation.possible)
        ]
        if not strict:
            return True  # I is the all-false interpretation: nothing below
        solver.add_clause(strict)
        return not solver.solve()


def encode_degree(formula: Formula, at_least_half: bool) -> Formula:
    """Translate "``formula`` has degree 1" (or ">= 1/2") into a Boolean
    formula over the (t, p) encoding atoms.  The input is NNF-normalized
    first."""
    return _encode(negation_normal_form(formula), at_least_half)


def _encode(formula: Formula, half: bool) -> Formula:
    if isinstance(formula, Top):
        return Top()
    if isinstance(formula, Bottom):
        return Bottom()
    if isinstance(formula, Var):
        return Var(p_atom(formula.name) if half else t_atom(formula.name))
    if isinstance(formula, Not):  # NNF: operand is a Var
        inner = formula.operand
        assert isinstance(inner, Var), "input must be in NNF"
        # deg(¬x) = 1 - deg(x):  =1 iff x = 0 (¬p);  >=1/2 iff x <= 1/2 (¬t).
        return Not(Var(t_atom(inner.name) if half else p_atom(inner.name)))
    if isinstance(formula, And):
        return conj([_encode(op, half) for op in formula.operands])
    if isinstance(formula, Or):
        return disj([_encode(op, half) for op in formula.operands])
    raise TypeError(f"formula not in NNF: {formula!r}")


@register
class Pdsm(Semantics):
    """Partial Disjunctive Stable Model semantics.

    ``model_set`` returns 3-valued interpretations
    (:class:`~repro.logic.interpretation.ThreeValuedInterpretation`);
    ``infers`` requires degree 1 of the formula in every partial stable
    model.
    """

    name = "pdsm"
    aliases = ("partial-stable", "partial-dsm")
    description = "Partial Disjunctive Stable Models (Przymusinski)"

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[ThreeValuedInterpretation]:
        self.validate(db)
        if self.engine == "brute":
            return frozenset(
                i
                for i in all_three_valued(db.vocabulary)
                if is_partial_stable_brute(db, i)
            )
        return frozenset(self._iter_partial_stable(db))

    def _candidate_scope(self, db: DisjunctiveDatabase):
        """A scope on a pooled solver over the (t, p) encoding whose
        models are exactly the 3-valued interpretations ``I`` with
        ``I |= DB^I``: the reduct constants are expressed through the
        candidate's own variables (``1 - I(c) >= 1/2`` iff ``¬t_c``;
        ``= 1`` iff ``¬p_c``).  The encoding is a pure function of the
        database, so it is the solver's permanent theory."""
        tp_setup = _tp_setup(db)

        def setup(solver) -> None:
            tp_setup(solver)
            for clause in db.clauses:
                half: List[Literal] = [
                    Literal.neg(p_atom(b)) for b in sorted(clause.body_pos)
                ]
                half += [
                    Literal.pos(t_atom(c)) for c in sorted(clause.body_neg)
                ]
                half += [
                    Literal.pos(p_atom(h)) for h in sorted(clause.head)
                ]
                solver.add_clause(half)
                full: List[Literal] = [
                    Literal.neg(t_atom(b)) for b in sorted(clause.body_pos)
                ]
                full += [
                    Literal.pos(p_atom(c)) for c in sorted(clause.body_neg)
                ]
                full += [
                    Literal.pos(t_atom(h)) for h in sorted(clause.head)
                ]
                solver.add_clause(full)

        return pooled_scope(
            context=("pdsm-candidates", db),
            reuse=self.sat_reuse,
            setup=setup,
        )

    def _decode(
        self, db: DisjunctiveDatabase, model
    ) -> ThreeValuedInterpretation:
        true = {a for a in db.vocabulary if t_atom(a) in model}
        possible = {a for a in db.vocabulary if p_atom(a) in model}
        return ThreeValuedInterpretation(true, possible)

    def _iter_partial_stable(
        self, db: DisjunctiveDatabase, condition: Optional[Formula] = None
    ) -> Iterator[ThreeValuedInterpretation]:
        """Guess-and-check: candidates satisfy ``I |= DB^I`` by
        construction; one NP-oracle minimality check each; exact blocking
        on the (t, p) pattern.

        ``condition`` is a Boolean formula over the encoding atoms.
        """
        encoding_atoms = sorted(
            [t_atom(a) for a in db.vocabulary]
            + [p_atom(a) for a in db.vocabulary]
        )
        with self._candidate_scope(db) as searcher:
            if condition is not None:
                searcher.add_formula(condition)
            while True:
                check_deadline()
                if not searcher.solve():
                    return
                raw = searcher.model(restrict_to=encoding_atoms)
                candidate = self._decode(db, raw)
                if is_partial_stable(db, candidate, reuse=self.sat_reuse):
                    yield candidate
                searcher.add_clause(
                    [
                        Literal.neg(a) if a in raw else Literal.pos(a)
                        for a in encoding_atoms
                    ]
                )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        """Degree-1 truth of ``formula`` in every partial stable model."""
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return all(
                i.degree(formula) == TRUE3 for i in self.model_set(db)
            )
        counter_condition = Not(encode_degree(formula, at_least_half=False))
        for _counterexample in self._iter_partial_stable(
            db, condition=counter_condition
        ):
            return False
        return True

    def infers_brave(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        """A partial stable model giving ``formula`` degree 1."""
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return any(
                i.degree(formula) == TRUE3 for i in self.model_set(db)
            )
        condition = encode_degree(formula, at_least_half=False)
        for _witness in self._iter_partial_stable(db, condition=condition):
            return True
        return False

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            # Table 1: O(1) — a positive database has minimal models,
            # which (being total stable models) are partial stable.
            return True
        if self.engine == "brute":
            return bool(self.model_set(db))
        for _model in self._iter_partial_stable(db):
            return True
        return False
