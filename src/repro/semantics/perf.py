"""PERF — Przymusinski's Perfect Models Semantics [19].

Defined for disjunctive normal databases *without integrity clauses*
(paper, Section 5.1).  A priority preorder on atoms is read off the
clause structure: for each clause ``a1|..|an :- b1,..,bk, not c1,..,not cm``

* ``ai < cj`` — every negated body atom has *higher* priority than every
  head atom (``x < y`` means ``y`` has higher priority; higher-priority
  atoms are minimized more eagerly),
* ``ai <= bj`` — positive body atoms have priority at least the head's,
* ``ai <= aj`` — head atoms share a priority.

``<=`` is the reflexive-transitive closure; ``x < y`` holds when some
chain from ``x`` to ``y`` uses a strict edge.  A model ``N`` is
*preferable* to a model ``M`` (``N ≺ M``) iff ``N ≠ M`` and for every
``a ∈ N−M`` there is ``b ∈ M−N`` with ``a < b`` — ``N`` trades atoms of
``M`` for strictly lower-priority ones.  ``M`` is *perfect* iff no model
is preferable to it.  Every perfect model is minimal (``N ⊊ M`` is
vacuously preferable), and on positive databases PERF coincides with
``MM(DB)``.

The coNP perfect-model check "``M`` is perfect iff ``DB'`` has no model"
(paper, Section 5.1) is realized literally in :meth:`PriorityRelation.
preferable_witness`: ``DB'`` is the SAT query for a preferable model.

Complexity (paper, Tables 1 and 2): literal/formula inference
Π₂ᵖ-complete; model existence Σ₂ᵖ-complete (Table 2 row; perfect models
need not exist for unstratified databases).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..errors import NotPositiveError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation
from ..runtime.budget import check_deadline
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register


class PriorityRelation:
    """The priority preorder ``<=`` / strict ``<`` over a database's atoms.

    Computed as reachability in a weighted graph (weight 1 = strict edge,
    0 = non-strict); ``x < y`` iff some path ``x -> y`` carries a strict
    edge.
    """

    def __init__(self, db: DisjunctiveDatabase):
        if db.has_integrity_clauses:
            raise NotPositiveError(
                "PERF is defined for databases without integrity clauses"
            )
        atoms = sorted(db.vocabulary)
        self.atoms = atoms
        index = {a: i for i, a in enumerate(atoms)}
        n = len(atoms)
        # reach[i][j] in {None, 0, 1}: no path / non-strict path / strict.
        reach: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        for i in range(n):
            reach[i][i] = 0
        for clause in db.clauses:
            heads = [index[a] for a in clause.head]
            for a in heads:
                for b in heads:
                    reach[a][b] = max(reach[a][b] or 0, 0)
                for b_atom in clause.body_pos:
                    b = index[b_atom]
                    reach[a][b] = max(reach[a][b] or 0, 0)
                for c_atom in clause.body_neg:
                    c = index[c_atom]
                    reach[a][c] = 1
        # Floyd–Warshall-style closure maximizing strictness.
        for k in range(n):
            for i in range(n):
                if reach[i][k] is None:
                    continue
                row_i, row_k = reach[i], reach[k]
                via = row_i[k]
                for j in range(n):
                    if row_k[j] is None:
                        continue
                    weight = max(via, row_k[j])
                    if row_i[j] is None or row_i[j] < weight:
                        row_i[j] = weight
        self._index = index
        self._reach = reach

    def leq(self, x: str, y: str) -> bool:
        """``x <= y`` (``y`` has priority at least ``x``'s)."""
        return self._reach[self._index[x]][self._index[y]] is not None

    def lt(self, x: str, y: str) -> bool:
        """``x < y`` (``y`` has strictly higher priority)."""
        return self._reach[self._index[x]][self._index[y]] == 1

    def higher_than(self, x: str) -> FrozenSet[str]:
        """All atoms of strictly higher priority than ``x``."""
        row = self._reach[self._index[x]]
        return frozenset(
            self.atoms[j] for j in range(len(self.atoms)) if row[j] == 1
        )

    def has_priority_cycle(self) -> bool:
        """Whether some atom has strictly higher priority than itself
        (happens exactly when the database is not locally stratified)."""
        return any(
            self._reach[i][i] == 1 for i in range(len(self.atoms))
        )


def priorities_for(db: DisjunctiveDatabase) -> PriorityRelation:
    """The database's priority relation, via the process-wide memo cache.

    The relation is a pure function of the (immutable) database and its
    Floyd–Warshall closure is cubic in ``|V|``, so every PERF entry point
    shares one instance per database.
    """
    from ..engine.cache import priority_relation_for

    return priority_relation_for(db)


def preferable(
    n: Interpretation, m: Interpretation, priorities: PriorityRelation
) -> bool:
    """``N ≺ M`` — the brute-force preference test."""
    if n == m:
        return False
    m_minus_n = m - n
    for a in n - m:
        if not any(priorities.lt(a, b) for b in m_minus_n):
            return False
    return True


def preferable_witness(
    db: DisjunctiveDatabase,
    model: Interpretation,
    priorities: PriorityRelation,
    reuse: bool = True,
) -> Optional[Interpretation]:
    """A model preferable to ``model``, by one SAT call (the paper's
    "``M0`` is perfect iff ``DB'`` has no model" reduction: ``DB'`` is
    exactly the theory below)."""
    m = frozenset(model)
    in_m = sorted(m)
    out_m = sorted(frozenset(db.vocabulary) - m)
    with pooled_scope(db, context=("db",), reuse=reuse) as solver:
        # N differs from M.
        solver.add_clause(
            [Literal.neg(a) for a in in_m] + [Literal.pos(a) for a in out_m]
        )
        # Every a in N−M needs a strictly-higher-priority b in M−N.
        for a in out_m:
            supports = [
                Literal.neg(b) for b in in_m if priorities.lt(a, b)
            ]
            solver.add_clause([Literal.neg(a)] + supports)
        if not solver.solve():
            return None
        return solver.model(restrict_to=db.vocabulary)


def is_perfect(
    db: DisjunctiveDatabase,
    model: Interpretation,
    priorities: Optional[PriorityRelation] = None,
    reuse: bool = True,
) -> bool:
    """Whether ``model`` is a perfect model of ``db`` (coNP check)."""
    model = Interpretation(model)
    if not db.is_model(model):
        return False
    if priorities is None:
        priorities = priorities_for(db)
    return preferable_witness(db, model, priorities, reuse=reuse) is None


@register
class Perf(Semantics):
    """Perfect Models Semantics."""

    name = "perf"
    aliases = ("perfect", "perfect-models")
    description = "Perfect Models Semantics (Przymusinski)"

    def validate(self, db: DisjunctiveDatabase) -> None:
        if db.has_integrity_clauses:
            raise NotPositiveError(
                "PERF is defined for databases without integrity clauses"
            )

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        priorities = priorities_for(db)
        if self.engine == "brute":
            from ..models.enumeration import all_models

            models = all_models(db)
            return frozenset(
                m
                for m in models
                if not any(preferable(n, m, priorities) for n in models)
            )
        return frozenset(self._iter_perfect(db, priorities))

    def _iter_perfect(
        self,
        db: DisjunctiveDatabase,
        priorities: PriorityRelation,
        condition: Optional[Formula] = None,
    ) -> Iterator[Interpretation]:
        """Guess-and-check enumeration of perfect models: SAT candidates,
        coNP perfect check per candidate, exact blocking."""
        vocabulary = sorted(db.vocabulary)
        with pooled_scope(
            db, context=("db",), reuse=self.sat_reuse
        ) as searcher:
            if condition is not None:
                searcher.add_formula(condition)
            while True:
                check_deadline()
                if not searcher.solve():
                    return
                candidate = searcher.model(restrict_to=db.vocabulary)
                if is_perfect(
                    db, candidate, priorities, reuse=self.sat_reuse
                ):
                    yield candidate
                searcher.add_clause(
                    [
                        Literal.neg(a) if a in candidate else Literal.pos(a)
                        for a in vocabulary
                    ]
                )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        priorities = priorities_for(db)
        for _counterexample in self._iter_perfect(
            db, priorities, condition=Not(formula)
        ):
            return False
        return True

    def infers_brave(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers_brave(db, formula)
        priorities = priorities_for(db)
        for _witness in self._iter_perfect(db, priorities,
                                           condition=formula):
            return True
        return False

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if db.is_positive:
            # Table 1: O(1) — on positive databases the perfect models
            # are exactly the (always existing) minimal models.
            return True
        if self.engine == "brute":
            return super().has_model(db)
        priorities = priorities_for(db)
        for _model in self._iter_perfect(db, priorities):
            return True
        return False
