"""PWS — Chan's Possible Worlds Semantics, via the equivalent Possible
Models Semantics (PMS) of Sakama [24].

A *split program* of a deductive DB chooses, for each non-integrity
clause, a nonempty subset of its head and replaces the clause by one
definite rule per chosen atom (integrity clauses are kept).  A *possible
model* is a minimal model of some split program.  ``PWS(DB)`` selects the
possible models; inference is truth in all of them.

Polynomial model check (used by the oracle engine, and verified against
the split-enumeration definition in the tests): ``M`` is a possible model
iff ``M`` is a classical model of DB (integrity clauses included) and
``M = lfp(Π_M)`` where ``Π_M = {a :- B  |  (H :- B) ∈ DB, a ∈ H ∩ M}``.
(⇒) the rules of a witnessing split that ever fire have their chosen
heads inside ``M``, so its least-model derivation is a ``Π_M``
derivation, and ``Π_M`` derivations cannot leave ``M``.
(⇐) choose ``σ(C) = head(C) ∩ M`` for clauses whose body is contained in
``M`` (nonempty since ``M`` is a model) and the full head otherwise; the
least model of that split is exactly ``lfp(Π_M) = M``.

Complexity (paper, Tables 1 and 2): literal inference in P without
integrity clauses (Chan; negative literals via the same possibly-true
fixpoint as DDR), coNP-complete with them; formula inference
coNP-complete; model existence O(1) without ICs and decidable with one
guess-and-check loop with them.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional

from ..errors import GroundTruthCapError, NotPositiveError
from ..logic.atoms import Literal
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Not
from ..logic.interpretation import Interpretation
from ..logic.transform import split_count, split_programs
from ..runtime.budget import check_deadline
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register
from .ddr import possibly_true_atoms

#: Split-enumeration safety bound for the brute engine.
MAX_SPLITS = 1 << 16


def is_possible_model(
    db: DisjunctiveDatabase, model: Interpretation
) -> bool:
    """Polynomial-time possible-model check (see module docstring)."""
    if db.has_negation:
        raise NotPositiveError("PWS is defined for deductive databases only")
    model_set = frozenset(model)
    if not db.is_model(model_set):
        return False
    # lfp of Π_M — definite rules a :- B for a ∈ head ∩ M.
    rules = [
        (clause.head & model_set, clause.body_pos)
        for clause in db.clauses
        if clause.head & model_set
    ]
    derived: set = set()
    changed = True
    while changed:
        changed = False
        for heads, body in rules:
            if body <= derived:
                new = heads - derived
                if new:
                    derived |= new
                    changed = True
    return derived == model_set


def possible_models_by_splits(
    db: DisjunctiveDatabase, max_splits: int = MAX_SPLITS
) -> FrozenSet[Interpretation]:
    """Possible models straight from the definition (split enumeration +
    minimal models of each split).  Exponential; used as ground truth."""
    from ..models.enumeration import minimal_models_brute

    if db.has_negation:
        raise NotPositiveError("PWS is defined for deductive databases only")
    if split_count(db) > max_splits:
        raise GroundTruthCapError(
            f"too many split programs ({split_count(db)} > {max_splits})"
        )
    found = set()
    for split in split_programs(db):
        found.update(minimal_models_brute(split))
    return frozenset(found)


@register
class Pws(Semantics):
    """Possible Worlds Semantics (≡ Possible Models Semantics)."""

    name = "pws"
    aliases = ("pms", "possible-models", "possible-worlds")
    description = "Possible Worlds Semantics (Chan) = PMS (Sakama)"

    def validate(self, db: DisjunctiveDatabase) -> None:
        if db.has_negation:
            raise NotPositiveError(
                "PWS is defined for deductive databases only"
            )

    def model_set(
        self, db: DisjunctiveDatabase
    ) -> FrozenSet[Interpretation]:
        self.validate(db)
        if self.engine == "brute":
            return possible_models_by_splits(db)
        return frozenset(self._iter_possible_models(db))

    def _iter_possible_models(
        self, db: DisjunctiveDatabase, condition: Optional[Formula] = None
    ) -> Iterator[Interpretation]:
        """Enumerate possible models (optionally satisfying a condition)
        by SAT candidate generation + polynomial possible-model check."""
        vocabulary = sorted(db.vocabulary)
        with pooled_scope(
            db, context=("db",), reuse=self.sat_reuse
        ) as solver:
            if condition is not None:
                solver.add_formula(condition)
            while True:
                check_deadline()
                if not solver.solve():
                    return
                candidate = solver.model(restrict_to=db.vocabulary)
                if is_possible_model(db, candidate):
                    yield candidate
                solver.add_clause(
                    [
                        Literal.neg(a) if a in candidate else Literal.pos(a)
                        for a in vocabulary
                    ]
                )

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        # coNP guess-and-check: a counterexample is a possible model of
        # DB satisfying ¬F; the possible-model check is polynomial.
        for _counterexample in self._iter_possible_models(
            db, condition=Not(formula)
        ):
            return False
        return True

    def infers_literal(self, db: DisjunctiveDatabase, literal) -> bool:
        if isinstance(literal, str):
            literal = Literal.parse(literal)
        self.validate(db)
        if self.engine == "brute":
            return super().infers_literal(db, literal)
        if not literal.positive and not db.has_integrity_clauses:
            # Table 1 tractable cell (Chan): without ICs the possibly-true
            # set is itself a possible model (least model of the all-heads
            # split), and every possible model is contained in it; so
            # PWS(DB) |= ¬x iff x is not possibly true.  Zero SAT calls.
            return literal.atom not in possibly_true_atoms(db)
        return super().infers_literal(db, literal)

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if not db.has_integrity_clauses:
            return True  # the all-heads split's least model always exists
        if self.engine == "brute":
            return super().has_model(db)
        for _model in self._iter_possible_models(db):
            return True
        return False
