"""The disjunctive state: Minker/Rajasekar's ``T_DB ↑ ω`` in full.

Section 3.2 of the paper defines DDR through the fixpoint of derivable
positive disjunctions.  :mod:`repro.semantics.ddr` only needs the *atoms*
of that fixpoint (computable via the Horn relaxation); this module
computes the fixpoint itself — the *model state*: the ⊆-minimal positive
disjunctions derivable from the database — plus the closure objects the
closed-world semantics are usually presented with:

* :func:`disjunctive_state` — minimal derivable disjunctions (exact
  ``T_DB ↑ ω``, minimized);
* :func:`gcwa_closure_literals` — the negative literals GCWA adds;
* :func:`egcwa_closure_clauses` — the integrity clauses
  ``:- a1, ..., an`` EGCWA adds (minimal conjunctions false in every
  minimal model, Yahya & Henschen's original formulation);
* :func:`wgcwa_closure_literals` — the negative literals WGCWA/DDR adds.

Soundness facts verified by the tests: every state disjunction is
classically entailed by DB; the state's atoms are exactly
:func:`~repro.semantics.ddr.possibly_true_atoms`; augmenting DB by its
EGCWA closure leaves the minimal models unchanged; and the size-1 EGCWA
closure bodies are exactly the GCWA closure literals.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from ..errors import NotPositiveError
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Var, conj
from ..sat.minimal import MinimalModelSolver

Disjunction = FrozenSet[str]


def _minimize(family: Set[Disjunction]) -> Set[Disjunction]:
    """Keep only the ⊆-minimal sets of a family."""
    result: Set[Disjunction] = set()
    for candidate in sorted(family, key=len):
        if not any(kept <= candidate for kept in result):
            result.add(candidate)
    return result


def disjunctive_state(
    db: DisjunctiveDatabase,
    max_width: Optional[int] = None,
    max_iterations: int = 10_000,
    minimized: bool = True,
) -> FrozenSet[Disjunction]:
    """The fixpoint of derivable positive disjunctions.

    Two variants, both derived by positive hyperresolution:

    * ``minimized=True`` (default) — the *minimal model state* of Minker:
      only ⊆-minimal derivable disjunctions are kept.  By Minker's
      theorem these are exactly the minimal positive clauses entailed by
      an IC-free positive DDB, so their atoms are the complement of the
      GCWA closure (property-tested).
    * ``minimized=False`` — Ross & Topor's full ``T_DB ↑ ω``, the family
      DDR/WGCWA is defined from: an atom is negated iff it occurs in *no*
      derivable disjunction, minimal or not.

    Args:
        db: a deductive database (no negation; integrity clauses are
            ignored by the operator, exactly as in the paper).
        max_width: drop derived disjunctions wider than this (a safety
            valve — the full state can be exponential).
        max_iterations: hard stop for the outer fixpoint loop.
        minimized: see above.
    """
    if db.has_negation:
        raise NotPositiveError(
            "the disjunctive state is defined for deductive databases"
        )
    state: Set[Disjunction] = set()
    rules = [c for c in db.clauses if not c.is_integrity]

    for _ in range(max_iterations):
        new: Set[Disjunction] = set()
        for clause in rules:
            body = sorted(clause.body_pos)
            if not body:
                candidate = frozenset(clause.head)
                if max_width is None or len(candidate) <= max_width:
                    new.add(candidate)
                continue
            # Choose, for each body atom, a state disjunction containing
            # it; resolve them all with the clause.
            options = []
            feasible = True
            for atom in body:
                containing = [d for d in state if atom in d]
                if not containing:
                    feasible = False
                    break
                options.append(containing)
            if not feasible:
                continue
            for combo in itertools.product(*options):
                candidate = frozenset(clause.head)
                for atom, chosen in zip(body, combo):
                    candidate |= chosen - {atom}
                if max_width is not None and len(candidate) > max_width:
                    continue
                new.add(candidate)
        merged = _minimize(state | new) if minimized else (state | new)
        if merged == state:
            return frozenset(state)
        state = merged
    raise RuntimeError("disjunctive state did not converge")


def state_atoms(state: Iterable[Disjunction]) -> FrozenSet[str]:
    """All atoms occurring in a state."""
    return frozenset(a for d in state for a in d)


def wgcwa_closure_literals(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """Atoms negated by WGCWA/DDR: those occurring in no derivable
    disjunction of the *unminimized* ``T_DB ↑ ω``."""
    return frozenset(db.vocabulary) - state_atoms(
        disjunctive_state(db, minimized=False)
    )


def minimal_state_atoms(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """Atoms occurring in some *minimal* derivable disjunction.

    By Minker's theorem (for positive IC-free DDBs) this is exactly the
    complement of the GCWA closure — a proof-theoretic route to the same
    set the Σ₂ᵖ machinery computes model-theoretically; the agreement is
    property-tested.
    """
    return state_atoms(disjunctive_state(db, minimized=True))


def gcwa_closure_literals(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """Atoms negated by GCWA (false in every minimal model) — computed
    via the Σ₂ᵖ primitive; re-exported here for the closure view."""
    from .gcwa import free_for_negation

    return free_for_negation(db)


def egcwa_closure_clauses(
    db: DisjunctiveDatabase, max_size: int = 3
) -> FrozenSet[FrozenSet[str]]:
    """The EGCWA closure (Yahya & Henschen): minimal atom sets
    ``{a1, .., an}`` (up to ``max_size``) such that ``a1 ∧ .. ∧ an`` is
    false in every minimal model — each contributes the integrity clause
    ``:- a1, .., an`` to the closure.

    Each candidate costs one "∃ minimal model ⊇ A" query (the Σ₂ᵖ
    primitive); candidates are visited smallest-first so non-minimal
    supersets are pruned.
    """
    closure: Set[FrozenSet[str]] = set()
    atoms = sorted(db.vocabulary)
    with MinimalModelSolver(db) as engine:
        for size in range(1, max_size + 1):
            for combo in itertools.combinations(atoms, size):
                candidate = frozenset(combo)
                if any(kept <= candidate for kept in closure):
                    continue  # already implied by a smaller closure clause
                witness = engine.find_minimal_satisfying(
                    conj([Var(a) for a in combo])
                )
                if witness is None:
                    closure.add(candidate)
    return frozenset(closure)
