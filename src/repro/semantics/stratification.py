"""Stratification of disjunctive databases (DSDBs).

A database is *stratified* when its atoms can be layered ``S1, ..., Sr``
such that, for every clause ``H :- B, not C``:

* all head atoms of ``H`` lie in the same stratum,
* every positive body atom lies in a stratum no higher than the head's,
* every negated body atom lies in a stratum strictly below the head's.

(Chandra & Harel [6]; Apt, Blair & Walker [1]; generalized to DDBs by
Przymusinski [19].)  A stratification always exists iff the *dependency
graph* has no cycle through a negative edge; it can be found in
polynomial time (paper, Section 4: "a stratification of DB can be
efficiently found").

This module builds the dependency graph, decides stratifiability, and
returns the canonical (smallest-stratum) stratification.  It also derives
the *priority levels* used by ICWA and (reversed) by the perfect-models
comparison: lower strata have higher priority (they are minimized first).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import NotStratifiedError, ReproError
from ..logic.database import DisjunctiveDatabase

#: Edge kinds in the dependency graph.
POSITIVE = 0  #: head may be in the same stratum as the source
NEGATIVE = 1  #: head must be in a strictly higher stratum


def dependency_edges(
    db: DisjunctiveDatabase,
) -> List[Tuple[str, str, int]]:
    """Directed edges ``(source, target, kind)`` meaning
    ``stratum(target) >= stratum(source)`` (positive) or ``>`` (negative).

    Head atoms of one clause are tied together with positive edges in both
    directions, forcing them into a common stratum.
    """
    edges: List[Tuple[str, str, int]] = []
    for clause in db.clauses:
        heads = sorted(clause.head)
        for i in range(len(heads) - 1):
            edges.append((heads[i], heads[i + 1], POSITIVE))
            edges.append((heads[i + 1], heads[i], POSITIVE))
        for head in heads:
            for body_atom in clause.body_pos:
                edges.append((body_atom, head, POSITIVE))
            for neg_atom in clause.body_neg:
                edges.append((neg_atom, head, NEGATIVE))
    return edges


def _tarjan_sccs(
    nodes: Sequence[str], adjacency: Dict[str, List[str]]
) -> List[List[str]]:
    """Strongly connected components (iterative Tarjan), in reverse
    topological order of the condensation."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index_of:
                    index_of[neighbour] = lowlink[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack[neighbour] = True
                    work.append((neighbour, iter(adjacency.get(neighbour, ()))))
                    advanced = True
                    break
                if on_stack.get(neighbour):
                    lowlink[node] = min(lowlink[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


class Stratification:
    """A stratification ``S1, ..., Sr`` of a database's atoms.

    Attributes:
        strata: tuple of frozensets, lowest stratum first.  Every
            vocabulary atom appears in exactly one stratum.
    """

    def __init__(self, strata: Sequence[FrozenSet[str]]):
        self.strata: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(s) for s in strata
        )
        self._level: Dict[str, int] = {}
        for level, stratum in enumerate(self.strata):
            for atom in stratum:
                self._level[atom] = level

    def __len__(self) -> int:
        return len(self.strata)

    def level(self, atom: str) -> int:
        """The (0-based) stratum index of ``atom``.

        Raises :class:`~repro.errors.ReproError` (not a bare
        ``KeyError``) for atoms outside the stratified vocabulary, so
        callers holding a stratification of the *wrong database* get an
        actionable message instead of a key dump."""
        try:
            return self._level[atom]
        except KeyError:
            known = ", ".join(sorted(self._level)) or "<empty vocabulary>"
            raise ReproError(
                f"atom {atom!r} is not part of this stratification "
                f"(stratified atoms: {known}); was the stratification "
                f"computed for a different database?"
            ) from None

    def clause_level(self, clause) -> int:
        """The stratum of a clause = the (common) stratum of its head; for
        integrity clauses, the highest stratum of its body atoms."""
        if clause.head:
            return max(self.level(a) for a in clause.head)
        atoms = clause.body_pos | clause.body_neg
        return max((self.level(a) for a in atoms), default=0)

    def priority_levels(self) -> List[FrozenSet[str]]:
        """Strata as priority levels for prioritized minimization: lowest
        stratum first — minimized first (highest priority)."""
        return list(self.strata)

    def __repr__(self) -> str:
        parts = "; ".join(
            "{" + ", ".join(sorted(s)) + "}" for s in self.strata
        )
        return f"Stratification({parts})"


def stratify(
    db: DisjunctiveDatabase,
) -> Optional[Stratification]:
    """The canonical stratification of ``db``, or ``None`` if the database
    is not stratifiable (a dependency cycle through negation).

    Strata indices are the least possible for each atom (computed by a
    longest-negative-path labelling of the SCC condensation).
    """
    atoms = sorted(db.vocabulary)
    edges = dependency_edges(db)
    adjacency: Dict[str, List[str]] = {a: [] for a in atoms}
    for source, target, _kind in edges:
        adjacency[source].append(target)
    components = _tarjan_sccs(atoms, adjacency)
    component_of: Dict[str, int] = {}
    for index, component in enumerate(components):
        for atom in component:
            component_of[atom] = index

    # A negative edge inside one SCC means an unstratifiable cycle.
    for source, target, kind in edges:
        if kind == NEGATIVE and component_of[source] == component_of[target]:
            return None

    # Longest-negative-path labelling of the condensation by relaxation
    # (the component graph is a DAG, so |components| rounds suffice).
    level: Dict[int, int] = {i: 0 for i in range(len(components))}
    for _ in range(len(components)):
        changed = False
        for source, target, kind in edges:
            source_c = component_of[source]
            target_c = component_of[target]
            if source_c == target_c:
                continue
            required = level[source_c] + (1 if kind == NEGATIVE else 0)
            if level[target_c] < required:
                level[target_c] = required
                changed = True
        if not changed:
            break

    depth = max(level.values(), default=0) + 1
    strata: List[set] = [set() for _ in range(depth)]
    for index, component in enumerate(components):
        strata[level[index]].update(component)
    return Stratification([frozenset(s) for s in strata])


def require_stratification(db: DisjunctiveDatabase) -> Stratification:
    """Stratify or raise :class:`~repro.errors.NotStratifiedError`.

    Memoized per database via the engine cache — repeated calls (ICWA
    issues one per entry point) pay the SCC pass once."""
    from ..engine.cache import stratification_for

    stratification = stratification_for(db)
    if stratification is None:
        raise NotStratifiedError(
            "database has a dependency cycle through negation"
        )
    return stratification


def is_stratified(db: DisjunctiveDatabase) -> bool:
    """Whether the database is a DSDB (memoized per database)."""
    from ..engine.cache import stratification_for

    return stratification_for(db) is not None
