"""Clark completion and supported models (extension).

The stable-model literature the paper builds on (Gelfond & Lifschitz
[10], Marek & Truszczyński [15]) contrasts stable models with the older
*supported* models: the models of Clark's completion, where every true
atom must have a rule with true body deriving it.  Schaerf's companion
PODS-93 paper [26], which the paper cites, analyzes their complexity for
non-Horn programs.  This module provides, for normal logic programs:

* :func:`clark_completion` — the completion as a propositional formula:
  for every atom ``a``, ``a <-> B_1 ∨ ... ∨ B_k`` over the bodies of the
  rules with head ``a`` (an empty disjunction makes ``a`` false);
* :func:`is_supported_model` — direct definition check: a model where
  each true atom has a firing rule;
* :class:`Supported` — the semantics (registered as ``"supported"``).

Classical facts verified in the tests: supported models are exactly the
models of the completion; every stable model is supported; and on
*tight* programs (no cycles through positive bodies) supported = stable
— Fages' theorem.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from ..errors import NotPositiveError
from ..logic.database import DisjunctiveDatabase
from ..logic.formula import Formula, Iff, Not, Var, conj, disj
from ..logic.interpretation import Interpretation
from ..runtime.budget import check_deadline
from ..sat.enumerate import blocking_clause
from ..sat.incremental import pooled_scope
from .base import Semantics, ground_query, register


def _check_normal(db: DisjunctiveDatabase) -> None:
    if not db.is_normal_nondisjunctive:
        raise NotPositiveError(
            "Clark completion is defined for normal (single-head) programs"
        )


def clark_completion(db: DisjunctiveDatabase) -> Formula:
    """The completion ``comp(DB)`` as one propositional formula.

    Integrity clauses are kept as their classical reading (they have no
    head to complete).
    """
    _check_normal(db)
    bodies: Dict[str, List[Formula]] = {a: [] for a in db.vocabulary}
    constraints: List[Formula] = []
    for clause in db.clauses:
        body = conj(
            [Var(b) for b in sorted(clause.body_pos)]
            + [Not(Var(c)) for c in sorted(clause.body_neg)]
        )
        if clause.is_integrity:
            constraints.append(Not(body))
        else:
            (head,) = clause.head
            bodies[head].append(body)
    parts: List[Formula] = [
        Iff(Var(atom), disj(atom_bodies))
        for atom, atom_bodies in sorted(bodies.items())
    ]
    return conj(parts + constraints)


def is_supported_model(
    db: DisjunctiveDatabase, model: Interpretation
) -> bool:
    """Direct definition: a classical model in which every true atom has
    a rule with that head whose body is true (polynomial check)."""
    _check_normal(db)
    model = frozenset(model)
    if not db.is_model(model):
        return False
    for atom in model:
        supported = any(
            clause.head == {atom} and clause.body_true_in(model)
            for clause in db.clauses
        )
        if not supported:
            return False
    return True


def positive_dependency_cycles(db: DisjunctiveDatabase) -> bool:
    """Whether the *positive* dependency graph has a cycle (a non-tight
    program, where supported and stable models may diverge)."""
    _check_normal(db)
    edges: Dict[str, set] = {a: set() for a in db.vocabulary}
    for clause in db.clauses:
        for head in clause.head:
            edges[head].update(clause.body_pos)
    # DFS cycle detection.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {a: WHITE for a in db.vocabulary}

    def visit(node: str) -> bool:
        color[node] = GRAY
        for neighbour in edges[node]:
            if color[neighbour] == GRAY:
                return True
            if color[neighbour] == WHITE and visit(neighbour):
                return True
        color[node] = BLACK
        return False

    return any(color[a] == WHITE and visit(a) for a in sorted(db.vocabulary))


def is_tight(db: DisjunctiveDatabase) -> bool:
    """Fages' condition: no cycle through positive bodies."""
    return not positive_dependency_cycles(db)


@register
class Supported(Semantics):  # lint: ok RPR005 -- comparison semantics, no table row
    """Supported models = models of the Clark completion (for NLPs)."""

    name = "supported"
    aliases = ("completion", "clark")
    description = "Supported models / Clark completion (extension)"

    def validate(self, db: DisjunctiveDatabase) -> None:
        _check_normal(db)

    def _completion_scope(self, db: DisjunctiveDatabase):
        """A scope on a pooled solver whose permanent theory is
        ``comp(DB)`` — the completion is Tseitin-encoded once per solver,
        not once per query."""
        vocabulary = tuple(sorted(db.vocabulary))

        def setup(solver) -> None:
            solver.intern(vocabulary)
            solver.add_formula(clark_completion(db))

        return pooled_scope(
            context=("completion", db), reuse=self.sat_reuse, setup=setup
        )

    def model_set(self, db: DisjunctiveDatabase) -> FrozenSet[Interpretation]:
        self.validate(db)
        if self.engine == "brute":
            from ..logic.interpretation import all_interpretations

            return frozenset(
                m
                for m in all_interpretations(db.vocabulary)
                if is_supported_model(db, m)
            )
        project = sorted(db.vocabulary)
        found = []
        with self._completion_scope(db) as sat:
            while True:
                check_deadline()
                if not sat.solve():
                    break
                model = sat.model(restrict_to=project)
                found.append(model)
                block = blocking_clause(model, project)
                if not block:
                    break
                sat.add_clause(block)
        return frozenset(found)

    def infers(self, db: DisjunctiveDatabase, formula: Formula) -> bool:
        self.validate(db)
        formula = ground_query(db, formula)
        if self.engine == "brute":
            return super().infers(db, formula)
        # One UNSAT call: comp(DB) ∧ ¬F.
        with self._completion_scope(db) as sat:
            sat.add_formula(Not(formula))
            return not sat.solve()

    def has_model(self, db: DisjunctiveDatabase) -> bool:
        self.validate(db)
        if self.engine == "brute":
            return super().has_model(db)
        with self._completion_scope(db) as sat:
            return sat.solve()
