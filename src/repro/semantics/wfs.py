"""WFS — the Well-Founded Semantics of van Gelder, Ross & Schlipf [29].

PDSM is defined by the paper as the extension of WFS to disjunctive
databases, so the non-disjunctive WFS is implemented here as the
reference point: a *polynomial-time* alternating-fixpoint computation for
normal logic programs (single-atom heads, no integrity clauses).

Van Gelder's alternating fixpoint: for a set ``S`` of atoms let
``Γ(S)`` be the least model of the Gelfond–Lifschitz reduct ``P^S`` (a
definite program, so its least model is a linear-time fixpoint).  ``Γ``
is antitone, ``Γ²`` monotone; with

    T* = lfp(Γ²)        (the well-founded *true* atoms)
    P* = Γ(T*)          (the *possible* atoms; its complement is false)

the well-founded model is the 3-valued interpretation ``(T*, P*)``.

Relationships verified in the tests: the well-founded model is a partial
stable model (PDSM) of the program; when it is total it is the unique
stable model; and on stratified programs it coincides with the perfect
model.
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import NotPositiveError
from ..logic.database import DisjunctiveDatabase
from ..logic.interpretation import ThreeValuedInterpretation
from ..logic.transform import gl_reduct


def _check_normal_program(db: DisjunctiveDatabase) -> None:
    if not db.is_normal_nondisjunctive or db.has_integrity_clauses:
        raise NotPositiveError(
            "WFS is defined for normal logic programs "
            "(single-atom heads, no integrity clauses)"
        )


def least_model_definite(db: DisjunctiveDatabase) -> FrozenSet[str]:
    """Least model of a definite (negation-free, single-head) database,
    by the immediate-consequence fixpoint."""
    derived: set = set()
    changed = True
    pending = list(db.clauses)
    while changed:
        changed = False
        remaining = []
        for clause in pending:
            if clause.body_pos <= derived:
                (head_atom,) = clause.head
                if head_atom not in derived:
                    derived.add(head_atom)
                    changed = True
            else:
                remaining.append(clause)
        pending = remaining
    return frozenset(derived)


def gamma(db: DisjunctiveDatabase, assumed_true: FrozenSet[str]
          ) -> FrozenSet[str]:
    """``Γ(S)``: least model of the GL reduct ``P^S``."""
    return least_model_definite(gl_reduct(db, assumed_true))


def well_founded_model(
    db: DisjunctiveDatabase,
) -> ThreeValuedInterpretation:
    """The well-founded model of a normal logic program (polynomial).

    Returns a 3-valued interpretation: atoms in ``true`` are well-founded
    true, atoms outside ``possible`` well-founded false, the rest
    undefined.
    """
    _check_normal_program(db)
    true_atoms: FrozenSet[str] = frozenset()
    while True:
        next_true = gamma(db, gamma(db, true_atoms))
        if next_true == true_atoms:
            break
        true_atoms = next_true
    possible = gamma(db, true_atoms)
    return ThreeValuedInterpretation(true_atoms, possible)


def well_founded_entails(db: DisjunctiveDatabase, formula) -> bool:
    """Degree-1 truth of ``formula`` in the well-founded model."""
    return well_founded_model(db).satisfies(formula)
