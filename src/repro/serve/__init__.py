"""The serving layer: a multi-tenant async query daemon.

Turns :class:`~repro.session.DatabaseSession` into a service:

* :mod:`repro.serve.service` — :class:`QueryService`: tenant registry,
  bounded admission queues, cross-request batching onto shared
  sessions / solver-pool scopes, QoS budgets, structured errors;
* :mod:`repro.serve.server` — the asyncio HTTP daemon
  (:class:`ReproServer`), ``/metrics`` Prometheus exposition, ``/trace``
  JSONL drain, and :class:`BackgroundServer` for synchronous embedders;
* :mod:`repro.serve.client` — keep-alive async + sync clients;
* :mod:`repro.serve.http` — the dependency-free HTTP/1.1 framing.

See ``docs/serving_guide.md`` for endpoints, QoS headers, batching
semantics and the metrics reference.
"""

from .http import HttpError, Request, Response
from .client import AsyncServeClient, ServeClient, budget_headers
from .server import (
    BackgroundServer,
    DEFAULT_TENANT,
    ReproServer,
    budget_from_headers,
    run_server,
)
from .service import (
    BatchKey,
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    ItemResult,
    QueryItem,
    QueryService,
    TASKS,
    canonical_db_id,
)

__all__ = [
    "AsyncServeClient",
    "BackgroundServer",
    "BatchKey",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_TENANT",
    "DEFAULT_WORKERS",
    "HttpError",
    "ItemResult",
    "QueryItem",
    "QueryService",
    "ReproServer",
    "Request",
    "Response",
    "ServeClient",
    "TASKS",
    "budget_from_headers",
    "budget_headers",
    "canonical_db_id",
    "run_server",
]
